//! `gates-cli` — launch a GATES application from configuration files.
//!
//! The command-line embodiment of the paper's application-user workflow
//! (§3.2): "To start the application, the user simply passes the XML
//! file's URL link to the Launcher."
//!
//! ```sh
//! # Run an application config on an auto-generated uniform grid:
//! gates-cli run app.xml
//!
//! # With an explicit resource pool and a fixed virtual-time horizon:
//! gates-cli run app.xml --grid grid.xml --duration 120
//!
//! # On native threads instead of the virtual-time engine:
//! gates-cli run app.xml --engine threaded --max-time 30
//!
//! # Distributed: start a coordinator for three worker processes...
//! gates-cli run app.xml --engine dist --listen 127.0.0.1:7070 --workers 3
//!
//! # ...and, in three other shells, the workers:
//! gates-cli worker --name w0 --coordinator 127.0.0.1:7070
//!
//! # With a flight-recorder trace (JSONL) of the run:
//! gates-cli run app.xml --trace run.jsonl
//!
//! # With deterministic fault injection (same seed => same faults):
//! gates-cli run app.xml --engine dist --workers 3 --trace chaos.jsonl \
//!     --chaos "seed=7,drop=0.02,corrupt=0.005,delay=5ms..40ms,dup=0.01"
//!
//! # List the built-in application templates:
//! gates-cli apps
//!
//! # Print skeleton config files:
//! gates-cli template app | tee app.xml
//! gates-cli template grid | tee grid.xml
//! ```

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use gates::apps;
use gates::core::adapt::PolicyKind;
use gates::core::trace::FlightRecorder;
use gates::engine::{DesEngine, DistConfig, DistEngine, DistWorker, RunOptions, ThreadedEngine};
use gates::grid::{registry_from_xml, ApplicationRepository, Launcher, ResourceRegistry};
use gates::net::RetryPolicy;
use gates::replay::{diff_adapt, Recording, RunRecipe};
use gates::sim::{SimDuration, SimTime};

fn usage() -> &'static str {
    "usage:\n  gates-cli run <app.xml> [--grid <grid.xml>] [--duration <secs>]\n                          [--max-time <secs>] [--engine des|threaded|dist]\n                          [--observe-ms <ms>] [--adapt-ms <ms>]\n                          [--trace <out.jsonl>]\n                          [--listen <host:port>] [--workers <n>]\n                          [--drain-ms <ms>] [--retry-attempts <n>] [--retry-base-ms <ms>]\n                          [--heartbeat-ms <ms>] [--heartbeat-timeout-ms <ms>]\n                          [--checkpoint-every <packets>]\n                          [--cores <n>]      executor pool size for threaded runs (default: auto)\n                          [--chaos <spec>]   e.g. \"seed=7,drop=0.02,delay=5ms..40ms\"\n                          [--record <out.jsonl>]  capture a replayable recording\n                          [--policy paper|aimd|pid]  adaptation policy for every stage\n  gates-cli replay <recording.jsonl> [--policy paper|aimd|pid] [--trace <out.jsonl>]\n  gates-cli worker --name <name> --coordinator <host:port>\n                   [--site <site>] [--speed <f>] [--capacity <n>] [--bind-host <host>]\n                   [--cores <n>] [--reactors <n>]  I/O reactor threads (default: 1)\n  gates-cli apps\n  gates-cli template app|grid"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("replay") => replay_cmd(&args[1..]),
        Some("worker") => worker(&args[1..]),
        Some("apps") => {
            let mut repo = ApplicationRepository::new();
            apps::publish_all(&mut repo);
            println!("published application templates:");
            for key in repo.keys() {
                println!("  {key}");
            }
            ExitCode::SUCCESS
        }
        Some("template") => template(args.get(1).map(String::as_str)),
        _ => {
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

fn template(kind: Option<&str>) -> ExitCode {
    match kind {
        Some("app") => {
            println!(
                r#"<application name="my-run" repository="count-samps">
  <param name="sources" value="4"/>
  <param name="items_per_source" value="25000"/>
  <param name="mode" value="adaptive"/>
  <param name="bandwidth_kb" value="100"/>
</application>"#
            );
            ExitCode::SUCCESS
        }
        Some("grid") => {
            println!(
                r#"<grid>
  <node name="central-0" site="central" speed="2.0" memory="8192" capacity="4"/>
  <node name="edge-0" site="site-0"/>
  <node name="edge-1" site="site-1"/>
  <node name="edge-2" site="site-2"/>
  <node name="edge-3" site="site-3"/>
</grid>"#
            );
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{}", usage());
            ExitCode::FAILURE
        }
    }
}

struct RunArgs {
    app_path: String,
    grid_path: Option<String>,
    duration: Option<u64>,
    max_time: Option<f64>,
    engine: String,
    trace_path: Option<String>,
    observe_ms: Option<u64>,
    adapt_ms: Option<u64>,
    listen: String,
    workers: usize,
    drain_ms: Option<u64>,
    retry_attempts: Option<u32>,
    retry_base_ms: Option<u64>,
    heartbeat_ms: Option<u64>,
    heartbeat_timeout_ms: Option<u64>,
    checkpoint_every: Option<u64>,
    chaos: Option<gates::net::FaultPlan>,
    cores: Option<usize>,
    record_path: Option<String>,
    policy: Option<PolicyKind>,
}

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut parsed = RunArgs {
        app_path: String::new(),
        grid_path: None,
        duration: None,
        max_time: None,
        engine: "des".to_string(),
        trace_path: None,
        observe_ms: None,
        adapt_ms: None,
        listen: "127.0.0.1:0".to_string(),
        workers: 3,
        drain_ms: None,
        retry_attempts: None,
        retry_base_ms: None,
        heartbeat_ms: None,
        heartbeat_timeout_ms: None,
        checkpoint_every: None,
        chaos: None,
        cores: None,
        record_path: None,
        policy: None,
    };
    let mut it = args.iter();
    let Some(app) = it.next() else {
        return Err("missing <app.xml>".into());
    };
    parsed.app_path = app.clone();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--grid" => parsed.grid_path = Some(value("--grid")?),
            "--duration" => {
                parsed.duration =
                    Some(value("--duration")?.parse().map_err(|_| "--duration: not a number")?)
            }
            "--max-time" => {
                parsed.max_time =
                    Some(value("--max-time")?.parse().map_err(|_| "--max-time: not a number")?)
            }
            "--engine" => {
                let v = value("--engine")?;
                if v != "des" && v != "threaded" && v != "dist" {
                    return Err(format!("--engine must be des, threaded or dist, got {v:?}"));
                }
                parsed.engine = v;
            }
            "--trace" => parsed.trace_path = Some(value("--trace")?),
            "--observe-ms" => {
                parsed.observe_ms =
                    Some(value("--observe-ms")?.parse().map_err(|_| "--observe-ms: not a number")?)
            }
            "--adapt-ms" => {
                parsed.adapt_ms =
                    Some(value("--adapt-ms")?.parse().map_err(|_| "--adapt-ms: not a number")?)
            }
            "--listen" => parsed.listen = value("--listen")?,
            "--workers" => {
                parsed.workers =
                    Some(value("--workers")?.parse().map_err(|_| "--workers: not a number")?)
                        .filter(|&n: &usize| n > 0)
                        .ok_or("--workers must be at least 1")?
            }
            "--drain-ms" => {
                parsed.drain_ms =
                    Some(value("--drain-ms")?.parse().map_err(|_| "--drain-ms: not a number")?)
            }
            "--retry-attempts" => {
                parsed.retry_attempts = Some(
                    value("--retry-attempts")?
                        .parse()
                        .map_err(|_| "--retry-attempts: not a number")?,
                )
            }
            "--retry-base-ms" => {
                parsed.retry_base_ms = Some(
                    value("--retry-base-ms")?
                        .parse()
                        .map_err(|_| "--retry-base-ms: not a number")?,
                )
            }
            "--heartbeat-ms" => {
                parsed.heartbeat_ms = Some(
                    value("--heartbeat-ms")?.parse().map_err(|_| "--heartbeat-ms: not a number")?,
                )
            }
            "--heartbeat-timeout-ms" => {
                parsed.heartbeat_timeout_ms = Some(
                    value("--heartbeat-timeout-ms")?
                        .parse()
                        .map_err(|_| "--heartbeat-timeout-ms: not a number")?,
                )
            }
            "--checkpoint-every" => {
                parsed.checkpoint_every = Some(
                    value("--checkpoint-every")?
                        .parse()
                        .map_err(|_| "--checkpoint-every: not a number")?,
                )
            }
            "--chaos" => {
                parsed.chaos = Some(
                    gates::net::FaultPlan::parse(&value("--chaos")?)
                        .map_err(|e| format!("--chaos: {e}"))?,
                )
            }
            "--cores" => {
                let n: usize = value("--cores")?.parse().map_err(|_| "--cores: not a number")?;
                if n == 0 {
                    return Err("--cores must be at least 1".into());
                }
                parsed.cores = Some(n);
            }
            "--record" => parsed.record_path = Some(value("--record")?),
            "--policy" => {
                parsed.policy = Some(
                    PolicyKind::parse(&value("--policy")?).map_err(|e| format!("--policy: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(parsed)
}

/// `gates-cli worker`: one worker process of a distributed run.
fn worker(args: &[String]) -> ExitCode {
    let mut name = None;
    let mut coordinator = None;
    let mut site = None;
    let mut speed = None;
    let mut capacity = None;
    let mut bind_host = None;
    let mut cores = None;
    let mut reactors = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |n: &str| it.next().cloned().ok_or_else(|| format!("{n} needs a value"));
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--name" => name = Some(value("--name")?),
                "--coordinator" => coordinator = Some(value("--coordinator")?),
                "--site" => site = Some(value("--site")?),
                "--speed" => {
                    speed = Some(
                        value("--speed")?
                            .parse::<f64>()
                            .map_err(|_| "--speed: not a number".to_string())?,
                    )
                }
                "--capacity" => {
                    capacity = Some(
                        value("--capacity")?
                            .parse::<u32>()
                            .map_err(|_| "--capacity: not a number".to_string())?,
                    )
                }
                "--bind-host" => bind_host = Some(value("--bind-host")?),
                "--cores" => {
                    let n: usize = value("--cores")?
                        .parse()
                        .map_err(|_| "--cores: not a number".to_string())?;
                    if n == 0 {
                        return Err("--cores must be at least 1".into());
                    }
                    cores = Some(n);
                }
                "--reactors" => {
                    let n: usize = value("--reactors")?
                        .parse()
                        .map_err(|_| "--reactors: not a number".to_string())?;
                    if n == 0 {
                        return Err("--reactors must be at least 1".into());
                    }
                    reactors = Some(n);
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }
    let (Some(name), Some(coordinator)) = (name, coordinator) else {
        eprintln!("error: worker needs --name and --coordinator\n{}", usage());
        return ExitCode::FAILURE;
    };

    let mut repo = ApplicationRepository::new();
    apps::publish_all(&mut repo);

    let mut w = DistWorker::new(&name, coordinator);
    if let Some(s) = site {
        w = w.site(s);
    }
    if let Some(s) = speed {
        w = w.speed(s);
    }
    if let Some(c) = capacity {
        w = w.capacity(c);
    }
    if let Some(h) = bind_host {
        w = w.bind_host(h);
    }
    if let Some(n) = cores {
        w = w.cores(n);
    }
    if let Some(n) = reactors {
        w = w.reactors(n);
    }
    match w.run(&repo) {
        Ok(()) => {
            eprintln!("worker {name} finished");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: worker {name}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> ExitCode {
    let parsed = match parse_run_args(args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };

    let mut app_xml = match std::fs::read_to_string(&parsed.app_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", parsed.app_path);
            return ExitCode::FAILURE;
        }
    };

    let mut repo = ApplicationRepository::new();
    apps::publish_all(&mut repo);

    // --policy rewrites the config so every engine — and any recording
    // made of this run — sees the override as ordinary <stage> attrs.
    if let Some(kind) = parsed.policy {
        match apply_policy_to_xml(&app_xml, kind, &repo) {
            Ok(xml) => app_xml = xml,
            Err(e) => {
                eprintln!("error: --policy: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut opts = RunOptions::default();
    if let Some(mt) = parsed.max_time {
        opts = opts.max_time(SimTime::from_secs_f64(mt));
    }
    if let Some(ms) = parsed.observe_ms {
        opts = opts.observe_every(SimDuration::from_millis(ms));
    }
    if let Some(ms) = parsed.adapt_ms {
        opts = opts.adapt_every(SimDuration::from_millis(ms));
    }
    if let Some(n) = parsed.cores {
        opts = opts.cores(n);
    }
    // A recording must be complete: --record uses an unbounded recorder
    // so no adaptation round is evicted from the ring.
    let recorder = if parsed.record_path.is_some() {
        Some(Arc::new(FlightRecorder::lossless()))
    } else {
        parsed.trace_path.as_ref().map(|_| Arc::new(FlightRecorder::default()))
    };
    if let Some(rec) = &recorder {
        opts = opts.recorder(Arc::clone(rec) as _);
    }
    if let Some(plan) = &parsed.chaos {
        if parsed.engine == "threaded" {
            eprintln!(
                "warning: --chaos applies to the des and dist engines; threaded runs ignore it"
            );
        } else {
            opts = opts.chaos(plan.clone());
            if parsed.trace_path.is_none() && parsed.engine == "dist" {
                eprintln!("note: pass --trace to relay per-fault events into the run report");
            }
        }
    }

    // The distributed engine builds its resource registry from worker
    // registrations, so the local --grid machinery does not apply.
    if parsed.engine == "dist" {
        return run_dist(&parsed, &app_xml, &repo, opts, recorder);
    }
    let recipe = make_recipe(&parsed, &app_xml);

    // Build the topology once just to learn the sites it wants, so an
    // auto-generated uniform grid can cover them when no --grid is given.
    let config = match gates::grid::AppConfig::from_xml(&app_xml) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let registry = match &parsed.grid_path {
        Some(path) => match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|xml| registry_from_xml(&xml).map_err(|e| e.to_string()))
        {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: cannot load grid {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => {
            let probe = match repo.build(&config) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let sites: Vec<String> = probe.stages().iter().map(|s| s.site.clone()).collect();
            let unique: Vec<&str> = {
                let mut seen = std::collections::BTreeSet::new();
                sites.iter().filter(|s| seen.insert(s.as_str())).map(String::as_str).collect()
            };
            eprintln!("no --grid given; generating a uniform cluster over {} sites", unique.len());
            ResourceRegistry::uniform_cluster(&unique)
        }
    };

    let deployment = match Launcher::new().launch(config, &repo, &registry) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: launch failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "launched {:?}: {} stages on {} nodes",
        deployment.config.name,
        deployment.topology.stages().len(),
        registry.len()
    );
    for (i, stage) in deployment.topology.stages().iter().enumerate() {
        let id = gates::core::StageId::from_index(i);
        eprintln!("  {:<20} -> {}", stage.name, deployment.plan.node_of(id).unwrap_or("?"));
    }

    let report = match parsed.engine.as_str() {
        "threaded" => {
            match ThreadedEngine::new(deployment.topology, &deployment.plan, opts)
                .and_then(ThreadedEngine::run)
            {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        _ => {
            let mut engine = match DesEngine::new(deployment.topology, &deployment.plan, opts) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match parsed.duration {
                Some(secs) => engine.run_for(SimDuration::from_secs(secs)),
                None => engine.run_to_completion(),
            }
        }
    };

    finish(&parsed, &report, recorder.as_ref(), Some(&recipe))
}

/// Coordinator side of `--engine dist`: bind, announce the control
/// address, and run the deployment across the registered workers.
fn run_dist(
    parsed: &RunArgs,
    app_xml: &str,
    repo: &ApplicationRepository,
    opts: RunOptions,
    recorder: Option<Arc<FlightRecorder>>,
) -> ExitCode {
    let mut config = DistConfig::default();
    if let Some(ms) = parsed.drain_ms {
        config.drain_window = Duration::from_millis(ms);
    }
    let mut retry = RetryPolicy::default();
    if let Some(n) = parsed.retry_attempts {
        retry.max_attempts = n;
    }
    if let Some(ms) = parsed.retry_base_ms {
        retry.base_delay = Duration::from_millis(ms);
    }
    config.retry = retry;
    if let Some(ms) = parsed.heartbeat_ms {
        config.heartbeat_interval = Duration::from_millis(ms);
    }
    if let Some(ms) = parsed.heartbeat_timeout_ms {
        config.heartbeat_timeout = Duration::from_millis(ms);
    }
    if let Some(n) = parsed.checkpoint_every {
        config.checkpoint_every = n;
    }
    // The distributed runtime carries the fault plan to every worker in
    // its config; RunOptions::chaos only drives the virtual-time engine.
    config.fault = parsed.chaos.clone();

    let engine = match DistEngine::bind(app_xml, &parsed.listen, parsed.workers, opts, config) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match engine.local_addr() {
        // Scripts (and the integration tests) parse this line to learn
        // the port when --listen used port 0; keep it stable.
        Ok(addr) => println!("coordinator listening on {addr}"),
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!("waiting for {} workers...", parsed.workers);
    let recipe = make_recipe(parsed, app_xml);
    match engine.run(repo) {
        Ok(report) => finish(parsed, &report, recorder.as_ref(), Some(&recipe)),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The replayable description of the run the CLI was asked to make.
fn make_recipe(parsed: &RunArgs, app_xml: &str) -> RunRecipe {
    let mut recipe = RunRecipe::new(app_xml, parsed.engine.as_str());
    recipe.grid_xml = parsed.grid_path.as_ref().and_then(|p| std::fs::read_to_string(p).ok());
    recipe.duration = parsed.duration;
    recipe.max_time = parsed.max_time;
    recipe.observe_ms = parsed.observe_ms;
    recipe.adapt_ms = parsed.adapt_ms;
    recipe.chaos = parsed.chaos.as_ref().map(|p| p.to_spec());
    recipe
}

/// Rewrite `app_xml` so every adapting stage declares `policy`.
fn apply_policy_to_xml(
    app_xml: &str,
    kind: PolicyKind,
    repo: &ApplicationRepository,
) -> Result<String, String> {
    let mut config = gates::grid::AppConfig::from_xml(app_xml).map_err(|e| e.to_string())?;
    let probe = repo.build(&config).map_err(|e| e.to_string())?;
    for stage in probe.stages() {
        if stage.adaptation.is_some() {
            config.set_policy(&stage.name, kind);
        }
    }
    Ok(config.to_xml())
}

/// Shared tail of every `run` variant: persist the trace, print tables.
fn finish(
    parsed: &RunArgs,
    report: &gates::core::report::RunReport,
    recorder: Option<&Arc<FlightRecorder>>,
    recipe: Option<&RunRecipe>,
) -> ExitCode {
    if let (Some(path), Some(rec)) = (&parsed.trace_path, recorder) {
        if let Err(e) = rec.save_jsonl(path) {
            eprintln!("error: cannot write trace {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("{}", rec.run_trace().summary_table());
        eprintln!("trace written to {path} ({} events)", rec.len());
    }
    if let (Some(path), Some(rec), Some(recipe)) = (&parsed.record_path, recorder, recipe) {
        if let Err(e) = Recording::save(path, recipe, rec) {
            eprintln!("error: cannot write recording {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "recording written to {path} ({} trace events; replay with: gates-cli replay {path})",
            rec.len()
        );
    }

    // A partial run must never look like a clean one: name every worker
    // that vanished, and why. (Integration tests parse these lines.)
    for lost in &report.lost_workers {
        println!("lost worker: {} ({}) at {:.1}s", lost.worker, lost.reason, lost.at);
    }
    if !report.lost_workers.is_empty() {
        println!(
            "WARNING: partial run — {} worker(s) lost; stage counts may be incomplete",
            report.lost_workers.len()
        );
    }
    // Chaos accounting (integration tests parse this line too).
    if report.faults_injected > 0 || report.fault_recoveries > 0 {
        println!(
            "chaos: {} faults injected, {} recoveries",
            report.faults_injected, report.fault_recoveries
        );
    }
    // At-least-once delivery accounting (integration tests and the bench
    // drills parse this line). Printed whenever the delivery layer did
    // any work, so a zero-loss chaos run still shows its repairs.
    if report.packets_lost > 0
        || report.packets_replayed > 0
        || report.packets_deduped > 0
        || report.backpressure_us > 0
    {
        println!(
            "delivery: {} lost, {} replayed, {} deduped, {} us stalled",
            report.packets_lost,
            report.packets_replayed,
            report.packets_deduped,
            report.backpressure_us
        );
    }

    println!("{}", report.summary_table());
    println!("{}", report.detail_table());
    for stage in &report.stages {
        for param in &stage.params {
            if let Some(v) = param.final_value() {
                println!(
                    "parameter {}/{}: start {:.3}, final {:.3}",
                    stage.name, param.name, param.samples[0].1, v
                );
            }
        }
    }
    ExitCode::SUCCESS
}

/// `gates-cli replay`: re-drive a recording, optionally under a
/// different adaptation policy, and diff the adaptation-round traces.
fn replay_cmd(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        eprintln!("error: replay needs a recording file\n{}", usage());
        return ExitCode::FAILURE;
    };
    let mut policy = None;
    let mut trace_out = None;
    let mut it = args[1..].iter();
    while let Some(flag) = it.next() {
        let mut value = |n: &str| it.next().cloned().ok_or_else(|| format!("{n} needs a value"));
        let result: Result<(), String> = (|| {
            match flag.as_str() {
                "--policy" => {
                    policy = Some(
                        PolicyKind::parse(&value("--policy")?)
                            .map_err(|e| format!("--policy: {e}"))?,
                    )
                }
                "--trace" => trace_out = Some(value("--trace")?),
                other => return Err(format!("unknown flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("error: {e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    }

    let recording = match Recording::load(path) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut repo = ApplicationRepository::new();
    apps::publish_all(&mut repo);
    eprintln!(
        "replaying {path} (engine {}, {} recorded adaptation rounds){}",
        recording.recipe.engine,
        recording.adapt_lines().len(),
        match policy {
            Some(kind) => format!(" under policy {kind}"),
            None => String::new(),
        }
    );
    let (report, recorder) = match gates::replay::replay(&recording.recipe, policy, &repo) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(out) = &trace_out {
        if let Err(e) = recorder.save_jsonl(out) {
            eprintln!("error: cannot write trace {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("replay trace written to {out} ({} events)", recorder.len());
    }

    let recorded = recording.adapt_lines();
    let replayed = gates::replay::adapt_lines_of(&recorder);
    let diff = diff_adapt(&recorded, &replayed);
    println!("{}", report.summary_table());
    if policy.is_none() {
        // Same recipe, same policy: on the virtual-time engine the
        // adaptation trace must match the recording bit for bit.
        // (Integration tests and CI parse these lines.)
        if diff.identical() {
            println!("replay: adaptation trace identical to recording ({} rounds)", diff.recorded);
            ExitCode::SUCCESS
        } else {
            println!(
                "replay: DIVERGED — {} recorded vs {} replayed rounds",
                diff.recorded, diff.replayed
            );
            if let Some((i, a, b)) = &diff.first_divergence {
                println!("  first divergence at round {i}:");
                println!("    recorded: {}", a.as_deref().unwrap_or("<missing>"));
                println!("    replayed: {}", b.as_deref().unwrap_or("<missing>"));
            }
            ExitCode::FAILURE
        }
    } else {
        // A-B mode: divergence is the point; report how far apart.
        match &diff.first_divergence {
            Some((i, _, _)) => println!(
                "replay: {} recorded vs {} replayed rounds; traces diverge at round {i}",
                diff.recorded, diff.replayed
            ),
            None => println!(
                "replay: adaptation trace identical despite policy change ({} rounds)",
                diff.recorded
            ),
        }
        ExitCode::SUCCESS
    }
}

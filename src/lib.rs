#![deny(missing_docs)]

//! # GATES — Grid-based Adaptive Execution on Streams
//!
//! A full Rust reproduction of *"GATES: A Grid-Based Middleware for
//! Processing Distributed Data Streams"* (Chen, Reddy, Agrawal —
//! HPDC 2004), including every substrate the paper relies on.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `gates-core` | stages, adjustment parameters, the self-adaptation algorithm, topologies, reports |
//! | [`grid`] | `gates-grid` | resource directory, matchmaker, application repository, Deployer, Launcher |
//! | [`engine`] | `gates-engine` | deterministic virtual-time executor and native-thread runtime |
//! | [`net`] | `gates-net` | bandwidth-limited links, token buckets, wire framing |
//! | [`sim`] | `gates-sim` | discrete-event kernel, virtual clock, statistics, seeded RNG |
//! | [`streams`] | `gates-streams` | counting samples, Misra–Gries, Count-Min, reservoir, P², windows, workloads |
//! | [`apps`] | `gates-apps` | the paper's `count-samps` and `comp-steer` templates plus an intrusion-detection template |
//! | [`xml`] | `gates-xml` | the embedded XML parser used by the Launcher |
//!
//! ## Quickstart
//!
//! ```
//! use gates::apps::count_samps::{self, CountSampsParams, Mode};
//! use gates::engine::{DesEngine, RunOptions};
//! use gates::grid::{Deployer, ResourceRegistry};
//!
//! // Build the paper's count-samps application: 2 sources, a summary
//! // stage near each source, a central collector.
//! let params = CountSampsParams {
//!     sources: 2,
//!     items_per_source: 2_000,
//!     mode: Mode::Distributed { k: 100.0 },
//!     ..Default::default()
//! };
//! let (topology, handles) = count_samps::build(&params);
//!
//! // Deploy it onto a simulated grid and run it in virtual time.
//! let registry = ResourceRegistry::uniform_cluster(&["site-0", "site-1", "central"]);
//! let plan = Deployer::new().deploy(&topology, &registry).unwrap();
//! let mut engine = DesEngine::new(topology, &plan, RunOptions::default()).unwrap();
//! let report = engine.run_to_completion();
//!
//! // The central node answered the top-10 query.
//! let accuracy = handles.accuracy(10);
//! assert!(accuracy.score > 80.0);
//! assert!(report.execution_secs() > 0.0);
//! ```

pub mod replay;

pub use gates_apps as apps;
pub use gates_core as core;
pub use gates_engine as engine;
pub use gates_grid as grid;
pub use gates_net as net;
pub use gates_sim as sim;
pub use gates_streams as streams;
pub use gates_xml as xml;

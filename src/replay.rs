//! Record/replay harness for deterministic A-B runs.
//!
//! A **recording** is one JSONL file: a `recipe` header line holding
//! everything that *generates* the run — the application XML (which
//! carries the source seeds and, via `<stage policy=...>`, the
//! adaptation policies), the optional grid XML, the engine name, the
//! timing knobs, and the `--chaos` fault-plan spec — followed by the
//! run's lossless flight-recorder trace (see
//! [`gates_core::trace::FlightRecorder`]). Capturing the generative
//! inputs rather than raw packets is what makes re-driving possible:
//! sources are seeded deterministic generators, fault plans are seeded,
//! and the virtual-time engine schedules bit-identically from the same
//! inputs.
//!
//! [`replay`] re-runs the recipe — optionally swapping every stage's
//! adaptation policy — and [`diff_adapt`] compares the adaptation-round
//! trace of the replay against the recording line-for-line. On the
//! virtual-time (`des`) engine a replay with the *same* policy must be
//! **bit-identical**: every `{"type":"adapt",...}` line, timestamps
//! included, matches the recording exactly. Wall-clock engines re-drive
//! the same inputs but schedule on real time, so their adaptation
//! traces are comparable, not identical.
//!
//! ```text
//! gates-cli run app.xml --record out.jsonl      # capture
//! gates-cli replay out.jsonl                    # verify bit-identity
//! gates-cli replay out.jsonl --policy aimd      # A-B: same run, new policy
//! ```

use std::sync::Arc;

use gates_core::adapt::PolicyKind;
use gates_core::report::RunReport;
use gates_core::trace::FlightRecorder;
use gates_engine::{DesEngine, RunOptions, ThreadedEngine};
use gates_grid::{registry_from_xml, AppConfig, ApplicationRepository, Launcher, ResourceRegistry};
use gates_sim::{SimDuration, SimTime};

/// Everything needed to re-drive a run: the generative inputs, not the
/// generated traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecipe {
    /// The application configuration XML, verbatim (carries source
    /// seeds as `<param>`s and per-stage policies as `<stage>` attrs).
    pub app_xml: String,
    /// The grid/resource XML, verbatim, when one was supplied.
    pub grid_xml: Option<String>,
    /// Engine the recording was made on: `des`, `threaded` or `dist`.
    pub engine: String,
    /// `--duration` (virtual seconds), when one was given.
    pub duration: Option<u64>,
    /// `--max-time` override, seconds.
    pub max_time: Option<f64>,
    /// `--observe-ms` override.
    pub observe_ms: Option<u64>,
    /// `--adapt-ms` override.
    pub adapt_ms: Option<u64>,
    /// The `--chaos` fault-plan spec string (seeded, so replayable).
    pub chaos: Option<String>,
}

impl RunRecipe {
    /// A recipe for `app_xml` on the given engine, everything else
    /// defaulted.
    pub fn new(app_xml: impl Into<String>, engine: impl Into<String>) -> Self {
        RunRecipe {
            app_xml: app_xml.into(),
            grid_xml: None,
            engine: engine.into(),
            duration: None,
            max_time: None,
            observe_ms: None,
            adapt_ms: None,
            chaos: None,
        }
    }

    /// Serialize as the one-line JSON header of a recording.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(self.app_xml.len() + 256);
        out.push_str("{\"type\":\"recipe\",\"app_xml\":");
        escape(&self.app_xml, &mut out);
        out.push_str(",\"grid_xml\":");
        match &self.grid_xml {
            Some(g) => escape(g, &mut out),
            None => out.push_str("null"),
        }
        out.push_str(",\"engine\":");
        escape(&self.engine, &mut out);
        for (key, val) in [
            ("duration", self.duration.map(|v| v as f64)),
            ("max_time", self.max_time),
            ("observe_ms", self.observe_ms.map(|v| v as f64)),
            ("adapt_ms", self.adapt_ms.map(|v| v as f64)),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            match val {
                Some(v) => out.push_str(&format_num(v)),
                None => out.push_str("null"),
            }
        }
        out.push_str(",\"chaos\":");
        match &self.chaos {
            Some(c) => escape(c, &mut out),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }

    /// Parse a recipe header line written by [`RunRecipe::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<Self, ReplayError> {
        let fields = parse_flat_object(line)?;
        let str_field = |key: &str| -> Option<String> {
            fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
                JsonVal::Str(s) => Some(s.clone()),
                _ => None,
            })
        };
        let num_field = |key: &str| -> Option<f64> {
            fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
                JsonVal::Num(n) => Some(*n),
                _ => None,
            })
        };
        if str_field("type").as_deref() != Some("recipe") {
            return Err(ReplayError("first line of a recording must be a recipe".into()));
        }
        Ok(RunRecipe {
            app_xml: str_field("app_xml")
                .ok_or_else(|| ReplayError("recipe is missing app_xml".into()))?,
            grid_xml: str_field("grid_xml"),
            engine: str_field("engine").unwrap_or_else(|| "des".into()),
            duration: num_field("duration").map(|v| v as u64),
            max_time: num_field("max_time"),
            observe_ms: num_field("observe_ms").map(|v| v as u64),
            adapt_ms: num_field("adapt_ms").map(|v| v as u64),
            chaos: str_field("chaos"),
        })
    }
}

/// A loaded recording: the recipe plus the captured trace lines.
#[derive(Debug, Clone)]
pub struct Recording {
    /// The generative inputs of the recorded run.
    pub recipe: RunRecipe,
    /// The flight-recorder JSONL lines, in capture order.
    pub trace_lines: Vec<String>,
}

impl Recording {
    /// Write a recording: the recipe header followed by the recorder's
    /// full trace.
    pub fn save(
        path: impl AsRef<std::path::Path>,
        recipe: &RunRecipe,
        recorder: &FlightRecorder,
    ) -> std::io::Result<()> {
        let mut out = recipe.to_json_line();
        out.push('\n');
        out.push_str(&recorder.to_jsonl());
        std::fs::write(path, out)
    }

    /// Load a recording written by [`Recording::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self, ReplayError> {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| ReplayError(format!("cannot read recording: {e}")))?;
        let mut lines = text.lines();
        let head = lines.next().ok_or_else(|| ReplayError("recording is empty".into()))?;
        let recipe = RunRecipe::from_json_line(head)?;
        Ok(Recording {
            recipe,
            trace_lines: lines.filter(|l| !l.trim().is_empty()).map(str::to_string).collect(),
        })
    }

    /// The recording's adaptation-round lines, in capture order.
    pub fn adapt_lines(&self) -> Vec<&str> {
        self.trace_lines.iter().map(String::as_str).filter(|l| is_adapt_line(l)).collect()
    }
}

/// Errors from loading, parsing, or re-driving a recording.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayError(pub String);

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "replay: {}", self.0)
    }
}

impl std::error::Error for ReplayError {}

/// Re-drive a recipe and capture a fresh lossless trace.
///
/// `policy` swaps the adaptation policy of **every** adapting stage
/// (the A-B lever); `None` keeps whatever the recipe's XML declares.
/// `repo` must contain the recipe's application, exactly as for a live
/// run. Only the `des` and `threaded` engines can be re-driven in
/// process; a `dist` recording replays on `des` (same topology, same
/// seeds, virtual time).
pub fn replay(
    recipe: &RunRecipe,
    policy: Option<PolicyKind>,
    repo: &ApplicationRepository,
) -> Result<(RunReport, Arc<FlightRecorder>), ReplayError> {
    let mut config = AppConfig::from_xml(&recipe.app_xml)
        .map_err(|e| ReplayError(format!("recipe app xml: {e}")))?;

    // Probe the logical topology once to learn which stages adapt, so a
    // policy override can name them all.
    let probe = repo.build(&config).map_err(|e| ReplayError(format!("build application: {e}")))?;
    if let Some(kind) = policy {
        for stage in probe.stages() {
            if stage.adaptation.is_some() {
                config.set_policy(&stage.name, kind);
            }
        }
    }

    let registry = match &recipe.grid_xml {
        Some(xml) => {
            registry_from_xml(xml).map_err(|e| ReplayError(format!("recipe grid xml: {e}")))?
        }
        None => {
            let mut seen = std::collections::BTreeSet::new();
            let sites: Vec<&str> = probe
                .stages()
                .iter()
                .map(|s| s.site.as_str())
                .filter(|s| seen.insert(*s))
                .collect();
            ResourceRegistry::uniform_cluster(&sites)
        }
    };

    let recorder = Arc::new(FlightRecorder::lossless());
    let mut opts = RunOptions::default().recorder(Arc::clone(&recorder) as _);
    if let Some(mt) = recipe.max_time {
        opts = opts.max_time(SimTime::from_secs_f64(mt));
    }
    if let Some(ms) = recipe.observe_ms {
        opts = opts.observe_every(SimDuration::from_millis(ms));
    }
    if let Some(ms) = recipe.adapt_ms {
        opts = opts.adapt_every(SimDuration::from_millis(ms));
    }
    if let Some(spec) = &recipe.chaos {
        let plan = gates_net::FaultPlan::parse(spec)
            .map_err(|e| ReplayError(format!("recipe chaos spec: {e}")))?;
        opts = opts.chaos(plan);
    }

    let deployment = Launcher::new()
        .launch(config, repo, &registry)
        .map_err(|e| ReplayError(format!("launch: {e}")))?;

    let report = match recipe.engine.as_str() {
        "threaded" => ThreadedEngine::new(deployment.topology, &deployment.plan, opts)
            .and_then(ThreadedEngine::run)
            .map_err(|e| ReplayError(format!("threaded run: {e}")))?,
        // `des` — and `dist`, which re-drives in virtual time.
        _ => {
            let mut engine = DesEngine::new(deployment.topology, &deployment.plan, opts)
                .map_err(|e| ReplayError(format!("des run: {e}")))?;
            match recipe.duration {
                Some(secs) => engine.run_for(SimDuration::from_secs(secs)),
                None => engine.run_to_completion(),
            }
        }
    };
    Ok((report, recorder))
}

/// The outcome of comparing two adaptation-round traces.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptDiff {
    /// Adaptation rounds in the recording.
    pub recorded: usize,
    /// Adaptation rounds in the replay.
    pub replayed: usize,
    /// First index where the traces disagree, with both lines
    /// (`None` for a missing line when lengths differ).
    pub first_divergence: Option<(usize, Option<String>, Option<String>)>,
}

impl AdaptDiff {
    /// True when the traces are bit-identical: same number of rounds,
    /// every line equal.
    pub fn identical(&self) -> bool {
        self.first_divergence.is_none() && self.recorded == self.replayed
    }
}

/// Compare two adaptation-round traces line-for-line.
pub fn diff_adapt<A: AsRef<str>, B: AsRef<str>>(recorded: &[A], replayed: &[B]) -> AdaptDiff {
    let n = recorded.len().max(replayed.len());
    let mut first = None;
    for i in 0..n {
        let a = recorded.get(i).map(|l| l.as_ref());
        let b = replayed.get(i).map(|l| l.as_ref());
        if a != b {
            first = Some((i, a.map(str::to_string), b.map(str::to_string)));
            break;
        }
    }
    AdaptDiff { recorded: recorded.len(), replayed: replayed.len(), first_divergence: first }
}

/// True for flight-recorder lines describing an adaptation round.
pub fn is_adapt_line(line: &str) -> bool {
    line.starts_with("{\"type\":\"adapt\"")
}

/// Extract the adaptation-round lines from a recorder's JSONL dump.
pub fn adapt_lines_of(recorder: &FlightRecorder) -> Vec<String> {
    recorder.to_jsonl().lines().filter(|l| is_adapt_line(l)).map(str::to_string).collect()
}

// ---------------------------------------------------------------------
// Minimal flat-JSON plumbing (the workspace carries no JSON dependency;
// the recipe line is one flat object of strings, numbers and nulls).

fn format_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[derive(Debug, Clone, PartialEq)]
enum JsonVal {
    Str(String),
    Num(f64),
    Null,
}

/// Parse one flat JSON object — string/number/null/bool values only, no
/// nesting — into key/value pairs.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonVal)>, ReplayError> {
    let bad = |msg: &str| ReplayError(format!("bad recipe line: {msg}"));
    let mut chars = line.trim().chars().peekable();
    let mut fields = Vec::new();
    if chars.next() != Some('{') {
        return Err(bad("expected '{'"));
    }
    loop {
        // Skip whitespace and separators up to the next key or the end.
        while matches!(chars.peek(), Some(&c) if c.is_whitespace() || c == ',') {
            chars.next();
        }
        match chars.peek() {
            Some('}') => break,
            Some('"') => {}
            _ => return Err(bad("expected a key")),
        }
        let key = parse_string(&mut chars).ok_or_else(|| bad("unterminated key"))?;
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        if chars.next() != Some(':') {
            return Err(bad("expected ':'"));
        }
        while matches!(chars.peek(), Some(c) if c.is_whitespace()) {
            chars.next();
        }
        let val = match chars.peek() {
            Some('"') => {
                JsonVal::Str(parse_string(&mut chars).ok_or_else(|| bad("unterminated string"))?)
            }
            Some('n') => {
                for expect in "null".chars() {
                    if chars.next() != Some(expect) {
                        return Err(bad("expected null"));
                    }
                }
                JsonVal::Null
            }
            Some('t') | Some('f') => {
                // Booleans: tolerated, surfaced as numbers 1/0.
                let word: String =
                    std::iter::from_fn(|| chars.next_if(|c| c.is_ascii_alphabetic())).collect();
                match word.as_str() {
                    "true" => JsonVal::Num(1.0),
                    "false" => JsonVal::Num(0.0),
                    _ => return Err(bad("expected a boolean")),
                }
            }
            Some(&c) if c.is_ascii_digit() || c == '-' => {
                let raw: String = std::iter::from_fn(|| {
                    chars
                        .next_if(|c| c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E'))
                })
                .collect();
                JsonVal::Num(raw.parse().map_err(|_| bad("malformed number"))?)
            }
            _ => return Err(bad("unsupported value (nested objects not allowed)")),
        };
        fields.push((key, val));
    }
    Ok(fields)
}

/// Parse a JSON string literal starting at the opening quote.
fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Option<String> {
    if chars.next() != Some('"') {
        return None;
    }
    let mut out = String::new();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'b' => out.push('\u{8}'),
                'f' => out.push('\u{c}'),
                'u' => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        code = code * 16 + chars.next()?.to_digit(16)?;
                    }
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recipe_round_trips_through_json() {
        let mut recipe = RunRecipe::new(
            "<application name=\"x\" repository=\"y\">\n  <param name=\"seed\" value=\"7\"/>\n</application>",
            "des",
        );
        recipe.duration = Some(30);
        recipe.observe_ms = Some(100);
        recipe.chaos = Some("seed=7,drop=0.02,delay=5ms..40ms".into());
        let line = recipe.to_json_line();
        assert!(!line.contains('\n'), "recipe must be one line");
        let back = RunRecipe::from_json_line(&line).unwrap();
        assert_eq!(back, recipe);
    }

    #[test]
    fn recipe_handles_awkward_strings() {
        let mut recipe = RunRecipe::new("a \"quoted\" \\ backslash\ttab", "threaded");
        recipe.grid_xml = Some("<grid>\n</grid>".into());
        let back = RunRecipe::from_json_line(&recipe.to_json_line()).unwrap();
        assert_eq!(back, recipe);
    }

    #[test]
    fn junk_headers_rejected() {
        assert!(RunRecipe::from_json_line("").is_err());
        assert!(RunRecipe::from_json_line("not json").is_err());
        assert!(RunRecipe::from_json_line("{\"type\":\"adapt\"}").is_err());
        assert!(RunRecipe::from_json_line("{\"type\":\"recipe\"}").is_err(), "missing app_xml");
        assert!(RunRecipe::from_json_line("{\"type\":\"recipe\",\"app_xml\":{}}").is_err());
    }

    #[test]
    fn diff_reports_first_divergence() {
        let a = ["x", "y", "z"];
        let b = ["x", "q", "z"];
        let d = diff_adapt(&a, &b);
        assert!(!d.identical());
        let (i, left, right) = d.first_divergence.unwrap();
        assert_eq!((i, left.as_deref(), right.as_deref()), (1, Some("y"), Some("q")));

        let d = diff_adapt(&a, &a[..2]);
        assert!(!d.identical());
        assert_eq!(d.first_divergence.unwrap().0, 2);

        assert!(diff_adapt(&a, &a).identical());
        assert!(diff_adapt::<&str, &str>(&[], &[]).identical());
    }
}

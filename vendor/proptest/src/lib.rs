//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors an API-compatible subset of proptest: the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_recursive` / `boxed`, range and tuple strategies, `any::<T>()`,
//! [`collection::vec`] / [`collection::hash_set`], [`option::of`],
//! regex-subset string strategies, `prop_oneof!`, and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//! - Cases are generated from a deterministic per-test seed, so runs are
//!   reproducible without a persistence file; there is **no shrinking** —
//!   a failure reports the full generated input instead.
//! - `*.proptest-regressions` files are still honored: each `cc <hex>`
//!   line is replayed as a deterministic extra seed before the main
//!   cases, so checked-in regression entries keep exercising the test.

pub mod test_runner {
    //! Deterministic case driver.

    /// Failure raised by `prop_assert!` and friends inside a property.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Build from any message.
        pub fn new(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases =
                std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// SplitMix64 generator driving all value generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded constructor.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[lo, hi)`; `lo` when the range is empty.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            if hi <= lo {
                return lo;
            }
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }

    fn fnv64(data: &[u8]) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Collect replay seeds from every `*.proptest-regressions` file under
    /// `<manifest_dir>/tests`. Each `cc <hex>` entry hashes to one seed.
    pub fn regression_seeds(manifest_dir: &str) -> Vec<u64> {
        let mut seeds = Vec::new();
        let dir = std::path::Path::new(manifest_dir).join("tests");
        let Ok(entries) = std::fs::read_dir(dir) else {
            return seeds;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let is_regressions =
                path.extension().and_then(|e| e.to_str()) == Some("proptest-regressions");
            if !is_regressions {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            for line in text.lines() {
                let line = line.trim();
                if let Some(rest) = line.strip_prefix("cc ") {
                    let token = rest.split_whitespace().next().unwrap_or("");
                    if !token.is_empty() {
                        seeds.push(fnv64(token.as_bytes()));
                    }
                }
            }
        }
        seeds
    }

    /// Drive one property: replay regression seeds, then `cfg.cases`
    /// deterministic cases derived from the test name.
    pub fn run_property(
        cfg: &ProptestConfig,
        manifest_dir: &str,
        test_name: &str,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        for (i, seed) in regression_seeds(manifest_dir).into_iter().enumerate() {
            let mut rng = TestRng::from_seed(seed);
            if let Err(e) = case(&mut rng) {
                panic!("proptest {test_name}: regression seed {i} failed:\n  {e}");
            }
        }
        let base = fnv64(test_name.as_bytes());
        for i in 0..cfg.cases {
            let mut rng = TestRng::from_seed(base ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            if let Err(e) = case(&mut rng) {
                panic!("proptest {test_name}: case {i}/{} failed:\n  {e}", cfg.cases);
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::sync::Arc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { source: self, f }
        }

        /// Build a recursive strategy: `recurse` wraps the current
        /// strategy `depth` times (leaf probability comes from the
        /// wrapped strategy's own size choices).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut s = self.boxed();
            for _ in 0..depth {
                s = recurse(s.clone()).boxed();
            }
            s
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(move |rng| self.new_value(rng)))
        }
    }

    /// Type-erased, cheaply cloneable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy yielding a clone of a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build from the alternatives; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one alternative");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0, self.options.len());
            self.options[i].new_value(rng)
        }
    }

    /// Types with a canonical whole-domain strategy, for [`any`].
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Whole-domain strategy for `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64..self.end as f64).new_value(rng) as f32
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9)
    }

    impl Strategy for &'static str {
        type Value = String;
        fn new_value(&self, rng: &mut TestRng) -> String {
            super::string::generate(self, rng)
        }
    }
}

pub mod string {
    //! Generation from the regex subset the workspace's patterns use:
    //! literal characters, `[...]` classes with ranges, `\PC`
    //! (printable, non-control), and `{m,n}` repetition.

    use super::test_runner::TestRng;

    enum Item {
        Literal(char),
        Class(Vec<(char, char)>),
        Printable,
    }

    struct Token {
        item: Item,
        min: u32,
        max: u32,
    }

    fn parse(pattern: &str) -> Vec<Token> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut tokens = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let item = match chars[i] {
                '\\' => {
                    i += 1;
                    match chars.get(i) {
                        Some('P') => {
                            // \PC — "not in unicode category C (control)".
                            i += 2; // consume 'P' and the category letter
                            Item::Printable
                        }
                        Some(&c) => {
                            i += 1;
                            Item::Literal(c)
                        }
                        None => break,
                    }
                }
                '[' => {
                    i += 1;
                    let mut ranges = Vec::new();
                    while i < chars.len() && chars[i] != ']' {
                        let lo = if chars[i] == '\\' {
                            i += 1;
                            chars[i]
                        } else {
                            chars[i]
                        };
                        i += 1;
                        if i + 1 < chars.len() && chars[i] == '-' && chars[i + 1] != ']' {
                            let hi = chars[i + 1];
                            ranges.push((lo, hi));
                            i += 2;
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    i += 1; // ']'
                    Item::Class(ranges)
                }
                c => {
                    i += 1;
                    Item::Literal(c)
                }
            };
            // Optional {m,n} quantifier.
            let (min, max) = if chars.get(i) == Some(&'{') {
                let close = chars[i..].iter().position(|&c| c == '}').map(|p| i + p);
                if let Some(close) = close {
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => {
                            (lo.trim().parse().unwrap_or(0), hi.trim().parse().unwrap_or(1))
                        }
                        None => {
                            let n = body.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                } else {
                    (1, 1)
                }
            } else {
                (1, 1)
            };
            tokens.push(Token { item, min, max });
        }
        tokens
    }

    const EXTRA_PRINTABLE: &[char] = &['é', 'ß', 'λ', 'Ж', '中', '→', '✓', 'あ'];

    fn sample(item: &Item, rng: &mut TestRng) -> char {
        match item {
            Item::Literal(c) => *c,
            Item::Class(ranges) => {
                let (lo, hi) = ranges[rng.usize_in(0, ranges.len())];
                let span = hi as u32 - lo as u32 + 1;
                char::from_u32(lo as u32 + (rng.next_u64() as u32) % span).unwrap_or(lo)
            }
            Item::Printable => {
                if rng.usize_in(0, 10) == 0 {
                    EXTRA_PRINTABLE[rng.usize_in(0, EXTRA_PRINTABLE.len())]
                } else {
                    char::from_u32(0x20 + (rng.next_u64() as u32) % (0x7F - 0x20)).unwrap_or(' ')
                }
            }
        }
    }

    /// Generate one string matching `pattern`.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for token in parse(pattern) {
            let count = token.min + (rng.next_u64() as u32) % (token.max - token.min + 1);
            for _ in 0..count {
                out.push(sample(&token.item, rng));
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.elem.new_value(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with a size drawn from `size`.
    pub struct HashSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// `HashSet` strategy with cardinality in `size` (best effort when
    /// the element universe is smaller than the requested minimum).
    pub fn hash_set<S>(elem: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { elem, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = rng.usize_in(self.size.start, self.size.end);
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            let max_attempts = target * 10 + 100;
            while out.len() < target && attempts < max_attempts {
                out.insert(self.elem.new_value(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.usize_in(0, 4) == 0 {
                None
            } else {
                Some(self.inner.new_value(rng))
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs.

    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; failure reports the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::new(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Uniform choice between strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Accepts an optional
/// `#![proptest_config(...)]` header followed by `#[test]` functions
/// whose arguments are drawn from strategies (`name in strategy`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                $crate::test_runner::run_property(
                    &__cfg,
                    env!("CARGO_MANIFEST_DIR"),
                    stringify!($name),
                    |__rng: &mut $crate::test_runner::TestRng| {
                        let __vals = (
                            $( $crate::strategy::Strategy::new_value(&($strategy), __rng), )+
                        );
                        let __desc = format!("{:?}", __vals);
                        let ( $($pat,)+ ) = __vals;
                        let mut __case = move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __case().map_err(|e| $crate::test_runner::TestCaseError::new(
                            format!("{}\n  input: {}", e.0, __desc),
                        ))
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -5i64..5, f in -2.5f64..7.5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((-2.5..7.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn mapped_values_transform(s in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert!(s % 2 == 0 && s < 20);
        }

        #[test]
        fn oneof_picks_every_arm(mut seen in crate::collection::vec(prop_oneof![Just(1u8), Just(2u8)], 64..65)) {
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen, vec![1u8, 2u8]);
        }

        #[test]
        fn regex_subset_generates_matching(s in "[a-c]{2,4}x") {
            prop_assert!(s.len() >= 3 && s.len() <= 5, "got {s:?}");
            prop_assert!(s.ends_with('x'));
            prop_assert!(s[..s.len() - 1].chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn printable_class_has_no_controls() {
        let mut rng = TestRng::from_seed(42);
        for _ in 0..200 {
            let s = crate::string::generate("\\PC{0,64}", &mut rng);
            assert!(!s.chars().any(|c| c.is_control()), "control char in {s:?}");
        }
    }
}

//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset it uses: [`Mutex`] and [`RwLock`] with
//! parking_lot's poison-free API, implemented over the std primitives
//! (a poisoned std lock is recovered transparently).

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard,
};

/// A mutual-exclusion lock that never poisons.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: self.inner.lock().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard { inner: e.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

/// A reader-writer lock that never poisons.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: StdRwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(|e| e.into_inner()) }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(|e| e.into_inner()) }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}

//! Offline stand-in for the `rand` crate (0.8-style API).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset it uses: [`rngs::SmallRng`] (an
//! xoshiro256++ generator), [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`.
//! Deterministic for a given seed, like upstream `SmallRng`, but the
//! exact value streams differ from the real crate — fine here, because
//! everything in this workspace derives randomness from explicit seeds.

/// Core PRNG interface: a source of random 64-bit words.
pub trait RngCore {
    /// Next random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next random 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A PRNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (stretched internally).
    fn seed_from_u64(seed: u64) -> Self;

    /// Construct from OS entropy. Offline stand-in: derives the seed
    /// from the monotonic clock; use `seed_from_u64` for determinism.
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9E37_79B9_7F4A_7C15);
        Self::seed_from_u64(nanos)
    }
}

/// Types sampled uniformly over their whole domain by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform distribution over a half-open range, for
/// [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draw uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is < 2^-64 per draw for the spans used here.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        let v = lo + u * (hi - lo);
        if v < hi {
            v
        } else {
            lo
        }
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Extension trait with the ergonomic sampling methods.
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's whole domain
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from a half-open range `lo..hi`.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_state(mut sm: u64) -> Self {
            // SplitMix64 seed stretching, per the xoshiro reference code.
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_state(seed)
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = r.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
        for _ in 0..200 {
            let v = r.gen_range(-3.0f64..3.0);
            assert!((-3.0..3.0).contains(&v));
        }
    }
}

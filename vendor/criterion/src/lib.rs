//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal wall-clock harness with the same API
//! shape: `criterion_group!` / `criterion_main!`, benchmark groups,
//! `Bencher::iter` / `iter_batched`, throughput annotation. It
//! calibrates an iteration count to a fixed measurement window and
//! prints mean time per iteration (plus derived throughput); it does
//! not do statistical outlier analysis like the real crate.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup cost. The stand-in re-runs setup
/// per batch regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup for every routine call.
    PerIteration,
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        let measurement = self.measurement;
        println!("\n== {name}");
        BenchmarkGroup { _c: self, name, throughput: None, measurement }
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the measurement window.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Accepted for API compatibility; the stand-in takes one sample.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { window: self.measurement, total: Duration::ZERO, iters: 0 };
        f(&mut b);
        let per_iter = if b.iters > 0 { b.total.as_secs_f64() / b.iters as f64 } else { 0.0 };
        let mut line = format!("{}/{id}: {} ({} iters)", self.name, fmt_time(per_iter), b.iters);
        if per_iter > 0.0 {
            match self.throughput {
                Some(Throughput::Elements(n)) => {
                    line.push_str(&format!(", {:.2} Melem/s", n as f64 / per_iter / 1e6));
                }
                Some(Throughput::Bytes(n)) => {
                    line.push_str(&format!(
                        ", {:.2} MiB/s",
                        n as f64 / per_iter / (1 << 20) as f64
                    ));
                }
                None => {}
            }
        }
        println!("{line}");
        self
    }

    /// End the group.
    pub fn finish(&mut self) {}
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    window: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measure `routine` repeatedly over the measurement window.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count that fills
        // roughly the measurement window.
        let start = Instant::now();
        black_box(routine());
        let one = start.elapsed().max(Duration::from_nanos(10));
        let target = (self.window.as_secs_f64() / one.as_secs_f64()).clamp(1.0, 1e7) as u64;
        let begin = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.total = begin.elapsed();
        self.iters = target;
    }

    /// Measure `routine` on fresh inputs produced by `setup`; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let one = start.elapsed().max(Duration::from_nanos(10));
        let target = (self.window.as_secs_f64() / one.as_secs_f64()).clamp(1.0, 1e6) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..target {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.total = total;
        self.iters = target;
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_smoke() {
        let mut c = Criterion { measurement: Duration::from_millis(5) };
        let mut g = c.benchmark_group("smoke");
        g.throughput(Throughput::Elements(1));
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&x| x as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}

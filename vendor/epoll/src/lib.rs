//! Offline stand-in for Linux `epoll` bindings.
//!
//! The build environment has no network access to crates.io, so this
//! crate declares the handful of raw syscall entry points it needs
//! directly (`std` already links libc, making the symbols available)
//! and wraps them in safe RAII types:
//!
//! - [`Epoll`]: a level-triggered readiness poller (`epoll_create1` /
//!   `epoll_ctl` / `epoll_wait`),
//! - [`EventFd`]: a cross-thread wakeup fd (`eventfd`),
//! - [`set_nonblocking`]: `O_NONBLOCK` via `fcntl`.
//!
//! Only the subset used by the `gates-net` reactor is provided; the
//! event mask constants mirror the kernel ABI values.

use std::io;
use std::os::unix::io::RawFd;

// Raw syscall surface. Linux ABI: epoll_event is packed on x86-64.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct RawEpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut RawEpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut RawEpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn eventfd(initval: u32, flags: i32) -> i32;
    fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EFD_CLOEXEC: i32 = 0o2000000;
const EFD_NONBLOCK: i32 = 0o4000;
const F_GETFL: i32 = 3;
const F_SETFL: i32 = 4;
const O_NONBLOCK: i32 = 0o4000;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, no need to request.
pub const EPOLLERR: u32 = 0x008;
/// Peer hang-up (`EPOLLHUP`); always reported, no need to request.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// One readiness report from [`Epoll::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// The token registered with the fd.
    pub token: u64,
}

impl Event {
    /// Whether the fd is readable (or in an error/hang-up state, which
    /// a read will surface).
    pub fn readable(&self) -> bool {
        self.events & (EPOLLIN | EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0
    }

    /// Whether the fd is writable.
    pub fn writable(&self) -> bool {
        self.events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0
    }
}

/// A level-triggered epoll instance. Closes its fd on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

// The epoll fd is just an integer handle; all operations are kernel
// syscalls that are safe to issue from any thread.
unsafe impl Send for Epoll {}
unsafe impl Sync for Epoll {}

impl Epoll {
    /// Create a new epoll instance.
    pub fn new() -> io::Result<Epoll> {
        // SAFETY: plain syscall, no pointers involved.
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: i32, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        let mut ev = RawEpollEvent { events: interest, data: token };
        let evp = if op == EPOLL_CTL_DEL { std::ptr::null_mut() } else { &mut ev };
        // SAFETY: `evp` points at a live stack value (or is null for DEL,
        // as the ABI allows on kernels >= 2.6.9).
        let rc = unsafe { epoll_ctl(self.fd, op, fd, evp) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Register `fd` with the given interest mask; `token` comes back in
    /// every [`Event`] for this fd.
    pub fn add(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Change the interest mask of a registered fd.
    pub fn modify(&self, fd: RawFd, interest: u32, token: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregister an fd.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Wait for readiness, filling `out` and returning the number of
    /// events. `timeout_ms` of `None` blocks indefinitely; `Some(0)`
    /// polls. Spurious zero-event returns (EINTR) are mapped to `Ok(0)`.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: Option<i32>) -> io::Result<usize> {
        const MAX_EVENTS: usize = 64;
        let mut raw = [RawEpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let timeout = timeout_ms.unwrap_or(-1);
        // SAFETY: `raw` is a live buffer of MAX_EVENTS entries.
        let n = unsafe { epoll_wait(self.fd, raw.as_mut_ptr(), MAX_EVENTS as i32, timeout) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        out.clear();
        for ev in raw.iter().take(n as usize) {
            out.push(Event { events: ev.events, token: ev.data });
        }
        Ok(n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this instance and not used after drop.
        unsafe { close(self.fd) };
    }
}

/// A kernel eventfd used as a cross-thread wakeup: any thread may
/// [`EventFd::notify`]; a poller registers the fd for `EPOLLIN` and
/// [`EventFd::drain`]s it when it fires. Closes its fd on drop.
#[derive(Debug)]
pub struct EventFd {
    fd: RawFd,
}

unsafe impl Send for EventFd {}
unsafe impl Sync for EventFd {}

impl EventFd {
    /// Create a nonblocking eventfd with an initial count of zero.
    pub fn new() -> io::Result<EventFd> {
        // SAFETY: plain syscall.
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EventFd { fd })
    }

    /// The raw fd, for registration with an [`Epoll`].
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Wake any poller watching this fd. Never blocks: if the counter is
    /// already saturated a wakeup is pending anyway.
    pub fn notify(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 bytes from a live stack value; EAGAIN on a
        // saturated counter is fine (a wakeup is already queued).
        unsafe { write(self.fd, one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Consume all pending wakeups so level-triggered polling quiesces.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        // SAFETY: reads 8 bytes into a live stack buffer; the fd is
        // nonblocking so this returns EAGAIN once empty.
        unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        // SAFETY: fd is owned by this instance and not used after drop.
        unsafe { close(self.fd) };
    }
}

/// Switch `fd` into (or out of) nonblocking mode.
pub fn set_nonblocking(fd: RawFd, nonblocking: bool) -> io::Result<()> {
    // SAFETY: fcntl on a caller-supplied fd with no pointer arguments.
    let flags = unsafe { fcntl(fd, F_GETFL, 0) };
    if flags < 0 {
        return Err(io::Error::last_os_error());
    }
    let new = if nonblocking { flags | O_NONBLOCK } else { flags & !O_NONBLOCK };
    // SAFETY: as above.
    if unsafe { fcntl(fd, F_SETFL, new) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.fd(), EPOLLIN, 7).unwrap();

        let mut out = Vec::new();
        // Nothing pending: times out with no events.
        assert_eq!(ep.wait(&mut out, Some(0)).unwrap(), 0);

        ev.notify();
        assert_eq!(ep.wait(&mut out, Some(1000)).unwrap(), 1);
        assert_eq!(out[0].token, 7);
        assert!(out[0].readable());

        // Level-triggered: still readable until drained.
        assert_eq!(ep.wait(&mut out, Some(0)).unwrap(), 1);
        ev.drain();
        assert_eq!(ep.wait(&mut out, Some(0)).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_and_interest_changes() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        set_nonblocking(server.as_raw_fd(), true).unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN, 1).unwrap();

        let mut out = Vec::new();
        assert_eq!(ep.wait(&mut out, Some(0)).unwrap(), 0);

        client.write_all(b"ping").unwrap();
        assert_eq!(ep.wait(&mut out, Some(1000)).unwrap(), 1);
        assert!(out[0].readable());
        let mut buf = [0u8; 8];
        let n = server.read(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping");

        // Ask for write interest too: an idle socket is instantly writable.
        ep.modify(server.as_raw_fd(), EPOLLIN | EPOLLOUT, 2).unwrap();
        assert_eq!(ep.wait(&mut out, Some(1000)).unwrap(), 1);
        assert!(out[0].writable());
        assert_eq!(out[0].token, 2);

        ep.delete(server.as_raw_fd()).unwrap();
        client.write_all(b"x").unwrap();
        assert_eq!(ep.wait(&mut out, Some(0)).unwrap(), 0);
    }

    #[test]
    fn nonblocking_read_returns_wouldblock() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (mut server, _) = listener.accept().unwrap();
        set_nonblocking(server.as_raw_fd(), true).unwrap();
        let mut buf = [0u8; 8];
        let err = server.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }
}

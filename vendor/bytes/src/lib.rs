//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `bytes`:
//! [`Bytes`] (cheaply cloneable, sliceable immutable buffer), [`BytesMut`]
//! (growable buffer with a consumable read cursor), and the [`Buf`] /
//! [`BufMut`] cursor traits. All multi-byte integer accessors are
//! big-endian, matching the upstream defaults.

use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    start: usize,
    end: usize,
}

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes { repr: Repr::Static(&[]), start: 0, end: 0 }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes { repr: Repr::Static(s), start: 0, end: s.len() }
    }

    /// View a sub-range of shared storage without copying.
    ///
    /// The returned buffer holds a reference on `storage`; callers that
    /// recycle storage (e.g. a buffer pool) can watch
    /// [`Arc::strong_count`] drop back to their own reference count to
    /// learn that every view has been released.
    ///
    /// # Panics
    /// Panics when `start..end` is not a valid range of `storage`.
    pub fn from_shared(storage: Arc<Vec<u8>>, start: usize, end: usize) -> Self {
        assert!(start <= end && end <= storage.len(), "from_shared out of bounds");
        Bytes { repr: Repr::Shared(storage), start, end }
    }

    /// Consume the buffer into an owned `Vec<u8>`.
    ///
    /// Zero-copy when this is the only reference to the full backing
    /// storage; otherwise copies just once (unlike `to_vec()` on a
    /// buffer that was itself built from a copy).
    pub fn into_vec(self) -> Vec<u8> {
        match self.repr {
            Repr::Shared(arc) if self.start == 0 && self.end == arc.len() => {
                Arc::try_unwrap(arc).unwrap_or_else(|arc| arc.as_slice().to_vec())
            }
            Repr::Shared(arc) => arc[self.start..self.end].to_vec(),
            Repr::Static(s) => s[self.start..self.end].to_vec(),
        }
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    fn backing(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v.as_slice(),
        }
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.backing()[self.start..self.end]
    }

    /// A sub-range of this buffer, sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds: {lo}..{hi} of {}", self.len());
        Bytes { repr: self.repr.clone(), start: self.start + lo, end: self.start + hi }
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes { repr: self.repr.clone(), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// Copy the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes { repr: Repr::Shared(Arc::new(v)), start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        b.freeze()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        debug_bytes(self.as_slice(), f)
    }
}

fn debug_bytes(bytes: &[u8], f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
    write!(f, "b\"")?;
    for &b in bytes {
        for c in std::ascii::escape_default(b) {
            write!(f, "{}", c as char)?;
        }
    }
    write!(f, "\"")
}

impl std::cmp::PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl std::cmp::Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

/// A growable byte buffer with a consumable read cursor at the front.
#[derive(Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
    read: usize,
}

/// Consumed-prefix size past which appends compact the buffer instead of
/// letting the backing `Vec` grow behind the read cursor forever.
const COMPACT_THRESHOLD: usize = 4096;

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new(), read: 0 }
    }

    /// An empty buffer with `cap` bytes of capacity pre-allocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap), read: 0 }
    }

    /// Unread length.
    pub fn len(&self) -> usize {
        self.buf.len() - self.read
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The unread bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[self.read..]
    }

    /// Append a slice.
    ///
    /// A long-lived buffer used as a socket read/write accumulator is
    /// appended to and consumed from indefinitely; without compaction the
    /// backing `Vec` would grow by every byte it ever carried. Appends
    /// first reclaim the consumed prefix once it dominates the buffer.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(s);
    }

    /// Move unread bytes to the front when the consumed prefix is large,
    /// so the backing allocation stays proportional to the working set.
    fn compact(&mut self) {
        if self.read == self.buf.len() {
            self.buf.clear();
            self.read = 0;
        } else if self.read >= COMPACT_THRESHOLD && self.read * 2 >= self.buf.len() {
            self.buf.drain(..self.read);
            self.read = 0;
        }
    }

    /// Reserve capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Drop everything, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.read = 0;
    }

    /// Split off and return the first `at` unread bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = self.buf[self.read..self.read + at].to_vec();
        self.read += at;
        BytesMut { buf: head, read: 0 }
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        if self.read > 0 {
            self.buf.drain(..self.read);
        }
        Bytes::from(self.buf)
    }

    /// Copy the unread contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let read = self.read;
        &mut self.buf[read..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec(), read: 0 }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { buf: v, read: 0 }
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for BytesMut {}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        debug_bytes(self.as_slice(), f)
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.read += cnt;
        if self.read == self.buf.len() {
            self.buf.clear();
            self.read = 0;
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// Read cursor over a contiguous byte region. Big-endian accessors.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.chunk()[..2]);
        self.advance(2);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        self.get_u64() as i64
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }

    /// Copy bytes into `dst`, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

/// Write cursor appending to a growable byte buffer. Big-endian writers.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_u64(v as u64);
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_slice_and_split_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn bytesmut_round_trip_big_endian() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u32(0xDEAD_BEEF);
        m.put_u8(7);
        m.put_u64(42);
        m.put_f64(1.5);
        assert_eq!(m.len(), 4 + 1 + 8 + 8);
        assert_eq!(m.get_u32(), 0xDEAD_BEEF);
        assert_eq!(m.get_u8(), 7);
        assert_eq!(m.get_u64(), 42);
        assert_eq!(m.get_f64(), 1.5);
        assert!(m.is_empty());
    }

    #[test]
    fn bytesmut_split_freeze() {
        let mut m = BytesMut::from(&b"hello world"[..]);
        m.advance(6);
        let w = m.split_to(5).freeze();
        assert_eq!(&w[..], b"world");
        assert!(m.is_empty());
    }

    #[test]
    fn static_bytes_are_zero_copy() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b.len(), 3);
        assert_eq!(b, Bytes::from(vec![b'a', b'b', b'c']));
    }

    #[test]
    fn from_shared_views_share_storage() {
        let storage = Arc::new(vec![1u8, 2, 3, 4, 5, 6]);
        let a = Bytes::from_shared(storage.clone(), 1, 4);
        let b = Bytes::from_shared(storage.clone(), 4, 6);
        assert_eq!(&a[..], &[2, 3, 4]);
        assert_eq!(&b[..], &[5, 6]);
        assert_eq!(Arc::strong_count(&storage), 3);
        drop(a);
        drop(b);
        assert_eq!(Arc::strong_count(&storage), 1);
    }

    #[test]
    fn into_vec_is_zero_copy_when_unique() {
        let v = vec![7u8; 32];
        let ptr = v.as_ptr();
        let b = Bytes::from(v);
        let back = b.into_vec();
        assert_eq!(back.as_ptr(), ptr);
        assert_eq!(back, vec![7u8; 32]);

        let shared = Bytes::from(vec![1u8, 2, 3]);
        let tail = shared.slice(1..);
        assert_eq!(tail.into_vec(), vec![2, 3]);
    }

    #[test]
    fn bytesmut_compacts_consumed_prefix() {
        let mut m = BytesMut::new();
        // Interleave appends and full drains: the backing allocation must
        // stay near the chunk size instead of growing by every byte seen.
        for _ in 0..1000 {
            m.extend_from_slice(&[0u8; 1024]);
            m.advance(1024);
        }
        assert!(m.buf.capacity() < 64 * 1024, "capacity {} grew unbounded", m.buf.capacity());

        // Partial consumption past the threshold also compacts on append.
        let mut m = BytesMut::new();
        m.extend_from_slice(&vec![9u8; 10 * 1024]);
        m.advance(9 * 1024);
        m.extend_from_slice(&[1, 2, 3]);
        assert_eq!(m.read, 0);
        assert_eq!(m.len(), 1024 + 3);
        assert_eq!(&m.as_slice()[1024..], &[1, 2, 3]);
    }
}

//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors an API-compatible subset: [`channel`] provides
//! MPMC bounded/unbounded channels with the blocking, timed and
//! non-blocking operations the threaded engine uses. Built on
//! `std::sync::{Mutex, Condvar}`; correctness over raw speed.

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    fn lock<T>(inner: &Inner<T>) -> std::sync::MutexGuard<'_, State<T>> {
        inner.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Create a bounded channel with capacity `cap`.
    ///
    /// `cap == 0` is treated as capacity 1 (upstream crossbeam supports
    /// rendezvous channels; this workspace never creates them).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Sender::send_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum SendTimeoutError<T> {
        /// The timeout elapsed with the channel still full.
        Timeout(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued or all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = lock(&self.inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.cap.is_none_or(|c| st.queue.len() < c) {
                    st.queue.push_back(value);
                    drop(st);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                st = self.inner.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Enqueue without blocking.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut st = lock(&self.inner);
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if st.cap.is_some_and(|c| st.queue.len() >= c) {
                return Err(TrySendError::Full(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Block until the value is enqueued, all receivers are gone, or
        /// `timeout` elapses.
        pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendTimeoutError::Disconnected(value));
                }
                if st.cap.is_none_or(|c| st.queue.len() < c) {
                    st.queue.push_back(value);
                    drop(st);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(SendTimeoutError::Timeout(value));
                }
                let (guard, _res) = self
                    .inner
                    .not_full
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            lock(&self.inner).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).senders += 1;
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = lock(&self.inner);
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                self.inner.not_empty.notify_all();
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives or all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = lock(&self.inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.not_empty.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = lock(&self.inner);
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Block until a value arrives, all senders are gone, or `timeout`
        /// elapses.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = lock(&self.inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .inner
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            lock(&self.inner).queue.len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Blocking iterator draining the channel until disconnect.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            lock(&self.inner).receivers += 1;
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = lock(&self.inner);
                st.receivers -= 1;
                st.receivers
            };
            if remaining == 0 {
                self.inner.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received values.
    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::time::Duration;

        #[test]
        fn bounded_blocks_and_unblocks() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            let t = std::thread::spawn(move || tx.send(3).unwrap());
            assert_eq!(rx.recv().unwrap(), 1);
            t.join().unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn recv_timeout_times_out_then_disconnects() {
            let (tx, rx) = bounded::<u32>(1);
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn send_timeout_times_out_on_full_queue() {
            let (tx, _rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            match tx.send_timeout(2, Duration::from_millis(10)) {
                Err(SendTimeoutError::Timeout(2)) => {}
                other => panic!("unexpected {other:?}"),
            }
        }

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn drain_after_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            let got: Vec<u32> = rx.iter().collect();
            assert_eq!(got, vec![1, 2]);
        }
    }
}

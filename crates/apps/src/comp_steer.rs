//! `comp-steer`: the computational-steering application (paper §5.1).
//!
//! "A simulation running on one computer generates a data stream,
//! representing intermediate values at different points in the mesh used
//! for simulation. These values are sampled, communicated to another
//! machine, and then analyzed. The processing time in the analysis phase
//! is linear in the volume of data that is output after the sampling.
//! The sampling rate … is the adjustment parameter."
//!
//! Pipeline: `simulation → sampler → (link) → analyzer`.
//!
//! * The simulation emits `f64` mesh values at a configurable byte rate.
//! * The sampler forwards a fraction `p` of the values (`p` is the
//!   adjustment parameter, declared exactly like the paper's
//!   `specifyPara(0.20, 1.0, 0.01, 0.01, -1)` example).
//! * The analyzer charges `cost_per_byte` seconds per received payload
//!   byte (the paper's "1, 5, 8, 10, 20 ms/byte") and computes running
//!   statistics plus a P² median over the sampled values — a real
//!   analysis, so accuracy is observable, not merely asserted.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;

use gates_core::adapt::AdaptationConfig;
use gates_core::{
    CostModel, Direction, Packet, ParamId, PayloadReader, PayloadWriter, SourceStatus, StageApi,
    StageBuilder, StreamProcessor, Topology,
};
use gates_grid::{AppConfig, ApplicationRepository};
use gates_net::{Bandwidth, LinkSpec};
use gates_sim::rng::seeded_stream;
use gates_sim::stats::Welford;
use gates_sim::SimDuration;
use gates_streams::P2Quantile;

/// Parameters of a comp-steer run.
#[derive(Debug, Clone)]
pub struct CompSteerParams {
    /// Simulation output rate, bytes/second (paper Fig 8: ≈160 B/s).
    pub generation_rate: f64,
    /// Bytes per emitted packet (values are 8-byte `f64`s).
    pub packet_bytes: usize,
    /// Initial sampling factor (paper: 0.13 in Fig 8, 0.01 in Fig 9).
    pub init_sampling: f64,
    /// Sampling factor bounds.
    pub min_sampling: f64,
    /// Upper bound of the sampling factor.
    pub max_sampling: f64,
    /// Analyzer cost, seconds per byte (paper: 0.001–0.020).
    pub cost_per_byte: f64,
    /// Sampler-to-analyzer link; `None` means co-located (Fig 8).
    pub bandwidth: Option<Bandwidth>,
    /// RNG seed for the simulated mesh values.
    pub seed: u64,
    /// Adaptation constants applied to both the sampler and the analyzer
    /// (`None` ⇒ defaults sized to their 100-packet queues). Exposed for
    /// the ablation studies.
    pub adaptation_override: Option<AdaptationConfig>,
    /// Mid-run generation-rate changes: `(from_second, bytes_per_sec)`
    /// steps applied in order. Empty = constant `generation_rate`. This
    /// drives the "resource availability is varied widely" scenario the
    /// paper claims the middleware survives.
    pub rate_schedule: Vec<(f64, f64)>,
}

impl Default for CompSteerParams {
    fn default() -> Self {
        CompSteerParams {
            generation_rate: 160.0,
            packet_bytes: 16,
            init_sampling: 0.13,
            min_sampling: 0.01,
            max_sampling: 1.0,
            cost_per_byte: 0.008,
            bandwidth: None,
            seed: 7,
            adaptation_override: None,
            rate_schedule: Vec::new(),
        }
    }
}

impl CompSteerParams {
    /// The paper's Figure 8 variant: processing constraint `c` ms/byte.
    pub fn figure8(cost_ms_per_byte: f64) -> Self {
        CompSteerParams { cost_per_byte: cost_ms_per_byte / 1_000.0, ..Default::default() }
    }

    /// The paper's Figure 9 variant: 10 KB/s link, generation `rate_kb`
    /// KB/s, initial sampling 0.01, negligible processing cost.
    pub fn figure9(rate_kb: f64) -> Self {
        CompSteerParams {
            generation_rate: rate_kb * 1_000.0,
            packet_bytes: ((rate_kb * 1_000.0 / 10.0).round() as usize).clamp(64, 8_192),
            init_sampling: 0.01,
            cost_per_byte: 1e-6,
            bandwidth: Some(Bandwidth::kb_per_sec(10.0)),
            ..Default::default()
        }
    }

    /// The theoretical sampling factor the middleware should converge
    /// to: the fraction of the generated volume the bottleneck can carry.
    pub fn expected_convergence(&self) -> f64 {
        let cpu_capacity = 1.0 / self.cost_per_byte; // bytes/sec the analyzer absorbs
        let link_capacity = self.bandwidth.map(|b| b.as_bytes_per_sec()).unwrap_or(f64::INFINITY);
        let capacity = cpu_capacity.min(link_capacity);
        (capacity / self.generation_rate).min(self.max_sampling).max(self.min_sampling)
    }
}

/// Shared analysis outputs.
#[derive(Debug, Clone, Default)]
pub struct CompSteerHandles {
    /// `(count, mean, median)` of the values the analyzer actually saw.
    pub analysis: Arc<Mutex<(u64, f64, f64)>>,
}

// ---------------------------------------------------------------------------
// Processors
// ---------------------------------------------------------------------------

/// The running simulation: emits packets of pseudo-mesh `f64` values at
/// a (possibly scheduled) byte rate.
struct Simulation {
    base_rate: f64,
    rate_schedule: Vec<(f64, f64)>,
    bytes_per_packet: usize,
    values_per_packet: usize,
    rng: SmallRng,
    seq: u64,
    phase: f64,
}

impl Simulation {
    /// The generation rate in force at time `t` (seconds).
    fn rate_at(&self, t: f64) -> f64 {
        let mut rate = self.base_rate;
        for &(from, r) in &self.rate_schedule {
            if t >= from {
                rate = r;
            }
        }
        rate.max(1.0)
    }
}

impl StreamProcessor for Simulation {
    fn process(&mut self, _packet: Packet, _api: &mut StageApi) {}

    fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
        let mut w = PayloadWriter::with_capacity(self.values_per_packet * 8);
        for _ in 0..self.values_per_packet {
            // A smooth field plus noise — the "intermediate values at
            // different points in the mesh".
            self.phase += 0.01;
            let v = self.phase.sin() * 10.0 + self.rng.gen::<f64>();
            w.put_f64(v);
        }
        api.emit(Packet::data(0, self.seq, self.values_per_packet as u32, w.finish()));
        self.seq += 1;
        let rate = self.rate_at(api.now().as_secs_f64());
        let next_poll = SimDuration::from_secs_f64(self.bytes_per_packet as f64 / rate);
        SourceStatus::Continue { next_poll }
    }
}

/// The sampling stage, owner of the adjustment parameter.
struct Sampler {
    param: Option<ParamId>,
    init: f64,
    min: f64,
    max: f64,
    /// Fractional-value carry so the long-run forwarded fraction is
    /// exactly `p` even for small packets.
    carry: f64,
    seq: u64,
}

impl StreamProcessor for Sampler {
    fn on_start(&mut self, api: &mut StageApi) {
        // The paper's example call, verbatim semantics:
        // specifyPara(sampling_rate, 0.20→init, max, min, 0.01, decrease).
        let id = api
            .specify_para(
                "sampling_rate",
                self.init,
                self.min,
                self.max,
                0.01,
                Direction::IncreaseSlowsDown,
            )
            .expect("valid parameter");
        self.param = Some(id);
    }

    fn process(&mut self, packet: Packet, api: &mut StageApi) {
        let p =
            self.param.map(|id| api.suggested_value(id).unwrap_or(self.init)).unwrap_or(self.init);
        let mut r = PayloadReader::new(packet.payload);
        let total = (r.remaining() / 8) as f64;
        self.carry += total * p;
        let take = self.carry.floor() as usize;
        self.carry -= take as f64;
        if take == 0 {
            return;
        }
        // Forward an evenly spaced subset of `take` values.
        let n = total as usize;
        let mut w = PayloadWriter::with_capacity(take * 8);
        let mut kept = 0usize;
        for i in 0..n {
            let v = r.get_f64().expect("8 bytes remain");
            // Evenly spread: keep while kept/take <= i/n.
            if kept < take && (i * take) / n >= kept {
                w.put_f64(v);
                kept += 1;
            }
        }
        api.emit(Packet::data(0, self.seq, kept as u32, w.finish()));
        self.seq += 1;
    }
}

/// The analysis stage: running statistics over the sampled stream.
struct Analyzer {
    stats: Welford,
    median: P2Quantile,
    out: Arc<Mutex<(u64, f64, f64)>>,
}

impl StreamProcessor for Analyzer {
    fn process(&mut self, packet: Packet, _api: &mut StageApi) {
        let mut r = PayloadReader::new(packet.payload);
        while r.remaining() >= 8 {
            let v = r.get_f64().expect("8 bytes remain");
            self.stats.push(v);
            self.median.insert(v);
        }
        *self.out.lock() =
            (self.stats.count(), self.stats.mean(), self.median.value().unwrap_or(0.0));
    }
}

// ---------------------------------------------------------------------------
// Topology construction
// ---------------------------------------------------------------------------

/// Build the comp-steer topology and its result handles.
pub fn build(params: &CompSteerParams) -> (Topology, CompSteerHandles) {
    let handles = CompSteerHandles::default();
    let mut topo = Topology::new();

    let values_per_packet = (params.packet_bytes / 8).max(1);
    let bytes_per_packet = values_per_packet * 8;

    let p = params.clone();
    let simulation = topo
        .add_stage_raw(StageBuilder::new("simulation").site("hpc").processor(move || Simulation {
            base_rate: p.generation_rate,
            rate_schedule: p.rate_schedule.clone(),
            bytes_per_packet,
            values_per_packet,
            rng: seeded_stream(p.seed, 0),
            seq: 0,
            phase: 0.0,
        }))
        .expect("simulation stage");

    let p = params.clone();
    let adapt_cfg = params
        .adaptation_override
        .clone()
        .unwrap_or_else(|| AdaptationConfig::with_capacity(100.0));
    let sampler = topo
        .add_stage(
            StageBuilder::new("sampler")
                .site("hpc")
                .cost(CostModel::zero())
                .queue_capacity(100)
                .adaptation(adapt_cfg.clone())
                .processor(move || Sampler {
                    param: None,
                    init: p.init_sampling,
                    min: p.min_sampling,
                    max: p.max_sampling,
                    carry: 0.0,
                    seq: 0,
                }),
        )
        .expect("sampler stage");

    let analyzer = {
        let out = Arc::clone(&handles.analysis);
        topo.add_stage(
            StageBuilder::new("analyzer")
                .site("analysis")
                .cost(CostModel::per_byte(params.cost_per_byte))
                .queue_capacity(100)
                .adaptation(adapt_cfg)
                .processor(move || Analyzer {
                    stats: Welford::new(),
                    median: P2Quantile::new(0.5),
                    out: Arc::clone(&out),
                }),
        )
        .expect("analyzer stage")
    };

    topo.connect(simulation, sampler, LinkSpec::local());
    let link = match params.bandwidth {
        Some(bw) => LinkSpec::with_bandwidth(bw).buffer(4),
        None => LinkSpec::local(),
    };
    topo.connect(sampler, analyzer, link);

    (topo, handles)
}

/// Publish the template under the key `"comp-steer"`.
///
/// XML parameters: `rate` (bytes/s), `packet_bytes`, `init_sampling`,
/// `cost_ms_per_byte`, `bandwidth_kb` (absent ⇒ co-located), `seed`.
pub fn publish(repo: &mut ApplicationRepository) {
    repo.publish("comp-steer", |config: &AppConfig| {
        let params = params_from_config(config).map_err(|e| e.to_string())?;
        Ok(build(&params).0)
    });
}

/// Parse run parameters from an XML [`AppConfig`].
pub fn params_from_config(config: &AppConfig) -> Result<CompSteerParams, gates_grid::GridError> {
    let d = CompSteerParams::default();
    Ok(CompSteerParams {
        generation_rate: config.f64_or("rate", d.generation_rate)?,
        packet_bytes: config.usize_or("packet_bytes", d.packet_bytes)?,
        init_sampling: config.f64_or("init_sampling", d.init_sampling)?,
        cost_per_byte: config.f64_or("cost_ms_per_byte", d.cost_per_byte * 1_000.0)? / 1_000.0,
        bandwidth: config.get_f64("bandwidth_kb")?.map(Bandwidth::kb_per_sec),
        seed: config.usize_or("seed", d.seed as usize)? as u64,
        ..d
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates_engine::{DesEngine, RunOptions};
    use gates_grid::{Deployer, ResourceRegistry};
    use gates_sim::SimDuration;

    fn run_for(
        params: &CompSteerParams,
        secs: u64,
    ) -> (gates_core::report::RunReport, CompSteerHandles) {
        let (topo, handles) = build(params);
        let registry = ResourceRegistry::uniform_cluster(&["hpc", "analysis"]);
        let plan = Deployer::new().deploy(&topo, &registry).unwrap();
        let mut engine = DesEngine::new(topo, &plan, RunOptions::default()).unwrap();
        let report = engine.run_for(SimDuration::from_secs(secs));
        (report, handles)
    }

    fn final_sampling(report: &gates_core::report::RunReport) -> f64 {
        report.stage("sampler").unwrap().param("sampling_rate").unwrap().tail_mean(20).unwrap()
    }

    #[test]
    fn no_constraint_converges_to_full_sampling() {
        // Paper Fig 8, c = 1 ms/byte: capacity 1000 B/s ≫ 160 B/s.
        let params = CompSteerParams::figure8(1.0);
        let (report, _) = run_for(&params, 400);
        let p = final_sampling(&report);
        assert!(p > 0.9, "unconstrained sampling must approach 1.0, got {p}");
    }

    #[test]
    fn processing_constraint_limits_sampling() {
        // Paper Fig 8, c = 20 ms/byte: capacity 50 B/s, ratio 0.3125.
        let params = CompSteerParams::figure8(20.0);
        let expected = params.expected_convergence();
        let (report, _) = run_for(&params, 400);
        let p = final_sampling(&report);
        assert!((p - expected).abs() < 0.15, "sampling should settle near {expected}, got {p}");
        // And the pipeline must be healthy: no runaway queue at the analyzer.
        let analyzer = report.stage("analyzer").unwrap();
        assert!(analyzer.queue.mean() < 90.0, "queue out of control: {}", analyzer.queue.mean());
    }

    #[test]
    fn network_constraint_limits_sampling() {
        // Paper Fig 9, generation 40 KB/s over a 10 KB/s link: ratio 0.25.
        let params = CompSteerParams::figure9(40.0);
        let expected = params.expected_convergence();
        assert!((expected - 0.25).abs() < 1e-9);
        let (report, _) = run_for(&params, 400);
        let p = final_sampling(&report);
        assert!((p - expected).abs() < 0.15, "sampling should settle near {expected}, got {p}");
    }

    #[test]
    fn slow_generation_over_fast_link_reaches_full_sampling() {
        // Paper Fig 9, 5 KB/s over 10 KB/s: no constraint binds.
        let params = CompSteerParams::figure9(5.0);
        let (report, _) = run_for(&params, 400);
        let p = final_sampling(&report);
        assert!(p > 0.8, "unconstrained Fig 9 case must rise toward 1.0, got {p}");
    }

    #[test]
    fn analyzer_sees_sampled_values() {
        let params = CompSteerParams::figure8(1.0);
        let (report, handles) = run_for(&params, 100);
        let (count, mean, median) = *handles.analysis.lock();
        assert!(count > 100, "analyzer saw only {count} values");
        // Mesh values are sin(·)·10 + U(0,1): mean ≈ 0.5, median within a
        // few units of it.
        assert!(mean.abs() < 8.0, "mean {mean} implausible");
        assert!(median.abs() < 10.0, "median {median} implausible");
        assert!(report.stage("analyzer").unwrap().packets_in > 0);
    }

    #[test]
    fn sampler_fraction_is_exact_on_average() {
        // Fixed p (adaptation off is easiest via min=max).
        let params = CompSteerParams {
            init_sampling: 0.25,
            min_sampling: 0.25,
            max_sampling: 0.25,
            cost_per_byte: 1e-6,
            ..Default::default()
        };
        let (report, _) = run_for(&params, 200);
        let sampler = report.stage("sampler").unwrap();
        let ratio = sampler.records_out as f64 / sampler.records_in as f64;
        assert!((ratio - 0.25).abs() < 0.02, "forwarded fraction {ratio} ≠ 0.25");
    }

    #[test]
    fn expected_convergence_math() {
        assert!((CompSteerParams::figure8(8.0).expected_convergence() - 0.78125).abs() < 1e-9);
        assert_eq!(CompSteerParams::figure8(1.0).expected_convergence(), 1.0);
        assert!((CompSteerParams::figure9(80.0).expected_convergence() - 0.125).abs() < 1e-9);
    }

    #[test]
    fn xml_config_builds() {
        let mut repo = ApplicationRepository::new();
        publish(&mut repo);
        let config = AppConfig::new("run", "comp-steer")
            .with_param("rate", 160)
            .with_param("cost_ms_per_byte", 10);
        let topo = repo.build(&config).unwrap();
        assert_eq!(topo.stages().len(), 3);
        let params = params_from_config(&config).unwrap();
        assert!((params.cost_per_byte - 0.010).abs() < 1e-12);
        assert!(params.bandwidth.is_none());
    }
}

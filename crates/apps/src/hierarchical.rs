//! Hierarchical (multi-tier) aggregation — paper §3.1, design goal 2:
//! "based upon the number and types of streams and the available
//! resources, more than two stages could also be required. All
//! intermediate stages take one or more intermediate streams as input
//! and produce one or more output streams."
//!
//! The shape mirrors the paper's §2 LHC motivation ("data will be
//! distributed to around 10 Tier 1 centers, and then onto around 50
//! Tier 2 centers" — we run it in the analysis direction):
//!
//! ```text
//! tier 2 (sites):    source ── summarizer     (one pair per site)
//!                                   \
//! tier 1 (regions):              merger       (one per region)
//!                                     \
//! tier 0 (center):                collector
//! ```
//!
//! Each summarizer maintains a counting sample of footprint `k2` and
//! flushes its top-k2 upward; each regional merger combines its sites'
//! latest summaries and forwards a *condensed* top-k1 (k1 ≤ sites·k2);
//! the center merges regions. Both `k2` and `k1` can be middleware-
//! adapted, giving two nested adjustment parameters in one pipeline.
//!
//! Wire format is count-samps' summary format (`u32 n`, `f64 τ`, then
//! `n` × (`u64 value`, `f64 estimate`)), so tiers compose.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;

use gates_core::adapt::AdaptationConfig;
use gates_core::{
    CostModel, Direction, Packet, ParamId, PayloadReader, PayloadWriter, SourceStatus, StageApi,
    StageBuilder, StreamProcessor, Topology,
};
use gates_grid::{AppConfig, ApplicationRepository};
use gates_net::{Bandwidth, LinkSpec};
use gates_sim::rng::seeded_stream;
use gates_sim::SimDuration;
use gates_streams::metrics::{top_k_accuracy, AccuracyReport};
use gates_streams::{CountingSamples, ZipfGenerator};

/// Parameters of a hierarchical count-samps run.
#[derive(Debug, Clone)]
pub struct HierarchicalParams {
    /// Number of tier-1 regions.
    pub regions: usize,
    /// Sites (tier-2 pairs) per region.
    pub sites_per_region: usize,
    /// Integers per source.
    pub items_per_source: u64,
    /// Generation rate, records/second per source.
    pub rate_per_sec: f64,
    /// Records per data packet.
    pub batch: u32,
    /// Zipf workload: distinct values.
    pub zipf_n: usize,
    /// Zipf workload: skew.
    pub zipf_s: f64,
    /// Site summary size (tier-2 adjustment parameter).
    pub k2: f64,
    /// Regional summary size (tier-1 adjustment parameter).
    pub k1: f64,
    /// Adapt both parameters within `[min, max] = [10, 240]`.
    pub adaptive: bool,
    /// Site → region link bandwidth.
    pub site_bandwidth: Bandwidth,
    /// Region → center link bandwidth (typically the scarcer WAN).
    pub region_bandwidth: Bandwidth,
    /// Flush period at both tiers, in records/entries consumed.
    pub flush_every: u64,
    /// The query: top how many values.
    pub top_k: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for HierarchicalParams {
    fn default() -> Self {
        HierarchicalParams {
            regions: 2,
            sites_per_region: 2,
            items_per_source: 25_000,
            rate_per_sec: 1_000.0,
            batch: 50,
            zipf_n: 2_000,
            zipf_s: 1.4,
            k2: 100.0,
            k1: 150.0,
            adaptive: false,
            site_bandwidth: Bandwidth::kb_per_sec(100.0),
            region_bandwidth: Bandwidth::kb_per_sec(50.0),
            flush_every: 500,
            top_k: 10,
            seed: 42,
        }
    }
}

/// Shared result handles.
#[derive(Debug, Clone, Default)]
pub struct HierarchicalHandles {
    /// Exact ground truth accumulated by the sources.
    pub truth: Arc<Mutex<HashMap<u64, u64>>>,
    /// The center's current answer.
    pub answer: Arc<Mutex<Vec<(u64, f64)>>>,
}

impl HierarchicalHandles {
    /// Score the center's answer with the paper's §5.2 metric.
    pub fn accuracy(&self, top_k: usize) -> AccuracyReport {
        let truth = self.truth.lock();
        let answer = self.answer.lock();
        top_k_accuracy(&answer, &truth, top_k)
    }
}

// ---------------------------------------------------------------------------
// Processors (source and summarizer shared with count-samps in spirit;
// redefined here to keep the two templates independently evolvable)
// ---------------------------------------------------------------------------

struct ZipfSource {
    stream_id: u32,
    remaining: u64,
    batch: u32,
    interval: SimDuration,
    zipf: ZipfGenerator,
    rng: SmallRng,
    truth: Arc<Mutex<HashMap<u64, u64>>>,
    seq: u64,
}

impl StreamProcessor for ZipfSource {
    fn process(&mut self, _packet: Packet, _api: &mut StageApi) {}

    fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Done;
        }
        let n = (self.batch as u64).min(self.remaining) as u32;
        let mut w = PayloadWriter::with_capacity(n as usize * 8);
        {
            let mut truth = self.truth.lock();
            for _ in 0..n {
                let v = self.zipf.sample(&mut self.rng);
                *truth.entry(v).or_insert(0) += 1;
                w.put_u64(v);
            }
        }
        self.remaining -= n as u64;
        api.emit(Packet::data(self.stream_id, self.seq, n, w.finish()));
        self.seq += 1;
        SourceStatus::Continue { next_poll: self.interval }
    }
}

fn write_summary(stream_id: u32, seq: u64, tau: f64, entries: &[(u64, f64)]) -> Packet {
    let mut w = PayloadWriter::with_capacity(12 + entries.len() * 16);
    w.put_u32(entries.len() as u32);
    w.put_f64(tau);
    for &(v, est) in entries {
        w.put_u64(v);
        w.put_f64(est);
    }
    Packet::summary(stream_id, seq, entries.len() as u32, w.finish())
}

fn read_summary(payload: bytes::Bytes) -> (f64, Vec<(u64, f64)>) {
    let mut r = PayloadReader::new(payload);
    let n = r.get_u32().unwrap_or(0) as usize;
    let tau = r.get_f64().unwrap_or(1.0);
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let (Ok(v), Ok(est)) = (r.get_u64(), r.get_f64()) else { break };
        entries.push((v, est));
    }
    (tau, entries)
}

/// Tier-2 site summarizer (counting sample of footprint k2).
struct SiteSummarizer {
    stream_id: u32,
    sample: CountingSamples,
    rng: SmallRng,
    records_since_flush: u64,
    flush_every: u64,
    param: Option<ParamId>,
    fixed_k: f64,
    adaptive: bool,
    seq: u64,
}

impl SiteSummarizer {
    fn current_k(&self, api: &StageApi) -> usize {
        let k = match self.param {
            Some(id) => api.suggested_value(id).unwrap_or(self.fixed_k),
            None => self.fixed_k,
        };
        (k.round().max(1.0)) as usize
    }

    fn flush(&mut self, api: &mut StageApi) {
        let k = self.current_k(api);
        let entries: Vec<(u64, f64)> =
            self.sample.top_k(k).into_iter().map(|e| (e.value, e.estimate)).collect();
        api.emit(write_summary(self.stream_id, self.seq, self.sample.tau(), &entries));
        self.seq += 1;
        self.records_since_flush = 0;
    }
}

impl StreamProcessor for SiteSummarizer {
    fn on_start(&mut self, api: &mut StageApi) {
        if self.adaptive {
            let id = api
                .specify_para("k2", self.fixed_k, 10.0, 240.0, 10.0, Direction::IncreaseSlowsDown)
                .expect("valid parameter");
            self.param = Some(id);
        }
    }

    fn process(&mut self, packet: Packet, api: &mut StageApi) {
        let k = self.current_k(api);
        if k != self.sample.footprint() {
            self.sample.resize(k, &mut self.rng);
        }
        let mut r = PayloadReader::new(packet.payload);
        while r.remaining() >= 8 {
            let v = r.get_u64().expect("8 bytes remain");
            self.sample.insert(v, &mut self.rng);
            self.records_since_flush += 1;
        }
        if self.records_since_flush >= self.flush_every {
            self.flush(api);
        }
    }

    fn on_eos(&mut self, api: &mut StageApi) {
        self.flush(api);
    }
}

/// Tier-1 regional merger: combines its sites' latest summaries and
/// forwards a condensed top-k1.
struct RegionalMerger {
    region_id: u32,
    latest: HashMap<u32, (f64, Vec<(u64, f64)>)>,
    entries_since_flush: u64,
    flush_every: u64,
    param: Option<ParamId>,
    fixed_k: f64,
    adaptive: bool,
    seq: u64,
}

impl RegionalMerger {
    fn current_k(&self, api: &StageApi) -> usize {
        let k = match self.param {
            Some(id) => api.suggested_value(id).unwrap_or(self.fixed_k),
            None => self.fixed_k,
        };
        (k.round().max(1.0)) as usize
    }

    fn merged(&self) -> (f64, Vec<(u64, f64)>) {
        let mut combined: HashMap<u64, f64> = HashMap::new();
        let mut tau = 1.0f64;
        for (t, entries) in self.latest.values() {
            tau = tau.max(*t);
            for &(v, est) in entries {
                *combined.entry(v).or_insert(0.0) += est;
            }
        }
        let mut all: Vec<(u64, f64)> = combined.into_iter().collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        (tau, all)
    }

    fn flush(&mut self, api: &mut StageApi) {
        let k = self.current_k(api);
        let (tau, mut entries) = self.merged();
        entries.truncate(k);
        api.emit(write_summary(self.region_id, self.seq, tau, &entries));
        self.seq += 1;
        self.entries_since_flush = 0;
    }
}

impl StreamProcessor for RegionalMerger {
    fn on_start(&mut self, api: &mut StageApi) {
        if self.adaptive {
            let id = api
                .specify_para("k1", self.fixed_k, 10.0, 240.0, 10.0, Direction::IncreaseSlowsDown)
                .expect("valid parameter");
            self.param = Some(id);
        }
    }

    fn process(&mut self, packet: Packet, api: &mut StageApi) {
        let stream = packet.stream_id;
        let records = packet.records as u64;
        let (tau, entries) = read_summary(packet.payload);
        self.latest.insert(stream, (tau, entries));
        self.entries_since_flush += records;
        if self.entries_since_flush >= self.flush_every {
            self.flush(api);
        }
    }

    fn on_eos(&mut self, api: &mut StageApi) {
        self.flush(api);
    }
}

/// Tier-0 central collector: merges regional summaries and publishes
/// the global top-k.
struct CenterCollector {
    latest: HashMap<u32, Vec<(u64, f64)>>,
    top_k: usize,
    answer: Arc<Mutex<Vec<(u64, f64)>>>,
}

impl CenterCollector {
    fn publish(&self) {
        let mut combined: HashMap<u64, f64> = HashMap::new();
        for entries in self.latest.values() {
            for &(v, est) in entries {
                *combined.entry(v).or_insert(0.0) += est;
            }
        }
        let mut all: Vec<(u64, f64)> = combined.into_iter().collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(self.top_k);
        *self.answer.lock() = all;
    }
}

impl StreamProcessor for CenterCollector {
    fn process(&mut self, packet: Packet, _api: &mut StageApi) {
        let (_tau, entries) = read_summary(packet.payload);
        self.latest.insert(packet.stream_id, entries);
        self.publish();
    }

    fn on_eos(&mut self, _api: &mut StageApi) {
        self.publish();
    }
}

// ---------------------------------------------------------------------------
// Topology construction
// ---------------------------------------------------------------------------

/// Build the hierarchical topology and its result handles.
pub fn build(params: &HierarchicalParams) -> (Topology, HierarchicalHandles) {
    assert!(params.regions >= 1 && params.sites_per_region >= 1, "need at least one site");
    let handles = HierarchicalHandles::default();
    let mut topo = Topology::new();
    let interval = SimDuration::from_secs_f64(params.batch as f64 / params.rate_per_sec);

    let center = {
        let answer = Arc::clone(&handles.answer);
        let top_k = params.top_k;
        topo.add_stage(
            StageBuilder::new("center")
                .site("tier0")
                .cost(CostModel::per_record(0.0001))
                .queue_capacity(2_000)
                .adaptation(AdaptationConfig::with_capacity(2_000.0))
                .processor(move || CenterCollector {
                    latest: HashMap::new(),
                    top_k,
                    answer: Arc::clone(&answer),
                }),
        )
        .expect("center stage")
    };

    for r in 0..params.regions {
        let p = params.clone();
        let merger = topo
            .add_stage(
                StageBuilder::new(format!("region-{r}"))
                    .site(format!("tier1-{r}"))
                    .cost(CostModel::per_record(0.0002))
                    // Summary traffic is low-volume: a small queue keeps
                    // the load signal meaningful (50 packets ≈ a dozen
                    // seconds of summaries).
                    .queue_capacity(50)
                    .adaptation(AdaptationConfig::with_capacity(50.0))
                    .processor(move || RegionalMerger {
                        region_id: r as u32,
                        latest: HashMap::new(),
                        entries_since_flush: 0,
                        flush_every: (p.flush_every / 4).max(1),
                        param: None,
                        fixed_k: p.k1,
                        adaptive: p.adaptive,
                        seq: 0,
                    }),
            )
            .expect("merger stage");
        topo.connect(
            merger,
            center,
            LinkSpec::with_bandwidth(params.region_bandwidth).buffer(4).blocking(),
        );

        for s in 0..params.sites_per_region {
            let site_idx = r * params.sites_per_region + s;
            let stream_id = site_idx as u32;
            let p = params.clone();
            let truth = Arc::clone(&handles.truth);
            let source = topo
                .add_stage_raw(
                    StageBuilder::new(format!("source-{site_idx}"))
                        .site(format!("tier2-{site_idx}"))
                        .processor(move || ZipfSource {
                            stream_id,
                            remaining: p.items_per_source,
                            batch: p.batch,
                            interval,
                            zipf: ZipfGenerator::new(p.zipf_n, p.zipf_s),
                            rng: seeded_stream(p.seed, stream_id as u64),
                            truth: Arc::clone(&truth),
                            seq: 0,
                        }),
                )
                .expect("source stage");
            let p = params.clone();
            let summarizer = topo
                .add_stage(
                    StageBuilder::new(format!("summarizer-{site_idx}"))
                        .site(format!("tier2-{site_idx}"))
                        .cost(CostModel::per_record(0.0005))
                        .queue_capacity(200)
                        .adaptation(AdaptationConfig::with_capacity(200.0))
                        .processor(move || SiteSummarizer {
                            stream_id,
                            sample: CountingSamples::new(p.k2.round().max(1.0) as usize),
                            rng: seeded_stream(p.seed, 100 + stream_id as u64),
                            records_since_flush: 0,
                            flush_every: p.flush_every,
                            param: None,
                            fixed_k: p.k2,
                            adaptive: p.adaptive,
                            seq: 0,
                        }),
                )
                .expect("summarizer stage");
            topo.connect(source, summarizer, LinkSpec::local().buffer(2).blocking());
            topo.connect(
                summarizer,
                merger,
                LinkSpec::with_bandwidth(params.site_bandwidth).buffer(4).blocking(),
            );
        }
    }

    (topo, handles)
}

/// Publish the template under the key `"hierarchical"`.
pub fn publish(repo: &mut ApplicationRepository) {
    repo.publish("hierarchical", |config: &AppConfig| {
        let params = params_from_config(config).map_err(|e| e.to_string())?;
        Ok(build(&params).0)
    });
}

/// Parse run parameters from an XML [`AppConfig`].
pub fn params_from_config(config: &AppConfig) -> Result<HierarchicalParams, gates_grid::GridError> {
    let d = HierarchicalParams::default();
    Ok(HierarchicalParams {
        regions: config.usize_or("regions", d.regions)?,
        sites_per_region: config.usize_or("sites_per_region", d.sites_per_region)?,
        items_per_source: config.usize_or("items_per_source", d.items_per_source as usize)? as u64,
        rate_per_sec: config.f64_or("rate", d.rate_per_sec)?,
        k2: config.f64_or("k2", d.k2)?,
        k1: config.f64_or("k1", d.k1)?,
        adaptive: config.get("adaptive").map(|v| v == "true" || v == "1").unwrap_or(d.adaptive),
        site_bandwidth: Bandwidth::kb_per_sec(config.f64_or("site_bandwidth_kb", 100.0)?),
        region_bandwidth: Bandwidth::kb_per_sec(config.f64_or("region_bandwidth_kb", 50.0)?),
        seed: config.usize_or("seed", d.seed as usize)? as u64,
        ..d
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates_engine::{DesEngine, RunOptions};
    use gates_grid::{Deployer, ResourceRegistry};

    fn registry(params: &HierarchicalParams) -> ResourceRegistry {
        let mut sites = vec!["tier0".to_string()];
        for r in 0..params.regions {
            sites.push(format!("tier1-{r}"));
        }
        for s in 0..params.regions * params.sites_per_region {
            sites.push(format!("tier2-{s}"));
        }
        let refs: Vec<&str> = sites.iter().map(String::as_str).collect();
        ResourceRegistry::uniform_cluster(&refs)
    }

    fn run(params: &HierarchicalParams) -> (gates_core::report::RunReport, HierarchicalHandles) {
        let (topo, handles) = build(params);
        let plan = Deployer::new().deploy(&topo, &registry(params)).unwrap();
        let mut engine = DesEngine::new(topo, &plan, RunOptions::default()).unwrap();
        let report = engine.run_to_completion();
        (report, handles)
    }

    fn small() -> HierarchicalParams {
        HierarchicalParams {
            regions: 2,
            sites_per_region: 2,
            items_per_source: 5_000,
            rate_per_sec: 2_000.0,
            ..Default::default()
        }
    }

    #[test]
    fn three_tier_pipeline_answers_accurately() {
        let (report, handles) = run(&small());
        let acc = handles.accuracy(10);
        assert!(acc.score > 90.0, "hierarchical accuracy too low: {acc:?}");
        assert_eq!(report.total_dropped(), 0, "blocking chain must not drop");
        // Topology: 1 center + 2 mergers + 4 (source+summarizer) pairs.
        assert_eq!(report.stages.len(), 1 + 2 + 8);
    }

    #[test]
    fn condensation_shrinks_traffic_per_tier() {
        let (report, _) = run(&small());
        let site_bytes: u64 = (0..4)
            .filter_map(|i| report.stage(&format!("summarizer-{i}")).map(|s| s.bytes_out))
            .sum();
        let region_bytes: u64 =
            (0..2).filter_map(|r| report.stage(&format!("region-{r}")).map(|s| s.bytes_out)).sum();
        let center_in = report.stage("center").unwrap().bytes_in;
        assert!(region_bytes < site_bytes, "tier-1 condenses: {region_bytes} vs {site_bytes}");
        assert_eq!(center_in, region_bytes, "everything the regions sent arrived");
    }

    #[test]
    fn center_sees_only_regions() {
        let (report, _) = run(&small());
        let center = report.stage("center").unwrap();
        let region_packets: u64 = (0..2)
            .filter_map(|r| report.stage(&format!("region-{r}")).map(|s| s.packets_out))
            .sum();
        assert_eq!(center.packets_in, region_packets);
    }

    #[test]
    fn adaptive_tiers_register_both_parameters() {
        let params = HierarchicalParams { adaptive: true, ..small() };
        let (report, _) = run(&params);
        assert!(report.stage("summarizer-0").unwrap().param("k2").is_some());
        assert!(report.stage("region-0").unwrap().param("k1").is_some());
    }

    #[test]
    fn narrow_region_link_pushes_k1_down() {
        let params = HierarchicalParams {
            adaptive: true,
            region_bandwidth: Bandwidth::kb_per_sec(1.0),
            items_per_source: 20_000,
            ..small()
        };
        let (report, _) = run(&params);
        let traj = report.stage("region-0").unwrap().param("k1").unwrap();
        let min = traj.samples.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        assert!(min < 150.0, "tier-1 parameter must respond to its link, min {min}");
    }

    #[test]
    fn latency_is_recorded_end_to_end() {
        let (report, _) = run(&small());
        let center = report.stage("center").unwrap();
        assert!(center.latency.count() > 0);
        assert!(center.latency.mean() > 0.0, "summaries take nonzero time to reach tier 0");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&small());
        let b = run(&small());
        assert_eq!(*a.1.answer.lock(), *b.1.answer.lock());
        assert_eq!(a.0.finished_at, b.0.finished_at);
    }

    #[test]
    fn xml_config_builds() {
        let mut repo = ApplicationRepository::new();
        publish(&mut repo);
        let config = AppConfig::new("run", "hierarchical")
            .with_param("regions", 3)
            .with_param("sites_per_region", 2);
        let topo = repo.build(&config).unwrap();
        assert_eq!(topo.stages().len(), 1 + 3 + 3 * 2 * 2);
    }
}

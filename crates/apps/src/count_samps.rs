//! `count-samps`: the distributed counting-samples application (paper §5.1).
//!
//! "A data stream comprises a set of integers. We are interested in
//! determining the n most frequently occurring values and their number
//! of occurrences at any given point in the stream." Sub-streams arrive
//! at different places; either all raw data is forwarded to a central
//! node (*centralized*), or a counting-samples summary is maintained
//! near each source and only its top-k entries cross the network
//! (*distributed*). "The number of frequently occurring values at each
//! sub-stream is the adjustment parameter used in this application."
//!
//! ## Wire formats
//!
//! * Data packet: `batch` × `u64` values (`records = batch`).
//! * Summary packet: `u32 n`, `f64 τ`, then `n` × (`u64 value`,
//!   `f64 estimate`) — `records = n`.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;

use gates_core::adapt::AdaptationConfig;
use gates_core::{
    CostModel, Direction, Packet, ParamId, PayloadReader, PayloadWriter, SourceStatus, StageApi,
    StageBuilder, StreamProcessor, Topology,
};
use gates_grid::{AppConfig, ApplicationRepository};
use gates_net::{Bandwidth, LinkSpec};
use gates_sim::rng::seeded_stream;
use gates_sim::SimDuration;
use gates_streams::metrics::{top_k_accuracy, AccuracyReport};
use gates_streams::{CountingSamples, ZipfGenerator};

/// Deployment style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// All raw records cross the network; one big summary at the center.
    Centralized,
    /// A counting sample of footprint `k` per source; only top-k entries
    /// cross the network.
    Distributed {
        /// Summary size (the adjustment parameter's fixed value).
        k: f64,
    },
    /// Distributed with the middleware adapting `k` within `[min, max]`.
    Adaptive {
        /// Initial k.
        init: f64,
        /// Smallest k the middleware may choose.
        min: f64,
        /// Largest k the middleware may choose.
        max: f64,
    },
}

/// Parameters of a count-samps run.
#[derive(Debug, Clone)]
pub struct CountSampsParams {
    /// Number of stream sources (paper: 4).
    pub sources: usize,
    /// Integers produced per source (paper: 25,000).
    pub items_per_source: u64,
    /// Generation rate, records/second per source.
    pub rate_per_sec: f64,
    /// Records per data packet.
    pub batch: u32,
    /// Distinct values in the Zipf workload.
    pub zipf_n: usize,
    /// Zipf skew exponent.
    pub zipf_s: f64,
    /// RNG seed (sources derive decorrelated sub-seeds).
    pub seed: u64,
    /// Deployment style.
    pub mode: Mode,
    /// Source-to-center link bandwidth.
    pub bandwidth: Bandwidth,
    /// Summarizer flush period, in records.
    pub flush_every: u64,
    /// Central processing cost per raw record, seconds.
    pub central_cost_per_record: f64,
    /// Source-side summarizer cost per record, seconds.
    pub summarizer_cost_per_record: f64,
    /// Central merge cost per summary entry, seconds.
    pub merge_cost_per_entry: f64,
    /// Central summary footprint.
    pub central_footprint: usize,
    /// The query: top how many values.
    pub top_k: usize,
}

impl Default for CountSampsParams {
    fn default() -> Self {
        CountSampsParams {
            sources: 4,
            items_per_source: 25_000,
            rate_per_sec: 1_000.0,
            batch: 50,
            zipf_n: 2_000,
            zipf_s: 1.4,
            seed: 42,
            mode: Mode::Distributed { k: 100.0 },
            bandwidth: Bandwidth::kb_per_sec(100.0),
            flush_every: 500,
            central_cost_per_record: 0.0005,
            summarizer_cost_per_record: 0.0005,
            merge_cost_per_entry: 0.0001,
            central_footprint: 400,
            top_k: 10,
        }
    }
}

/// Shared result handles, readable after (or during) a run.
#[derive(Debug, Clone, Default)]
pub struct CountSampsHandles {
    /// Exact ground-truth counts accumulated by the sources.
    pub truth: Arc<Mutex<HashMap<u64, u64>>>,
    /// The central node's current answer: `(value, estimated count)`.
    pub answer: Arc<Mutex<Vec<(u64, f64)>>>,
}

impl CountSampsHandles {
    /// Score the central answer against the ground truth with the
    /// paper's §5.2 metric.
    pub fn accuracy(&self, top_k: usize) -> AccuracyReport {
        let truth = self.truth.lock();
        let answer = self.answer.lock();
        top_k_accuracy(&answer, &truth, top_k)
    }
}

// ---------------------------------------------------------------------------
// Processors
// ---------------------------------------------------------------------------

/// Zipf integer source: emits `batch`-record packets at the target rate
/// and records exact counts into the shared truth map.
struct ZipfSource {
    stream_id: u32,
    remaining: u64,
    batch: u32,
    interval: SimDuration,
    zipf: ZipfGenerator,
    rng: SmallRng,
    truth: Arc<Mutex<HashMap<u64, u64>>>,
    seq: u64,
}

impl StreamProcessor for ZipfSource {
    fn process(&mut self, _packet: Packet, _api: &mut StageApi) {}

    fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Done;
        }
        let n = (self.batch as u64).min(self.remaining) as u32;
        let mut w = PayloadWriter::with_capacity(n as usize * 8);
        {
            let mut truth = self.truth.lock();
            for _ in 0..n {
                let v = self.zipf.sample(&mut self.rng);
                *truth.entry(v).or_insert(0) += 1;
                w.put_u64(v);
            }
        }
        self.remaining -= n as u64;
        api.emit(Packet::data(self.stream_id, self.seq, n, w.finish()));
        self.seq += 1;
        SourceStatus::Continue { next_poll: self.interval }
    }

    // Failover state: how far the stream has progressed. The RNG state
    // is deliberately not carried over — a restored source continues the
    // same Zipf *distribution* from a fresh seed, which keeps the wire
    // format and count bounded without serializing generator internals.
    fn snapshot(&self) -> Vec<u8> {
        let mut w = PayloadWriter::with_capacity(16);
        w.put_u64(self.remaining);
        w.put_u64(self.seq);
        w.finish().to_vec()
    }

    fn restore(&mut self, state: &[u8]) {
        let mut r = PayloadReader::new(state.to_vec().into());
        let (Ok(remaining), Ok(seq)) = (r.get_u64(), r.get_u64()) else { return };
        self.remaining = remaining;
        self.seq = seq;
    }
}

/// Source-side summarizer: maintains a counting sample of footprint `k`
/// (the adjustment parameter) and periodically emits its top-k entries.
struct Summarizer {
    stream_id: u32,
    sample: CountingSamples,
    rng: SmallRng,
    records_since_flush: u64,
    flush_every: u64,
    param: Option<ParamId>,
    fixed_k: f64,
    adaptive: Option<(f64, f64, f64)>, // (init, min, max)
    seq: u64,
}

impl Summarizer {
    fn current_k(&self, api: &StageApi) -> usize {
        let k = match self.param {
            Some(id) => api.suggested_value(id).unwrap_or(self.fixed_k),
            None => self.fixed_k,
        };
        (k.round().max(1.0)) as usize
    }

    fn flush(&mut self, api: &mut StageApi) {
        let k = self.current_k(api);
        let top = self.sample.top_k(k);
        let mut w = PayloadWriter::with_capacity(12 + top.len() * 16);
        w.put_u32(top.len() as u32);
        w.put_f64(self.sample.tau());
        for entry in &top {
            w.put_u64(entry.value);
            w.put_f64(entry.estimate);
        }
        let n = top.len() as u32;
        api.emit(Packet::summary(self.stream_id, self.seq, n, w.finish()));
        self.seq += 1;
        self.records_since_flush = 0;
    }
}

impl StreamProcessor for Summarizer {
    fn on_start(&mut self, api: &mut StageApi) {
        if let Some((init, min, max)) = self.adaptive {
            // The paper's specifyPara: increasing k slows processing
            // (bigger summaries, more data on the wire).
            let id = api
                .specify_para("k", init, min, max, 10.0, Direction::IncreaseSlowsDown)
                .expect("valid parameter");
            self.param = Some(id);
        }
    }

    fn process(&mut self, packet: Packet, api: &mut StageApi) {
        // Track the suggested footprint before ingesting.
        let k = self.current_k(api);
        if k != self.sample.footprint() {
            self.sample.resize(k, &mut self.rng);
        }
        let mut r = PayloadReader::new(packet.payload);
        while r.remaining() >= 8 {
            let v = r.get_u64().expect("8 bytes remain");
            self.sample.insert(v, &mut self.rng);
            self.records_since_flush += 1;
        }
        if self.records_since_flush >= self.flush_every {
            self.flush(api);
        }
    }

    fn on_eos(&mut self, api: &mut StageApi) {
        self.flush(api);
    }
}

/// Central collector. In centralized mode it ingests raw records into
/// one big counting sample; in distributed mode it keeps each source's
/// latest summary and answers queries from their sum.
struct Collector {
    centralized: bool,
    sample: CountingSamples,
    rng: SmallRng,
    latest: HashMap<u32, Vec<(u64, f64)>>,
    merge_cost_per_entry: f64,
    top_k: usize,
    answer: Arc<Mutex<Vec<(u64, f64)>>>,
}

impl Collector {
    fn publish(&self) {
        let mut combined: HashMap<u64, f64> = HashMap::new();
        if self.centralized {
            for e in self.sample.top_k(self.top_k) {
                combined.insert(e.value, e.estimate);
            }
        } else {
            for entries in self.latest.values() {
                for &(v, est) in entries {
                    *combined.entry(v).or_insert(0.0) += est;
                }
            }
        }
        let mut all: Vec<(u64, f64)> = combined.into_iter().collect();
        all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        all.truncate(self.top_k);
        *self.answer.lock() = all;
    }
}

impl StreamProcessor for Collector {
    fn process(&mut self, packet: Packet, api: &mut StageApi) {
        if self.centralized {
            let mut r = PayloadReader::new(packet.payload);
            while r.remaining() >= 8 {
                let v = r.get_u64().expect("8 bytes remain");
                self.sample.insert(v, &mut self.rng);
            }
        } else {
            let mut r = PayloadReader::new(packet.payload);
            let n = r.get_u32().unwrap_or(0) as usize;
            let _tau = r.get_f64().unwrap_or(1.0);
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let (Ok(v), Ok(est)) = (r.get_u64(), r.get_f64()) else { break };
                entries.push((v, est));
            }
            // Merging is charged per entry (the static cost model charges
            // per record, which equals the entry count for summaries —
            // the extra here covers the lookup overhead knob).
            api.add_cost(SimDuration::from_secs_f64(
                self.merge_cost_per_entry * entries.len() as f64,
            ));
            self.latest.insert(packet.stream_id, entries);
        }
        self.publish();
    }

    fn on_eos(&mut self, _api: &mut StageApi) {
        self.publish();
    }

    // Failover state: the per-source latest summaries (distributed
    // mode). Centralized mode keeps its state in a counting sample whose
    // randomized internals are not worth shipping — it restarts fresh,
    // which the empty default snapshot already expresses.
    fn snapshot(&self) -> Vec<u8> {
        if self.centralized || self.latest.is_empty() {
            return Vec::new();
        }
        let mut streams: Vec<_> = self.latest.iter().collect();
        streams.sort_by_key(|(id, _)| **id);
        let mut w = PayloadWriter::with_capacity(
            4 + streams.iter().map(|(_, e)| 8 + e.len() * 16).sum::<usize>(),
        );
        w.put_u32(streams.len() as u32);
        for (id, entries) in streams {
            w.put_u32(*id);
            w.put_u32(entries.len() as u32);
            for &(v, est) in entries {
                w.put_u64(v);
                w.put_f64(est);
            }
        }
        w.finish().to_vec()
    }

    fn restore(&mut self, state: &[u8]) {
        let mut r = PayloadReader::new(state.to_vec().into());
        let Ok(n_streams) = r.get_u32() else { return };
        for _ in 0..n_streams {
            let (Ok(id), Ok(n)) = (r.get_u32(), r.get_u32()) else { return };
            let mut entries = Vec::with_capacity(n.min(4_096) as usize);
            for _ in 0..n {
                let (Ok(v), Ok(est)) = (r.get_u64(), r.get_f64()) else { return };
                entries.push((v, est));
            }
            self.latest.insert(id, entries);
        }
        self.publish();
    }
}

// ---------------------------------------------------------------------------
// Topology construction
// ---------------------------------------------------------------------------

/// Build the count-samps topology and its result handles.
pub fn build(params: &CountSampsParams) -> (Topology, CountSampsHandles) {
    assert!(params.sources >= 1, "need at least one source");
    let handles = CountSampsHandles::default();
    let mut topo = Topology::new();

    let interval = SimDuration::from_secs_f64(params.batch as f64 / params.rate_per_sec);

    let centralized = matches!(params.mode, Mode::Centralized);
    let collector_cost = if centralized {
        CostModel::per_record(params.central_cost_per_record)
    } else {
        CostModel::per_record(params.merge_cost_per_entry)
    };
    let collector = {
        let answer = Arc::clone(&handles.answer);
        let top_k = params.top_k;
        let footprint = params.central_footprint;
        let merge_cost = params.merge_cost_per_entry;
        let seed = params.seed;
        topo.add_stage(
            StageBuilder::new("collector")
                .site("central")
                .cost(collector_cost)
                .queue_capacity(4_000)
                .adaptation(AdaptationConfig::with_capacity(4_000.0))
                .processor(move || Collector {
                    centralized,
                    sample: CountingSamples::new(footprint),
                    rng: seeded_stream(seed, 1_000),
                    latest: HashMap::new(),
                    merge_cost_per_entry: merge_cost,
                    top_k,
                    answer: Arc::clone(&answer),
                }),
        )
        .expect("collector stage")
    };

    for i in 0..params.sources {
        let stream_id = i as u32;
        let source = {
            let truth = Arc::clone(&handles.truth);
            let p = params.clone();
            topo.add_stage_raw(
                StageBuilder::new(format!("source-{i}")).site(format!("site-{i}")).processor(
                    move || ZipfSource {
                        stream_id,
                        remaining: p.items_per_source,
                        batch: p.batch,
                        interval,
                        zipf: ZipfGenerator::new(p.zipf_n, p.zipf_s),
                        rng: seeded_stream(p.seed, stream_id as u64),
                        truth: Arc::clone(&truth),
                        seq: 0,
                    },
                ),
            )
            .expect("source stage")
        };

        // File-replay generation blocks under flow control (paper's JVM
        // streams), so every count-samps connection is windowed: a slow
        // link slows the whole chain down instead of dropping records.
        let wan = LinkSpec::with_bandwidth(params.bandwidth).buffer(4).blocking();
        match params.mode {
            Mode::Centralized => {
                topo.connect(source, collector, wan.clone().buffer(2));
            }
            Mode::Distributed { .. } | Mode::Adaptive { .. } => {
                let (fixed_k, adaptive) = match params.mode {
                    Mode::Distributed { k } => (k, None),
                    Mode::Adaptive { init, min, max } => (init, Some((init, min, max))),
                    Mode::Centralized => unreachable!(),
                };
                let p = params.clone();
                let summarizer = topo
                    .add_stage(
                        StageBuilder::new(format!("summarizer-{i}"))
                            .site(format!("site-{i}"))
                            .cost(CostModel::per_record(p.summarizer_cost_per_record))
                            .queue_capacity(200)
                            .adaptation(AdaptationConfig::with_capacity(200.0))
                            .processor(move || Summarizer {
                                stream_id,
                                sample: CountingSamples::new(fixed_k.round().max(1.0) as usize),
                                rng: seeded_stream(p.seed, 100 + stream_id as u64),
                                records_since_flush: 0,
                                flush_every: p.flush_every,
                                param: None,
                                fixed_k,
                                adaptive,
                                seq: 0,
                            }),
                    )
                    .expect("summarizer stage");
                // A windowed co-located link: when the summarizer stalls on
                // the WAN, backpressure reaches the source (elastic
                // generation) instead of overflowing the summarizer queue.
                topo.connect(source, summarizer, LinkSpec::local().buffer(2).blocking());
                topo.connect(summarizer, collector, wan);
            }
        }
    }

    (topo, handles)
}

/// Publish the template into a repository under the key `"count-samps"`.
///
/// XML parameters (all optional): `sources`, `items_per_source`, `rate`,
/// `batch`, `zipf_n`, `zipf_s`, `seed`, `bandwidth_kb`, `flush_every`,
/// `top_k`, and `mode` = `centralized` | `distributed` | `adaptive` with
/// `k` / `k_init` / `k_min` / `k_max`.
///
/// Result handles are not reachable through the XML path (the
/// repository trait returns only a topology); use [`build`] directly
/// when the answer and accuracy are needed.
pub fn publish(repo: &mut ApplicationRepository) {
    repo.publish("count-samps", |config: &AppConfig| {
        let params = params_from_config(config).map_err(|e| e.to_string())?;
        Ok(build(&params).0)
    });
}

/// Parse run parameters from an XML [`AppConfig`].
pub fn params_from_config(config: &AppConfig) -> Result<CountSampsParams, gates_grid::GridError> {
    let d = CountSampsParams::default();
    let mode = match config.get("mode").unwrap_or("distributed") {
        "centralized" => Mode::Centralized,
        "adaptive" => Mode::Adaptive {
            init: config.f64_or("k_init", 100.0)?,
            min: config.f64_or("k_min", 10.0)?,
            max: config.f64_or("k_max", 240.0)?,
        },
        _ => Mode::Distributed { k: config.f64_or("k", 100.0)? },
    };
    Ok(CountSampsParams {
        sources: config.usize_or("sources", d.sources)?,
        items_per_source: config.usize_or("items_per_source", d.items_per_source as usize)? as u64,
        rate_per_sec: config.f64_or("rate", d.rate_per_sec)?,
        batch: config.usize_or("batch", d.batch as usize)? as u32,
        zipf_n: config.usize_or("zipf_n", d.zipf_n)?,
        zipf_s: config.f64_or("zipf_s", d.zipf_s)?,
        seed: config.usize_or("seed", d.seed as usize)? as u64,
        mode,
        bandwidth: Bandwidth::kb_per_sec(config.f64_or("bandwidth_kb", 100.0)?),
        flush_every: config.usize_or("flush_every", d.flush_every as usize)? as u64,
        top_k: config.usize_or("top_k", d.top_k)?,
        ..d
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates_engine::{DesEngine, RunOptions};
    use gates_grid::{Deployer, ResourceRegistry};

    fn registry(sources: usize) -> ResourceRegistry {
        let mut sites: Vec<String> = (0..sources).map(|i| format!("site-{i}")).collect();
        sites.push("central".into());
        let refs: Vec<&str> = sites.iter().map(String::as_str).collect();
        ResourceRegistry::uniform_cluster(&refs)
    }

    fn run(params: &CountSampsParams) -> (gates_core::report::RunReport, CountSampsHandles) {
        let (topo, handles) = build(params);
        let plan = Deployer::new().deploy(&topo, &registry(params.sources)).unwrap();
        let mut engine = DesEngine::new(topo, &plan, RunOptions::default()).unwrap();
        let report = engine.run_to_completion();
        (report, handles)
    }

    fn small() -> CountSampsParams {
        CountSampsParams {
            sources: 2,
            items_per_source: 4_000,
            rate_per_sec: 2_000.0,
            zipf_n: 500,
            ..Default::default()
        }
    }

    #[test]
    fn centralized_run_is_accurate() {
        let params = CountSampsParams { mode: Mode::Centralized, ..small() };
        let (report, handles) = run(&params);
        let truth_total: u64 = handles.truth.lock().values().sum();
        assert_eq!(truth_total, 8_000, "sources generated everything");
        let collector = report.stage("collector").unwrap();
        assert_eq!(collector.records_in, 8_000, "all raw records crossed the network");
        let acc = handles.accuracy(10);
        assert!(acc.score > 90.0, "centralized accuracy too low: {acc:?}");
    }

    #[test]
    fn distributed_run_sends_less_and_stays_accurate() {
        let central = run(&CountSampsParams { mode: Mode::Centralized, ..small() });
        let dist = run(&CountSampsParams { mode: Mode::Distributed { k: 100.0 }, ..small() });
        let central_bytes = central.0.stage("collector").unwrap().bytes_in;
        let dist_bytes = dist.0.stage("collector").unwrap().bytes_in;
        assert!(
            dist_bytes < central_bytes / 2,
            "summaries must shrink traffic: {dist_bytes} vs {central_bytes}"
        );
        let acc = dist.1.accuracy(10);
        assert!(acc.score > 75.0, "distributed accuracy too low: {acc:?}");
        assert!(acc.recall >= 0.8, "top-10 recall too low: {acc:?}");
    }

    #[test]
    fn distributed_is_faster_on_slow_links() {
        let slow = Bandwidth::kb_per_sec(5.0);
        let central =
            run(&CountSampsParams { mode: Mode::Centralized, bandwidth: slow, ..small() });
        let dist = run(&CountSampsParams {
            mode: Mode::Distributed { k: 100.0 },
            bandwidth: slow,
            ..small()
        });
        assert!(
            dist.0.execution_secs() < central.0.execution_secs(),
            "distributed {0}s must beat centralized {1}s",
            dist.0.execution_secs(),
            central.0.execution_secs()
        );
    }

    #[test]
    fn bigger_k_is_more_accurate() {
        let lo = run(&CountSampsParams { mode: Mode::Distributed { k: 10.0 }, ..small() });
        let hi = run(&CountSampsParams { mode: Mode::Distributed { k: 200.0 }, ..small() });
        let lo_acc = lo.1.accuracy(10).score;
        let hi_acc = hi.1.accuracy(10).score;
        assert!(hi_acc > lo_acc, "k=200 ({hi_acc}) must beat k=10 ({lo_acc})");
    }

    #[test]
    fn adaptive_mode_moves_k() {
        let params = CountSampsParams {
            mode: Mode::Adaptive { init: 100.0, min: 10.0, max: 240.0 },
            bandwidth: Bandwidth::kb_per_sec(1.0),
            items_per_source: 30_000,
            flush_every: 250,
            ..small()
        };
        let (report, _) = run(&params);
        let summ = report.stage("summarizer-0").unwrap();
        let traj = summ.param("k").expect("k trajectory recorded");
        assert!(traj.samples.len() > 3, "adaptation rounds ran");
        // While the link is saturated, k must come down; after the finite
        // stream ends and the backlog drains, the idle pipeline may relax
        // it again, so the loaded-phase minimum is the meaningful signal.
        let min = traj.samples.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        assert!(
            min < 100.0,
            "a 1 KB/s link must push k down from 100, min was {min} (traj {:?})",
            traj.samples
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let p = small();
        let a = run(&p);
        let b = run(&p);
        assert_eq!(a.0.finished_at, b.0.finished_at);
        assert_eq!(*a.1.answer.lock(), *b.1.answer.lock());
    }

    #[test]
    fn collector_checkpoint_round_trips() {
        let answer = Arc::new(Mutex::new(Vec::new()));
        let mut a = Collector {
            centralized: false,
            sample: CountingSamples::new(100),
            rng: seeded_stream(1, 1),
            latest: HashMap::new(),
            merge_cost_per_entry: 0.0,
            top_k: 10,
            answer: Arc::clone(&answer),
        };
        a.latest.insert(0, vec![(7, 12.0), (9, 3.5)]);
        a.latest.insert(2, vec![(7, 1.0)]);
        let state = a.snapshot();
        assert!(!state.is_empty(), "distributed collector has replayable state");

        let mut b = Collector {
            centralized: false,
            sample: CountingSamples::new(100),
            rng: seeded_stream(1, 2),
            latest: HashMap::new(),
            merge_cost_per_entry: 0.0,
            top_k: 10,
            answer: Arc::new(Mutex::new(Vec::new())),
        };
        b.restore(&state);
        assert_eq!(b.latest, a.latest);
        // Restore republishes, so the answer is warm before any packet.
        assert_eq!(b.answer.lock().first(), Some(&(7, 13.0)));

        let centralized = Collector { centralized: true, ..a };
        assert!(centralized.snapshot().is_empty(), "centralized mode restarts fresh");
    }

    #[test]
    fn zipf_source_checkpoint_round_trips() {
        let truth = Arc::new(Mutex::new(HashMap::new()));
        let mut src = ZipfSource {
            stream_id: 3,
            remaining: 1_234,
            batch: 50,
            interval: SimDuration::from_secs_f64(0.01),
            zipf: ZipfGenerator::new(100, 1.1),
            rng: seeded_stream(1, 3),
            truth: Arc::clone(&truth),
            seq: 77,
        };
        let state = src.snapshot();
        src.remaining = 0;
        src.seq = 0;
        src.restore(&state);
        assert_eq!((src.remaining, src.seq), (1_234, 77));
        // Garbage state is ignored rather than corrupting progress.
        src.restore(&[1, 2, 3]);
        assert_eq!((src.remaining, src.seq), (1_234, 77));
    }

    #[test]
    fn xml_config_round_trip() {
        let config = AppConfig::new("run", "count-samps")
            .with_param("sources", 3)
            .with_param("mode", "adaptive")
            .with_param("k_min", 20)
            .with_param("bandwidth_kb", 10);
        let params = params_from_config(&config).unwrap();
        assert_eq!(params.sources, 3);
        assert!(matches!(params.mode, Mode::Adaptive { min, .. } if min == 20.0));
        assert_eq!(params.bandwidth.as_bytes_per_sec(), 10_000.0);
        // And the published factory builds it.
        let mut repo = ApplicationRepository::new();
        publish(&mut repo);
        let topo = repo.build(&config).unwrap();
        assert_eq!(topo.stages().len(), 1 + 3 * 2, "collector + per-source chains");
    }
}

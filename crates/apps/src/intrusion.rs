//! Distributed network-intrusion detection — the paper's §2 motivating
//! application ("online analysis of streams of connection request logs
//! and identifying unusual patterns … analysis be performed in a
//! distributed fashion, and connection request logs at a number of
//! sites be analyzed").
//!
//! Pipeline: per-site log sources → per-site *sketcher* stages → central
//! *correlator*. Each connection event is a `(source, destination)`
//! address pair. The sketcher runs two detectors over bounded state:
//!
//! * **volume** — Misra–Gries top talkers catch *flooders* (one source
//!   hammering the site);
//! * **spread** — per-candidate HyperLogLog sketches of distinct
//!   destinations catch *scanners* (one source probing many targets with
//!   little volume — invisible to frequency summaries).
//!
//! A Bloom-filter **allowlist** suppresses reports for vetted sources
//! (e.g. the site's own monitoring hosts). Reports are flushed
//! periodically; the correlator merges volume counts by addition and
//! HLLs by register-wise max (a lossless union) and raises alerts
//! against global thresholds.
//!
//! The report size (entries per flush) is the stage's adjustment
//! parameter, adapted by the middleware exactly like count-samps' `k`.
//!
//! ## Wire format (summary packets)
//!
//! `u32 n_vol`, `u32 n_scan`, `u64 site_events`, then `n_vol` ×
//! (`u64 src`, `u64 count`), then `n_scan` × (`u64 src`, `u32 reg_len`,
//! `reg_len` register bytes).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;

use gates_core::adapt::AdaptationConfig;
use gates_core::{
    CostModel, Direction, Packet, ParamId, PayloadReader, PayloadWriter, SourceStatus, StageApi,
    StageBuilder, StreamProcessor, Topology,
};
use gates_grid::{AppConfig, ApplicationRepository};
use gates_net::{Bandwidth, LinkSpec};
use gates_sim::rng::seeded_stream;
use gates_sim::SimDuration;
use gates_streams::{BloomFilter, HyperLogLog, MisraGries, ZipfGenerator};

/// HLL size per scan candidate: 2^6 = 64 registers (64 B on the wire,
/// ~13% standard error — plenty to separate "8 destinations" from
/// "800").
const HLL_B: u32 = 6;

/// Parameters of an intrusion-detection run.
#[derive(Debug, Clone)]
pub struct IntrusionParams {
    /// Number of monitored sites.
    pub sites: usize,
    /// Connection events per site.
    pub events_per_site: u64,
    /// Events per second per site.
    pub rate_per_sec: f64,
    /// Events per packet.
    pub batch: u32,
    /// Background source-address population (Zipf-distributed).
    pub address_space: usize,
    /// Zipf exponent of the background traffic. Kept mild (default 0.6)
    /// so legitimate popular addresses stay below the alert threshold.
    pub background_skew: f64,
    /// Distinct destination addresses in background traffic.
    pub dest_space: usize,
    /// Injected *flooder* addresses (high volume, few destinations).
    pub flooders: usize,
    /// Fraction of each site's traffic belonging to flooders.
    pub flood_fraction: f64,
    /// Injected *scanner* addresses (low volume, many distinct
    /// destinations).
    pub scanners: usize,
    /// Fraction of each site's traffic belonging to scanners.
    pub scan_fraction: f64,
    /// Allowlisted source addresses (never reported).
    pub allowlist: Vec<u64>,
    /// Sketcher report size (entries per flush); adaptive in `[8, 128]`
    /// when `adaptive` is set.
    pub report_size: f64,
    /// Enable middleware adaptation of the report size.
    pub adaptive: bool,
    /// Flush period in events.
    pub flush_every: u64,
    /// Site-to-center link bandwidth.
    pub bandwidth: Bandwidth,
    /// Volume alert: flag sources whose merged count exceeds this
    /// fraction of total observed events.
    pub alert_fraction: f64,
    /// Scan alert: flag sources contacting at least this many distinct
    /// destinations (merged estimate). Keep it above `dest_space` so
    /// benign sources — whose reach is bounded by the background
    /// destination population — can never trip it.
    pub scan_threshold: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IntrusionParams {
    fn default() -> Self {
        IntrusionParams {
            sites: 4,
            events_per_site: 20_000,
            rate_per_sec: 2_000.0,
            batch: 50,
            address_space: 10_000,
            background_skew: 0.6,
            dest_space: 200,
            flooders: 2,
            flood_fraction: 0.10,
            scanners: 2,
            scan_fraction: 0.02,
            allowlist: Vec::new(),
            report_size: 32.0,
            adaptive: false,
            flush_every: 1_000,
            bandwidth: Bandwidth::kb_per_sec(50.0),
            alert_fraction: 0.02,
            scan_threshold: 300.0,
            seed: 99,
        }
    }
}

/// A raised alert.
#[derive(Debug, Clone, PartialEq)]
pub enum Alert {
    /// Source exceeding the global volume threshold.
    Flood {
        /// The offending source address.
        src: u64,
        /// Merged request count.
        count: u64,
    },
    /// Source contacting too many distinct destinations.
    Scan {
        /// The offending source address.
        src: u64,
        /// Merged distinct-destination estimate.
        distinct: f64,
    },
}

impl Alert {
    /// The flagged source address.
    pub fn src(&self) -> u64 {
        match *self {
            Alert::Flood { src, .. } | Alert::Scan { src, .. } => src,
        }
    }
}

/// Shared results.
#[derive(Debug, Clone, Default)]
pub struct IntrusionHandles {
    /// Injected flooder addresses (ground truth).
    pub flooders: Arc<Mutex<Vec<u64>>>,
    /// Injected scanner addresses (ground truth).
    pub scanners: Arc<Mutex<Vec<u64>>>,
    /// Alerts raised by the correlator.
    pub alerts: Arc<Mutex<Vec<Alert>>>,
}

impl IntrusionHandles {
    fn detection(&self, truth: &[u64], matches: impl Fn(&Alert) -> bool) -> f64 {
        if truth.is_empty() {
            return 1.0;
        }
        let alerts = self.alerts.lock();
        let hit =
            truth.iter().filter(|t| alerts.iter().any(|a| a.src() == **t && matches(a))).count();
        hit as f64 / truth.len() as f64
    }

    /// Fraction of injected flooders flagged by a flood alert.
    pub fn flood_recall(&self) -> f64 {
        let truth = self.flooders.lock().clone();
        self.detection(&truth, |a| matches!(a, Alert::Flood { .. }))
    }

    /// Fraction of injected scanners flagged by a scan alert.
    pub fn scan_recall(&self) -> f64 {
        let truth = self.scanners.lock().clone();
        self.detection(&truth, |a| matches!(a, Alert::Scan { .. }))
    }

    /// Fraction of raised alerts that point at real attackers.
    pub fn precision(&self) -> f64 {
        let alerts = self.alerts.lock();
        if alerts.is_empty() {
            return 1.0;
        }
        let flooders = self.flooders.lock();
        let scanners = self.scanners.lock();
        let hit = alerts
            .iter()
            .filter(|a| flooders.contains(&a.src()) || scanners.contains(&a.src()))
            .count();
        hit as f64 / alerts.len() as f64
    }
}

// ---------------------------------------------------------------------------
// Processors
// ---------------------------------------------------------------------------

/// Connection-log source: Zipf background plus flooder and scanner
/// injections. Each record is 16 bytes: `src u64`, `dst u64`.
struct LogSource {
    stream_id: u32,
    remaining: u64,
    batch: u32,
    interval: SimDuration,
    background: ZipfGenerator,
    dest_space: u64,
    flooders: Vec<u64>,
    flood_fraction: f64,
    scanners: Vec<u64>,
    scan_fraction: f64,
    /// Scanners sweep destinations sequentially (the classic probe).
    scan_cursor: u64,
    rng: SmallRng,
    seq: u64,
}

impl StreamProcessor for LogSource {
    fn process(&mut self, _packet: Packet, _api: &mut StageApi) {}

    fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
        if self.remaining == 0 {
            return SourceStatus::Done;
        }
        let n = (self.batch as u64).min(self.remaining) as u32;
        let mut w = PayloadWriter::with_capacity(n as usize * 16);
        for _ in 0..n {
            let roll: f64 = self.rng.gen();
            let (src, dst) = if !self.flooders.is_empty() && roll < self.flood_fraction {
                // Flooder: one of a handful of fixed destinations.
                let src = self.flooders[self.rng.gen_range(0..self.flooders.len())];
                (src, self.rng.gen_range(0..4))
            } else if !self.scanners.is_empty() && roll < self.flood_fraction + self.scan_fraction {
                // Scanner: a fresh destination each probe.
                let src = self.scanners[self.rng.gen_range(0..self.scanners.len())];
                self.scan_cursor += 1;
                (src, 1_000_000 + self.scan_cursor)
            } else {
                (self.background.sample(&mut self.rng), self.rng.gen_range(0..self.dest_space))
            };
            w.put_u64(src);
            w.put_u64(dst);
        }
        self.remaining -= n as u64;
        api.emit(Packet::data(self.stream_id, self.seq, n, w.finish()));
        self.seq += 1;
        SourceStatus::Continue { next_poll: self.interval }
    }
}

/// Per-site sketcher: volume (Misra–Gries) + spread (per-candidate HLL)
/// with a Bloom allowlist and an adjustable report size.
struct Sketcher {
    stream_id: u32,
    talkers: MisraGries,
    /// Distinct-destination sketches, grown lazily for any source that
    /// earns a Misra–Gries counter (bounded by the MG budget).
    spreads: HashMap<u64, HyperLogLog>,
    allow: Option<BloomFilter>,
    events_since_flush: u64,
    events_total: u64,
    flush_every: u64,
    param: Option<ParamId>,
    fixed_report: f64,
    adaptive: bool,
    seq: u64,
}

impl Sketcher {
    fn report_size(&self, api: &StageApi) -> usize {
        let r = match self.param {
            Some(id) => api.suggested_value(id).unwrap_or(self.fixed_report),
            None => self.fixed_report,
        };
        (r.round().max(1.0)) as usize
    }

    fn allowed(&self, src: u64) -> bool {
        self.allow.as_ref().is_some_and(|b| b.contains(src))
    }

    fn flush(&mut self, api: &mut StageApi) {
        let k = self.report_size(api);
        let volume: Vec<(u64, u64)> =
            self.talkers.top_k(k).into_iter().filter(|(src, _)| !self.allowed(*src)).collect();
        // Scan suspects: candidates ordered by distinct-destination
        // estimate, same budget.
        let mut scans: Vec<(u64, &HyperLogLog)> = self
            .spreads
            .iter()
            .filter(|(src, _)| !self.allowed(**src))
            .map(|(&src, hll)| (src, hll))
            .collect();
        scans.sort_by(|a, b| {
            b.1.estimate().partial_cmp(&a.1.estimate()).unwrap().then(a.0.cmp(&b.0))
        });
        scans.truncate(k);

        let mut w = PayloadWriter::with_capacity(16 + volume.len() * 16 + scans.len() * 76);
        w.put_u32(volume.len() as u32);
        w.put_u32(scans.len() as u32);
        w.put_u64(self.events_total);
        for &(src, count) in &volume {
            w.put_u64(src);
            w.put_u64(count);
        }
        for (src, hll) in &scans {
            w.put_u64(*src);
            let regs = hll.registers();
            w.put_u32(regs.len() as u32);
            w.put_bytes(regs);
        }
        let records = (volume.len() + scans.len()) as u32;
        api.emit(Packet::summary(self.stream_id, self.seq, records, w.finish()));
        self.seq += 1;
        self.events_since_flush = 0;
    }
}

impl StreamProcessor for Sketcher {
    fn on_start(&mut self, api: &mut StageApi) {
        if self.adaptive {
            let id = api
                .specify_para(
                    "report_size",
                    self.fixed_report,
                    8.0,
                    128.0,
                    8.0,
                    Direction::IncreaseSlowsDown,
                )
                .expect("valid parameter");
            self.param = Some(id);
        }
    }

    fn process(&mut self, packet: Packet, api: &mut StageApi) {
        let mut r = PayloadReader::new(packet.payload);
        while r.remaining() >= 16 {
            let src = r.get_u64().expect("16 bytes remain");
            let dst = r.get_u64().expect("8 bytes remain");
            self.talkers.insert(src);
            self.events_since_flush += 1;
            self.events_total += 1;
            // Spread sketches follow the MG candidate set: any source
            // currently holding a counter gets (or keeps) an HLL; when a
            // source loses its counter its sketch is dropped, keeping
            // state bounded by the MG budget.
            if self.talkers.count(src) > 0 {
                self.spreads.entry(src).or_insert_with(|| HyperLogLog::new(HLL_B)).insert(dst);
            }
        }
        self.spreads.retain(|src, _| self.talkers.count(*src) > 0);
        if self.events_since_flush >= self.flush_every {
            self.flush(api);
        }
    }

    fn on_eos(&mut self, api: &mut StageApi) {
        self.flush(api);
    }
}

/// Central correlator: merges per-site reports, raises flood and scan
/// alerts against global thresholds.
struct Correlator {
    latest: HashMap<u32, SiteReport>,
    alert_fraction: f64,
    scan_threshold: f64,
    alerts: Arc<Mutex<Vec<Alert>>>,
}

struct SiteReport {
    events: u64,
    volume: Vec<(u64, u64)>,
    scans: Vec<(u64, HyperLogLog)>,
}

impl Correlator {
    fn evaluate(&self) {
        let mut counts: HashMap<u64, u64> = HashMap::new();
        let mut spreads: HashMap<u64, HyperLogLog> = HashMap::new();
        let mut total_events = 0u64;
        for site in self.latest.values() {
            total_events += site.events;
            for &(src, count) in &site.volume {
                *counts.entry(src).or_insert(0) += count;
            }
            for (src, hll) in &site.scans {
                match spreads.get_mut(src) {
                    Some(merged) => {
                        let _ = merged.merge(hll);
                    }
                    None => {
                        spreads.insert(*src, hll.clone());
                    }
                }
            }
        }
        if total_events == 0 {
            return;
        }
        let volume_threshold = (self.alert_fraction * total_events as f64).max(1.0) as u64;
        let mut alerts: Vec<Alert> = counts
            .into_iter()
            .filter(|&(_, c)| c >= volume_threshold)
            .map(|(src, count)| Alert::Flood { src, count })
            .collect();
        for (src, hll) in &spreads {
            let distinct = hll.estimate();
            if distinct >= self.scan_threshold {
                alerts.push(Alert::Scan { src: *src, distinct });
            }
        }
        alerts.sort_by_key(Alert::src);
        *self.alerts.lock() = alerts;
    }
}

impl StreamProcessor for Correlator {
    fn process(&mut self, packet: Packet, _api: &mut StageApi) {
        let mut r = PayloadReader::new(packet.payload);
        let n_vol = r.get_u32().unwrap_or(0) as usize;
        let n_scan = r.get_u32().unwrap_or(0) as usize;
        let events = r.get_u64().unwrap_or(0);
        let mut volume = Vec::with_capacity(n_vol);
        for _ in 0..n_vol {
            let (Ok(src), Ok(count)) = (r.get_u64(), r.get_u64()) else { break };
            volume.push((src, count));
        }
        let mut scans = Vec::with_capacity(n_scan);
        for _ in 0..n_scan {
            let Ok(src) = r.get_u64() else { break };
            let Ok(reg_len) = r.get_u32() else { break };
            let Ok(regs) = r.get_bytes(reg_len as usize) else { break };
            if let Ok(hll) = HyperLogLog::from_registers(regs.to_vec()) {
                scans.push((src, hll));
            }
        }
        self.latest.insert(packet.stream_id, SiteReport { events, volume, scans });
        self.evaluate();
    }

    fn on_eos(&mut self, _api: &mut StageApi) {
        self.evaluate();
    }
}

// ---------------------------------------------------------------------------
// Topology construction
// ---------------------------------------------------------------------------

/// Build the intrusion-detection topology and its result handles.
pub fn build(params: &IntrusionParams) -> (Topology, IntrusionHandles) {
    assert!(params.sites >= 1, "need at least one site");
    let handles = IntrusionHandles::default();

    // Attacker addresses sit outside the background space entirely.
    let base = params.address_space as u64 + 1_000;
    let flooders: Vec<u64> = (0..params.flooders as u64).map(|i| base + i).collect();
    let scanners: Vec<u64> = (0..params.scanners as u64).map(|i| base + 500 + i).collect();
    *handles.flooders.lock() = flooders.clone();
    *handles.scanners.lock() = scanners.clone();

    let allow = if params.allowlist.is_empty() {
        None
    } else {
        let mut bf = BloomFilter::new(params.allowlist.len().max(8), 0.001);
        for &a in &params.allowlist {
            bf.insert(a);
        }
        Some(bf)
    };

    let mut topo = Topology::new();
    let interval = SimDuration::from_secs_f64(params.batch as f64 / params.rate_per_sec);

    let correlator = {
        let alerts = Arc::clone(&handles.alerts);
        let alert_fraction = params.alert_fraction;
        let scan_threshold = params.scan_threshold;
        topo.add_stage(
            StageBuilder::new("correlator")
                .site("soc")
                .cost(CostModel::per_record(0.0001))
                .queue_capacity(1_000)
                .adaptation(AdaptationConfig::with_capacity(1_000.0))
                .processor(move || Correlator {
                    latest: HashMap::new(),
                    alert_fraction,
                    scan_threshold,
                    alerts: Arc::clone(&alerts),
                }),
        )
        .expect("correlator stage")
    };

    for i in 0..params.sites {
        let stream_id = i as u32;
        let p = params.clone();
        let fl = flooders.clone();
        let sc = scanners.clone();
        let source = topo
            .add_stage_raw(
                StageBuilder::new(format!("logs-{i}")).site(format!("site-{i}")).processor(
                    move || LogSource {
                        stream_id,
                        remaining: p.events_per_site,
                        batch: p.batch,
                        interval,
                        background: ZipfGenerator::new(p.address_space, p.background_skew),
                        dest_space: p.dest_space as u64,
                        flooders: fl.clone(),
                        flood_fraction: p.flood_fraction,
                        scanners: sc.clone(),
                        scan_fraction: p.scan_fraction,
                        scan_cursor: stream_id as u64 * 1_000_000,
                        rng: seeded_stream(p.seed, stream_id as u64),
                        seq: 0,
                    },
                ),
            )
            .expect("log source");

        let p = params.clone();
        let allow_site = allow.clone();
        let sketcher = topo
            .add_stage(
                StageBuilder::new(format!("sketcher-{i}"))
                    .site(format!("site-{i}"))
                    .cost(CostModel::per_record(0.0002))
                    .queue_capacity(200)
                    .adaptation(AdaptationConfig::with_capacity(200.0))
                    .processor(move || Sketcher {
                        stream_id,
                        talkers: MisraGries::new(256),
                        spreads: HashMap::new(),
                        allow: allow_site.clone(),
                        events_since_flush: 0,
                        events_total: 0,
                        flush_every: p.flush_every,
                        param: None,
                        fixed_report: p.report_size,
                        adaptive: p.adaptive,
                        seq: 0,
                    }),
            )
            .expect("sketcher stage");

        topo.connect(source, sketcher, LinkSpec::local());
        topo.connect(sketcher, correlator, LinkSpec::with_bandwidth(params.bandwidth).buffer(4));
    }

    (topo, handles)
}

/// Publish the template under the key `"intrusion"`.
pub fn publish(repo: &mut ApplicationRepository) {
    repo.publish("intrusion", |config: &AppConfig| {
        let params = params_from_config(config).map_err(|e| e.to_string())?;
        Ok(build(&params).0)
    });
}

/// Parse run parameters from an XML [`AppConfig`].
pub fn params_from_config(config: &AppConfig) -> Result<IntrusionParams, gates_grid::GridError> {
    let d = IntrusionParams::default();
    Ok(IntrusionParams {
        sites: config.usize_or("sites", d.sites)?,
        events_per_site: config.usize_or("events_per_site", d.events_per_site as usize)? as u64,
        rate_per_sec: config.f64_or("rate", d.rate_per_sec)?,
        flooders: config.usize_or("flooders", d.flooders)?,
        flood_fraction: config.f64_or("flood_fraction", d.flood_fraction)?,
        scanners: config.usize_or("scanners", d.scanners)?,
        scan_fraction: config.f64_or("scan_fraction", d.scan_fraction)?,
        report_size: config.f64_or("report_size", d.report_size)?,
        adaptive: config.get("adaptive").map(|v| v == "true" || v == "1").unwrap_or(d.adaptive),
        bandwidth: Bandwidth::kb_per_sec(config.f64_or("bandwidth_kb", 50.0)?),
        alert_fraction: config.f64_or("alert_fraction", d.alert_fraction)?,
        scan_threshold: config.f64_or("scan_threshold", d.scan_threshold)?,
        seed: config.usize_or("seed", d.seed as usize)? as u64,
        ..d
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates_engine::{DesEngine, RunOptions};
    use gates_grid::{Deployer, ResourceRegistry};

    fn run(params: &IntrusionParams) -> (gates_core::report::RunReport, IntrusionHandles) {
        let (topo, handles) = build(params);
        let mut sites: Vec<String> = (0..params.sites).map(|i| format!("site-{i}")).collect();
        sites.push("soc".into());
        let refs: Vec<&str> = sites.iter().map(String::as_str).collect();
        let registry = ResourceRegistry::uniform_cluster(&refs);
        let plan = Deployer::new().deploy(&topo, &registry).unwrap();
        let mut engine = DesEngine::new(topo, &plan, RunOptions::default()).unwrap();
        let report = engine.run_to_completion();
        (report, handles)
    }

    fn small() -> IntrusionParams {
        IntrusionParams {
            sites: 2,
            events_per_site: 8_000,
            // Scanners probe ≈160 distinct destinations in this short
            // run; background sources are capped at dest_space = 100.
            dest_space: 100,
            scan_threshold: 120.0,
            ..Default::default()
        }
    }

    #[test]
    fn flooders_are_detected_by_volume() {
        let (_, handles) = run(&small());
        assert_eq!(
            handles.flood_recall(),
            1.0,
            "all flooders flagged: {:?}",
            handles.alerts.lock()
        );
    }

    #[test]
    fn scanners_are_detected_by_spread() {
        let (_, handles) = run(&small());
        assert_eq!(handles.scan_recall(), 1.0, "all scanners flagged: {:?}", handles.alerts.lock());
    }

    #[test]
    fn precision_stays_high() {
        let (_, handles) = run(&small());
        assert!(handles.precision() > 0.7, "precision {}", handles.precision());
    }

    #[test]
    fn scanners_do_not_trip_volume_alerts() {
        // A scanner's traffic share (2% over 2 scanners = 1% each) is
        // below the 2% volume threshold: only Scan alerts may name it.
        let (_, handles) = run(&small());
        let scanners = handles.scanners.lock().clone();
        let alerts = handles.alerts.lock();
        for a in alerts.iter() {
            if scanners.contains(&a.src()) {
                assert!(matches!(a, Alert::Scan { .. }), "scanner flagged by volume: {a:?}");
            }
        }
    }

    #[test]
    fn allowlisted_sources_are_never_reported() {
        let mut params = small();
        // Allowlist one flooder: it must vanish from the alerts while
        // the other flooder is still caught.
        let flooder0 = params.address_space as u64 + 1_000;
        params.allowlist = vec![flooder0];
        let (_, handles) = run(&params);
        let alerts = handles.alerts.lock();
        assert!(
            alerts.iter().all(|a| a.src() != flooder0),
            "allowlisted source reported: {alerts:?}"
        );
        assert!(
            alerts.iter().any(|a| matches!(a, Alert::Flood { src, .. } if *src == flooder0 + 1)),
            "the other flooder must still be caught"
        );
    }

    #[test]
    fn no_attack_no_alarm_storm() {
        let params = IntrusionParams {
            flooders: 0,
            flood_fraction: 0.0,
            scanners: 0,
            scan_fraction: 0.0,
            ..small()
        };
        let (_, handles) = run(&params);
        assert_eq!(handles.flood_recall(), 1.0, "vacuous recall");
        assert!(handles.alerts.lock().len() < 10, "background alone must stay quiet");
    }

    #[test]
    fn distributed_reports_shrink_traffic() {
        let (report, _) = run(&small());
        let correlator = report.stage("correlator").unwrap();
        let sketcher = report.stage("sketcher-0").unwrap();
        assert!(
            correlator.bytes_in < sketcher.bytes_in / 2,
            "sketch reports must be far smaller than raw logs: {} vs {}",
            correlator.bytes_in,
            sketcher.bytes_in
        );
    }

    #[test]
    fn adaptive_report_size_moves_under_pressure() {
        let params = IntrusionParams {
            adaptive: true,
            bandwidth: Bandwidth::kb_per_sec(0.5),
            flush_every: 200,
            events_per_site: 12_000,
            rate_per_sec: 4_000.0,
            ..small()
        };
        let (report, _) = run(&params);
        let traj = report.stage("sketcher-0").unwrap().param("report_size").unwrap();
        let min = traj.samples.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
        assert!(min < 32.0, "starved link must shrink the report size, min was {min}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(&small());
        let b = run(&small());
        assert_eq!(*a.1.alerts.lock(), *b.1.alerts.lock());
        assert_eq!(a.0.finished_at, b.0.finished_at);
    }

    #[test]
    fn xml_config_builds() {
        let mut repo = ApplicationRepository::new();
        publish(&mut repo);
        let config = AppConfig::new("run", "intrusion")
            .with_param("sites", 3)
            .with_param("adaptive", "true")
            .with_param("scan_threshold", 100);
        let topo = repo.build(&config).unwrap();
        assert_eq!(topo.stages().len(), 1 + 3 * 2);
        let params = params_from_config(&config).unwrap();
        assert!(params.adaptive);
        assert_eq!(params.scan_threshold, 100.0);
    }
}

#![deny(missing_docs)]

//! # gates-apps
//!
//! The GATES application templates.
//!
//! The paper evaluates its middleware with "two application templates,
//! which are representative of the applications we described in
//! Section 2" (§5.1); a third template covers the paper's
//! intrusion-detection motivating application:
//!
//! * [`count_samps`] — the distributed counting-samples problem: skewed
//!   integer streams at several sources, a top-k frequency query at a
//!   central node. Supports centralized, distributed-fixed-k and
//!   distributed-adaptive-k deployments; the source-side summary size
//!   `k` is the adjustment parameter.
//! * [`comp_steer`] — computational steering: a simulation emits mesh
//!   values; a sampler forwards a fraction `p` (the adjustment
//!   parameter) to an analysis stage whose processing cost is
//!   `c` ms/byte. Reproduces the paper's Figures 8 and 9 setups.
//! * [`intrusion`] — distributed network-intrusion detection: per-site
//!   connection-log sketching (volume + distinct-destination spread)
//!   with an adjustable report size, a Bloom allowlist, and a central
//!   correlator that raises flood and scan alerts.
//! * [`hierarchical`] — the multi-tier (LHC Tier-2/1/0 style) variant of
//!   count-samps, with nested adjustment parameters at two tiers.
//!
//! Each module exposes a typed parameter struct, a
//! `build(…) -> (Topology, Handles)` constructor, and a
//! `publish(…)`/`register` helper that installs the template into a
//! [`gates_grid::ApplicationRepository`] so it can be launched from an
//! XML configuration.

pub mod comp_steer;
pub mod count_samps;
pub mod hierarchical;
pub mod intrusion;

pub use comp_steer::{CompSteerHandles, CompSteerParams};
pub use count_samps::{CountSampsHandles, CountSampsParams, Mode};
pub use hierarchical::{HierarchicalHandles, HierarchicalParams};
pub use intrusion::{IntrusionHandles, IntrusionParams};

/// Register all application templates (with default result
/// handles) into a repository, so XML-driven launches work end to end.
pub fn publish_all(repo: &mut gates_grid::ApplicationRepository) {
    count_samps::publish(repo);
    comp_steer::publish(repo);
    intrusion::publish(repo);
    hierarchical::publish(repo);
}

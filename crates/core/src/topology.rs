//! Pipeline descriptions: stages, their placement sites, and the links
//! between them.
//!
//! A [`Topology`] is pure data plus processor factories — no execution.
//! The grid deployer maps each stage's *site* label onto a concrete node,
//! and an executor (virtual-time or threaded) instantiates and runs it.

use std::sync::Arc;

use gates_net::LinkSpec;

use crate::adapt::AdaptationConfig;
use crate::shard::ShardRouter;
use crate::stage::{CostModel, StreamProcessor};
use crate::CoreError;

/// Index of a stage within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StageId(pub(crate) usize);

impl StageId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0
    }

    /// Mint an id from an ordinal index. Ids are defined to be dense
    /// indexes in stage-insertion order, so iterating
    /// [`Topology::stages`] with `enumerate` and re-minting ids is valid.
    pub fn from_index(i: usize) -> Self {
        StageId(i)
    }
}

/// Factory producing fresh processor instances for a stage. Shared
/// (`Arc`) so [`Topology::replicate`] can hand the same factory to every
/// replica of a stage.
pub type ProcessorFactory = Arc<dyn Fn() -> Box<dyn StreamProcessor + Send> + Send + Sync>;

/// Description of one stage.
pub struct StageSpec {
    /// Stage name (unique within the topology).
    pub name: String,
    /// Placement site label, matched against grid node sites by the
    /// deployer (e.g. `"source-0"`, `"central"`).
    pub site: String,
    /// Static processing cost per packet.
    pub cost: CostModel,
    /// Input queue capacity C, in packets.
    pub queue_capacity: usize,
    /// Adaptation constants for this stage's queue and parameters
    /// (`None` disables adaptation at this stage).
    pub adaptation: Option<AdaptationConfig>,
    factory: ProcessorFactory,
}

impl StageSpec {
    /// Instantiate a fresh processor for this stage.
    pub fn instantiate(&self) -> Box<dyn StreamProcessor + Send> {
        (self.factory)()
    }
}

impl std::fmt::Debug for StageSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageSpec")
            .field("name", &self.name)
            .field("site", &self.site)
            .field("cost", &self.cost)
            .field("queue_capacity", &self.queue_capacity)
            .field("adaptation", &self.adaptation.is_some())
            .finish()
    }
}

/// Builder for a [`StageSpec`].
pub struct StageBuilder {
    name: String,
    site: String,
    cost: CostModel,
    queue_capacity: usize,
    adaptation: Option<AdaptationConfig>,
    factory: Option<ProcessorFactory>,
}

impl StageBuilder {
    /// Start building a stage called `name` (site defaults to the name).
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        StageBuilder {
            site: name.clone(),
            name,
            cost: CostModel::zero(),
            queue_capacity: 100,
            adaptation: None,
            factory: None,
        }
    }

    /// Placement site label.
    pub fn site(mut self, site: impl Into<String>) -> Self {
        self.site = site.into();
        self
    }

    /// Static per-packet cost model.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Input queue capacity in packets (C).
    pub fn queue_capacity(mut self, packets: usize) -> Self {
        self.queue_capacity = packets.max(1);
        self
    }

    /// Explicit adaptation constants (otherwise a default configuration
    /// sized to the queue capacity is used).
    pub fn adaptation(mut self, cfg: AdaptationConfig) -> Self {
        self.adaptation = Some(cfg);
        self
    }

    /// Disable adaptation for this stage.
    pub fn no_adaptation(mut self) -> Self {
        self.adaptation = None;
        self
    }

    /// The processor factory (required).
    pub fn processor<F, P>(mut self, factory: F) -> Self
    where
        F: Fn() -> P + Send + Sync + 'static,
        P: StreamProcessor + Send,
    {
        self.factory = Some(Arc::new(move || Box::new(factory())));
        self
    }

    fn build(self) -> Result<StageSpec, CoreError> {
        let factory = self.factory.ok_or_else(|| {
            CoreError::InvalidTopology(format!("stage {:?} has no processor", self.name))
        })?;
        let adaptation = Some(
            self.adaptation
                .unwrap_or_else(|| AdaptationConfig::with_capacity(self.queue_capacity as f64)),
        );
        Ok(StageSpec {
            name: self.name,
            site: self.site,
            cost: self.cost,
            queue_capacity: self.queue_capacity,
            adaptation,
            factory,
        })
    }

    fn build_no_default_adaptation(self) -> Result<StageSpec, CoreError> {
        let factory = self.factory.ok_or_else(|| {
            CoreError::InvalidTopology(format!("stage {:?} has no processor", self.name))
        })?;
        Ok(StageSpec {
            name: self.name,
            site: self.site,
            cost: self.cost,
            queue_capacity: self.queue_capacity,
            adaptation: self.adaptation,
            factory,
        })
    }
}

/// A directed connection between two stages over a network link.
#[derive(Debug)]
pub struct Edge {
    /// Producing stage.
    pub from: StageId,
    /// Consuming stage.
    pub to: StageId,
    /// The link the data crosses.
    pub link: LinkSpec,
}

/// Validation failures for a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// Two stages share a name.
    DuplicateStageName(String),
    /// An edge references a stage id not in this topology.
    UnknownStage(usize),
    /// An edge connects a stage to itself.
    SelfLoop(String),
    /// The stage graph contains a cycle.
    Cycle,
    /// No source stage (every stage has inputs).
    NoSource,
    /// A multi-stage topology has an unconnected stage.
    Disconnected(String),
    /// Two identical edges.
    DuplicateEdge(String, String),
}

impl std::fmt::Display for TopologyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyError::DuplicateStageName(n) => write!(f, "duplicate stage name {n:?}"),
            TopologyError::UnknownStage(i) => write!(f, "edge references unknown stage #{i}"),
            TopologyError::SelfLoop(n) => write!(f, "stage {n:?} connects to itself"),
            TopologyError::Cycle => write!(f, "stage graph contains a cycle"),
            TopologyError::NoSource => write!(f, "topology has no source stage"),
            TopologyError::Disconnected(n) => write!(f, "stage {n:?} has no edges"),
            TopologyError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a:?} -> {b:?}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// A group of replicas expanded from one declared stage by
/// [`Topology::replicate`]. Members are named `"{base}#{ordinal}"` and
/// share one [`ShardRouter`] that partitions the key space among them.
#[derive(Debug)]
pub struct ReplicaGroup {
    /// The declared stage name the group was expanded from.
    pub base: String,
    /// Member stage ids in ordinal order (`members[k]` is ordinal `k`).
    pub members: Vec<StageId>,
    /// The group's shared key-range router.
    pub router: Arc<ShardRouter>,
}

/// One logical output of a stage, as seen by `emit_to`. A route spans
/// `len` consecutive physical out-edges: 1 for a singleton consumer, or
/// the group size for a replicated consumer, in which case `router`
/// picks the one physical port a packet's key maps to.
#[derive(Debug, Clone)]
pub struct OutRoute {
    /// Index of the route's first physical port (position within the
    /// stage's [`Topology::out_edges`] list).
    pub start: usize,
    /// Number of consecutive physical ports the route spans.
    pub len: usize,
    /// `Some` when the consumer is a replica group: routes each packet's
    /// key to the owning member. `None` for singleton consumers.
    pub router: Option<Arc<ShardRouter>>,
}

/// The full pipeline description.
#[derive(Debug, Default)]
pub struct Topology {
    stages: Vec<StageSpec>,
    edges: Vec<Edge>,
    groups: Vec<ReplicaGroup>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Add a stage; a default adaptation configuration (sized to the
    /// queue capacity) is attached unless the builder set one.
    pub fn add_stage(&mut self, builder: StageBuilder) -> Result<StageId, CoreError> {
        let spec = builder.build()?;
        self.push_spec(spec)
    }

    /// Add a stage without attaching a default adaptation configuration:
    /// adaptation stays exactly as the builder left it (possibly off).
    pub fn add_stage_raw(&mut self, builder: StageBuilder) -> Result<StageId, CoreError> {
        let spec = builder.build_no_default_adaptation()?;
        self.push_spec(spec)
    }

    fn push_spec(&mut self, spec: StageSpec) -> Result<StageId, CoreError> {
        if self.stages.iter().any(|s| s.name == spec.name) {
            return Err(CoreError::InvalidTopology(format!(
                "duplicate stage name {:?}",
                spec.name
            )));
        }
        let id = StageId(self.stages.len());
        self.stages.push(spec);
        Ok(id)
    }

    /// Connect `from` to `to` over `link`.
    pub fn connect(&mut self, from: StageId, to: StageId, link: LinkSpec) {
        self.edges.push(Edge { from, to, link });
    }

    /// All stages in id order.
    pub fn stages(&self) -> &[StageSpec] {
        &self.stages
    }

    /// A stage by id.
    pub fn stage(&self, id: StageId) -> Option<&StageSpec> {
        self.stages.get(id.0)
    }

    /// A stage id by name.
    pub fn stage_by_name(&self, name: &str) -> Option<StageId> {
        self.stages.iter().position(|s| s.name == name).map(StageId)
    }

    /// Select the adaptation policy a stage's parameter controllers run
    /// (see [`crate::adapt::PolicyKind`]). Errors if the stage does not
    /// exist or has adaptation disabled. Call before
    /// [`Topology::replicate`] so replicas inherit the choice.
    pub fn set_adapt_policy(
        &mut self,
        stage: &str,
        policy: crate::adapt::PolicyKind,
    ) -> Result<(), CoreError> {
        let id = self.stage_by_name(stage).ok_or_else(|| {
            CoreError::InvalidTopology(format!("no stage named {stage:?} to set a policy on"))
        })?;
        match &mut self.stages[id.0].adaptation {
            Some(cfg) => {
                cfg.policy = policy;
                Ok(())
            }
            None => Err(CoreError::InvalidTopology(format!(
                "stage {stage:?} has adaptation disabled; no policy to set"
            ))),
        }
    }

    /// All edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Ids of stages with no inbound edges (the data sources).
    pub fn sources(&self) -> Vec<StageId> {
        (0..self.stages.len())
            .map(StageId)
            .filter(|&id| !self.edges.iter().any(|e| e.to == id))
            .collect()
    }

    /// Ids of stages with no outbound edges (the final consumers).
    pub fn sinks(&self) -> Vec<StageId> {
        (0..self.stages.len())
            .map(StageId)
            .filter(|&id| !self.edges.iter().any(|e| e.from == id))
            .collect()
    }

    /// Inbound edge indexes of `id`.
    pub fn in_edges(&self, id: StageId) -> Vec<usize> {
        self.edges.iter().enumerate().filter(|(_, e)| e.to == id).map(|(i, _)| i).collect()
    }

    /// Outbound edge indexes of `id`.
    pub fn out_edges(&self, id: StageId) -> Vec<usize> {
        self.edges.iter().enumerate().filter(|(_, e)| e.from == id).map(|(i, _)| i).collect()
    }

    /// Validate structural invariants. Executors call this before running.
    pub fn validate(&self) -> Result<(), TopologyError> {
        // Edge endpoints exist, no self-loops, no duplicate edges.
        let mut seen = std::collections::HashSet::new();
        for e in &self.edges {
            for id in [e.from, e.to] {
                if id.0 >= self.stages.len() {
                    return Err(TopologyError::UnknownStage(id.0));
                }
            }
            if e.from == e.to {
                return Err(TopologyError::SelfLoop(self.stages[e.from.0].name.clone()));
            }
            if !seen.insert((e.from, e.to)) {
                return Err(TopologyError::DuplicateEdge(
                    self.stages[e.from.0].name.clone(),
                    self.stages[e.to.0].name.clone(),
                ));
            }
        }
        if self.stages.is_empty() {
            return Err(TopologyError::NoSource);
        }
        // Kahn's algorithm: cycle detection.
        let n = self.stages.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to.0] += 1;
        }
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        if ready.is_empty() {
            return Err(TopologyError::NoSource);
        }
        let mut visited = 0;
        while let Some(i) = ready.pop() {
            visited += 1;
            for e in &self.edges {
                if e.from.0 == i {
                    indegree[e.to.0] -= 1;
                    if indegree[e.to.0] == 0 {
                        ready.push(e.to.0);
                    }
                }
            }
        }
        if visited != n {
            return Err(TopologyError::Cycle);
        }
        // Connectivity (multi-stage topologies must have no isolated stage).
        if n > 1 {
            for (i, s) in self.stages.iter().enumerate() {
                let connected = self.edges.iter().any(|e| e.from.0 == i || e.to.0 == i);
                if !connected {
                    return Err(TopologyError::Disconnected(s.name.clone()));
                }
            }
        }
        Ok(())
    }

    /// Expand stage `name` into `n` replicas sharing one key-partitioned
    /// [`ShardRouter`] (uniform initial ranges). The existing stage
    /// becomes ordinal 0 (renamed `"{name}#0"`); ordinals `1..n` are
    /// appended with the same site, cost, queue capacity, adaptation
    /// config and processor factory. Every edge touching the stage is
    /// expanded into `n` consecutive edges in ordinal order, so engines
    /// that wire ports in declaration order see each replica group as a
    /// contiguous port run (see [`Topology::out_routes`]).
    ///
    /// `n <= 1` is a no-op. Replicating a stage twice, or a stage that is
    /// itself a replica, is an error.
    pub fn replicate(&mut self, name: &str, n: usize) -> Result<(), CoreError> {
        if n <= 1 {
            return Ok(());
        }
        let id = self.stage_by_name(name).ok_or_else(|| {
            CoreError::InvalidTopology(format!("replicate: unknown stage {name:?}"))
        })?;
        if self.groups.iter().any(|g| g.members.contains(&id)) {
            return Err(CoreError::InvalidTopology(format!(
                "stage {name:?} is already replicated"
            )));
        }
        let (site, cost, queue_capacity, adaptation, factory) = {
            let s = &self.stages[id.0];
            (s.site.clone(), s.cost, s.queue_capacity, s.adaptation.clone(), Arc::clone(&s.factory))
        };
        self.stages[id.0].name = format!("{name}#0");
        let mut members = vec![id];
        for k in 1..n {
            let spec = StageSpec {
                name: format!("{name}#{k}"),
                site: site.clone(),
                cost,
                queue_capacity,
                adaptation: adaptation.clone(),
                factory: Arc::clone(&factory),
            };
            members.push(self.push_spec(spec)?);
        }
        let old = std::mem::take(&mut self.edges);
        for e in old {
            if e.to == id {
                for &m in &members {
                    self.edges.push(Edge { from: e.from, to: m, link: e.link.clone() });
                }
            } else if e.from == id {
                for &m in &members {
                    self.edges.push(Edge { from: m, to: e.to, link: e.link.clone() });
                }
            } else {
                self.edges.push(e);
            }
        }
        self.groups.push(ReplicaGroup {
            base: name.to_string(),
            members,
            router: Arc::new(ShardRouter::uniform(n)),
        });
        Ok(())
    }

    /// Replica groups created by [`Topology::replicate`].
    pub fn groups(&self) -> &[ReplicaGroup] {
        &self.groups
    }

    /// `(group index, ordinal)` when `id` is a member of a replica
    /// group, else `None`.
    pub fn replica_of(&self, id: StageId) -> Option<(usize, usize)> {
        self.groups.iter().enumerate().find_map(|(gi, g)| {
            g.members.iter().position(|&m| m == id).map(|ordinal| (gi, ordinal))
        })
    }

    /// The logical output routes of `id`: consecutive physical out-ports
    /// targeting one replica group collapse into one sharded route;
    /// everything else is a singleton route. For an unreplicated
    /// topology every route has `len == 1` and route index == physical
    /// port index, so `emit_to` semantics are unchanged.
    pub fn out_routes(&self, id: StageId) -> Vec<OutRoute> {
        let ports = self.out_edges(id);
        let mut routes = Vec::new();
        let mut pos = 0;
        while pos < ports.len() {
            let target = self.edges[ports[pos]].to;
            if let Some((gi, 0)) = self.replica_of(target) {
                let g = &self.groups[gi];
                let n = g.members.len();
                let aligned = pos + n <= ports.len()
                    && (0..n).all(|k| self.edges[ports[pos + k]].to == g.members[k]);
                if aligned {
                    routes.push(OutRoute {
                        start: pos,
                        len: n,
                        router: Some(Arc::clone(&g.router)),
                    });
                    pos += n;
                    continue;
                }
            }
            routes.push(OutRoute { start: pos, len: 1, router: None });
            pos += 1;
        }
        routes
    }

    /// Stage ids in a topological order (validate first).
    pub fn topo_order(&self) -> Vec<StageId> {
        let n = self.stages.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.to.0] += 1;
        }
        let mut ready: std::collections::VecDeque<usize> =
            (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop_front() {
            order.push(StageId(i));
            for e in &self.edges {
                if e.from.0 == i {
                    indegree[e.to.0] -= 1;
                    if indegree[e.to.0] == 0 {
                        ready.push_back(e.to.0);
                    }
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Packet;
    use crate::stage::StageApi;
    use gates_net::{Bandwidth, LinkSpec};

    struct Nop;
    impl StreamProcessor for Nop {
        fn process(&mut self, _packet: Packet, _api: &mut StageApi) {}
    }

    fn stage(name: &str) -> StageBuilder {
        StageBuilder::new(name).processor(|| Nop)
    }

    fn link() -> LinkSpec {
        LinkSpec::with_bandwidth(Bandwidth::kb_per_sec(100.0))
    }

    #[test]
    fn linear_pipeline_validates() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("src")).unwrap();
        let b = t.add_stage(stage("mid")).unwrap();
        let c = t.add_stage(stage("sink")).unwrap();
        t.connect(a, b, link());
        t.connect(b, c, link());
        t.validate().unwrap();
        assert_eq!(t.sources(), vec![a]);
        assert_eq!(t.sinks(), vec![c]);
        assert_eq!(t.topo_order(), vec![a, b, c]);
    }

    #[test]
    fn fan_in_topology() {
        let mut t = Topology::new();
        let s: Vec<_> = (0..4).map(|i| t.add_stage(stage(&format!("src{i}"))).unwrap()).collect();
        let sink = t.add_stage(stage("sink")).unwrap();
        for &src in &s {
            t.connect(src, sink, link());
        }
        t.validate().unwrap();
        assert_eq!(t.sources().len(), 4);
        assert_eq!(t.in_edges(sink).len(), 4);
        assert_eq!(t.out_edges(sink).len(), 0);
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut t = Topology::new();
        t.add_stage(stage("x")).unwrap();
        assert!(t.add_stage(stage("x")).is_err());
    }

    #[test]
    fn missing_processor_rejected() {
        let mut t = Topology::new();
        assert!(t.add_stage(StageBuilder::new("no-proc")).is_err());
    }

    #[test]
    fn cycle_detected() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("a")).unwrap();
        let b = t.add_stage(stage("b")).unwrap();
        t.connect(a, b, link());
        t.connect(b, a, link());
        assert!(matches!(t.validate(), Err(TopologyError::Cycle) | Err(TopologyError::NoSource)));
    }

    #[test]
    fn self_loop_detected() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("a")).unwrap();
        t.connect(a, a, link());
        assert_eq!(t.validate(), Err(TopologyError::SelfLoop("a".into())));
    }

    #[test]
    fn duplicate_edge_detected() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("a")).unwrap();
        let b = t.add_stage(stage("b")).unwrap();
        t.connect(a, b, link());
        t.connect(a, b, link());
        assert!(matches!(t.validate(), Err(TopologyError::DuplicateEdge(_, _))));
    }

    #[test]
    fn disconnected_stage_detected() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("a")).unwrap();
        let b = t.add_stage(stage("b")).unwrap();
        t.add_stage(stage("island")).unwrap();
        t.connect(a, b, link());
        assert_eq!(t.validate(), Err(TopologyError::Disconnected("island".into())));
    }

    #[test]
    fn edge_to_unknown_stage_detected() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("a")).unwrap();
        t.connect(a, StageId(7), link());
        assert_eq!(t.validate(), Err(TopologyError::UnknownStage(7)));
    }

    #[test]
    fn empty_topology_is_invalid() {
        assert_eq!(Topology::new().validate(), Err(TopologyError::NoSource));
    }

    #[test]
    fn single_stage_is_valid() {
        let mut t = Topology::new();
        t.add_stage(stage("only")).unwrap();
        t.validate().unwrap();
    }

    #[test]
    fn default_adaptation_sized_to_queue() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("a").queue_capacity(64)).unwrap();
        let cfg = t.stage(a).unwrap().adaptation.as_ref().unwrap();
        assert_eq!(cfg.capacity, 64.0);
    }

    #[test]
    fn raw_add_respects_no_adaptation() {
        let mut t = Topology::new();
        let a = t.add_stage_raw(stage("a")).unwrap();
        assert!(t.stage(a).unwrap().adaptation.is_none());
    }

    #[test]
    fn lookup_by_name() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("alpha")).unwrap();
        assert_eq!(t.stage_by_name("alpha"), Some(a));
        assert_eq!(t.stage_by_name("beta"), None);
    }

    #[test]
    fn replicate_expands_stages_and_edges() {
        let mut t = Topology::new();
        let src = t.add_stage(stage("src")).unwrap();
        let agg = t.add_stage(stage("agg")).unwrap();
        let sink = t.add_stage(stage("sink")).unwrap();
        t.connect(src, agg, link());
        t.connect(agg, sink, link());
        t.replicate("agg", 3).unwrap();
        t.validate().unwrap();

        assert_eq!(t.stages().len(), 5);
        assert_eq!(t.stage_by_name("agg"), None, "base name is renamed");
        let g = &t.groups()[0];
        assert_eq!(g.base, "agg");
        assert_eq!(g.members.len(), 3);
        assert_eq!(t.stage(g.members[0]).unwrap().name, "agg#0");
        assert_eq!(t.stage(g.members[2]).unwrap().name, "agg#2");
        // src fans out to all members, consecutively and in ordinal order.
        let out = t.out_edges(src);
        assert_eq!(out.len(), 3);
        for (k, &ei) in out.iter().enumerate() {
            assert_eq!(t.edges()[ei].to, g.members[k]);
        }
        // Each member has its own edge to the sink.
        assert_eq!(t.in_edges(sink).len(), 3);
        for &m in &g.members {
            assert_eq!(t.out_edges(m).len(), 1);
        }
        assert_eq!(t.replica_of(g.members[1]), Some((0, 1)));
        assert_eq!(t.replica_of(src), None);
    }

    #[test]
    fn replicate_one_is_noop_and_twice_is_error() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("a")).unwrap();
        let b = t.add_stage(stage("b")).unwrap();
        t.connect(a, b, link());
        t.replicate("b", 1).unwrap();
        assert_eq!(t.stages().len(), 2);
        t.replicate("b", 2).unwrap();
        assert!(t.replicate("b", 2).is_err(), "base name is gone after expansion");
        assert!(t.replicate("b#0", 2).is_err(), "replicas cannot be re-replicated");
        assert!(t.replicate("ghost", 2).is_err());
    }

    #[test]
    fn out_routes_collapse_replica_groups() {
        let mut t = Topology::new();
        let src = t.add_stage(stage("src")).unwrap();
        let agg = t.add_stage(stage("agg")).unwrap();
        let side = t.add_stage(stage("side")).unwrap();
        t.connect(src, agg, link());
        t.connect(src, side, link());
        t.connect(agg, side, link());
        t.replicate("agg", 4).unwrap();

        let routes = t.out_routes(src);
        assert_eq!(routes.len(), 2, "4 replica ports + 1 side port = 2 logical routes");
        assert_eq!((routes[0].start, routes[0].len), (0, 4));
        assert!(routes[0].router.is_some());
        assert_eq!((routes[1].start, routes[1].len), (4, 1));
        assert!(routes[1].router.is_none());

        // A singleton stage's routes are identity.
        let agg0 = t.stage_by_name("agg#0").unwrap();
        let r = t.out_routes(agg0);
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].start, r[0].len), (0, 1));
    }

    #[test]
    fn replicas_share_the_processor_factory() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let count = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&count);
        let mut t = Topology::new();
        let a = t.add_stage(stage("a")).unwrap();
        let b = t
            .add_stage(StageBuilder::new("b").processor(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                Nop
            }))
            .unwrap();
        t.connect(a, b, link());
        t.replicate("b", 3).unwrap();
        for m in &t.groups()[0].members {
            let _ = t.stage(*m).unwrap().instantiate();
        }
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn instantiate_calls_factory_each_time() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let count = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&count);
        let mut t = Topology::new();
        let a = t
            .add_stage(StageBuilder::new("a").processor(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                Nop
            }))
            .unwrap();
        let _p1 = t.stage(a).unwrap().instantiate();
        let _p2 = t.stage(a).unwrap().instantiate();
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }
}

//! Adjustment parameters — the paper's `specifyPara` API.
//!
//! An adjustment parameter is "a tunable parameter whose value can be
//! modified to increase the processing rate, and in most cases, reduce
//! the accuracy of the processing" (paper §3.1). The developer declares
//! the initial value, the acceptable range, the granularity, and the
//! *direction*: whether increasing the value speeds processing up or
//! slows it down (the paper's final `specifyPara` argument).

use crate::CoreError;

/// How the parameter's value relates to processing speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Larger value ⇒ faster processing / less data volume
    /// (e.g. a decimation factor).
    IncreaseSpeedsUp,
    /// Larger value ⇒ slower processing / more data volume
    /// (e.g. a sampling rate or summary size — both paper applications).
    IncreaseSlowsDown,
}

impl Direction {
    /// Sign applied when converting a *speed-up demand* into a raw
    /// parameter delta: `+1` if increasing the raw value speeds things up,
    /// `-1` otherwise.
    pub fn sign(self) -> f64 {
        match self {
            Direction::IncreaseSpeedsUp => 1.0,
            Direction::IncreaseSlowsDown => -1.0,
        }
    }
}

/// Declaration of one adjustment parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct AdjustmentParameter {
    /// Human-readable name (for reports).
    pub name: String,
    /// Starting value.
    pub init: f64,
    /// Smallest acceptable value.
    pub min: f64,
    /// Largest acceptable value.
    pub max: f64,
    /// Granularity of adjustment: suggested values move in multiples of
    /// this and are rounded to it.
    pub increment: f64,
    /// Speed orientation.
    pub direction: Direction,
}

impl AdjustmentParameter {
    /// Declare a parameter, validating the specification.
    pub fn new(
        name: impl Into<String>,
        init: f64,
        min: f64,
        max: f64,
        increment: f64,
        direction: Direction,
    ) -> Result<Self, CoreError> {
        let name = name.into();
        if min > max || min.is_nan() || max.is_nan() {
            return Err(CoreError::InvalidParam(format!("{name}: min {min} > max {max}")));
        }
        if !(min..=max).contains(&init) {
            return Err(CoreError::InvalidParam(format!(
                "{name}: init {init} outside [{min}, {max}]"
            )));
        }
        if increment <= 0.0 || increment.is_nan() || !increment.is_finite() {
            return Err(CoreError::InvalidParam(format!("{name}: increment must be positive")));
        }
        if [init, min, max].iter().any(|v| !v.is_finite()) {
            return Err(CoreError::InvalidParam(format!("{name}: bounds must be finite")));
        }
        Ok(AdjustmentParameter { name, init, min, max, increment, direction })
    }

    /// Clamp `value` into range and round it to the increment grid
    /// anchored at `min`.
    pub fn quantize(&self, value: f64) -> f64 {
        let clamped = value.clamp(self.min, self.max);
        let steps = ((clamped - self.min) / self.increment).round();
        (self.min + steps * self.increment).clamp(self.min, self.max)
    }

    /// Number of increments between min and max (the adaptation range).
    pub fn range_steps(&self) -> f64 {
        (self.max - self.min) / self.increment
    }
}

/// Handle for a declared parameter within a stage's [`ParamTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Raw table index.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Per-stage table of declared parameters and their current suggested
/// values. The processor reads values via `get_suggested_value`; the
/// adaptation controller writes them.
#[derive(Debug, Default, Clone)]
pub struct ParamTable {
    entries: Vec<Entry>,
}

#[derive(Debug, Clone)]
struct Entry {
    spec: AdjustmentParameter,
    suggested: f64,
}

impl ParamTable {
    /// Empty table.
    pub fn new() -> Self {
        ParamTable { entries: Vec::new() }
    }

    /// Register a parameter; its suggested value starts at `init`.
    pub fn register(&mut self, spec: AdjustmentParameter) -> ParamId {
        let id = ParamId(self.entries.len());
        let suggested = spec.init;
        self.entries.push(Entry { spec, suggested });
        id
    }

    /// The current suggested value (the paper's `getSuggestedValue()`).
    pub fn suggested(&self, id: ParamId) -> Result<f64, CoreError> {
        self.entries.get(id.0).map(|e| e.suggested).ok_or(CoreError::UnknownParam(id.0))
    }

    /// Overwrite a suggestion (quantized and clamped to the declaration).
    pub fn set_suggested(&mut self, id: ParamId, value: f64) -> Result<f64, CoreError> {
        let entry = self.entries.get_mut(id.0).ok_or(CoreError::UnknownParam(id.0))?;
        entry.suggested = entry.spec.quantize(value);
        Ok(entry.suggested)
    }

    /// The declaration for a handle.
    pub fn spec(&self, id: ParamId) -> Result<&AdjustmentParameter, CoreError> {
        self.entries.get(id.0).map(|e| &e.spec).ok_or(CoreError::UnknownParam(id.0))
    }

    /// Number of declared parameters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no parameters are declared.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(id, spec, suggested)`.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &AdjustmentParameter, f64)> {
        self.entries.iter().enumerate().map(|(i, e)| (ParamId(i), &e.spec, e.suggested))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampling_rate() -> AdjustmentParameter {
        // The paper's example: init 0.20, range [0.01, 1.0], increment
        // 0.01, increase slows processing down.
        AdjustmentParameter::new(
            "sampling_rate",
            0.20,
            0.01,
            1.0,
            0.01,
            Direction::IncreaseSlowsDown,
        )
        .unwrap()
    }

    #[test]
    fn paper_example_is_valid() {
        let p = sampling_rate();
        assert_eq!(p.direction.sign(), -1.0);
        assert!((p.range_steps() - 99.0).abs() < 1e-9);
    }

    #[test]
    fn init_outside_range_rejected() {
        assert!(
            AdjustmentParameter::new("p", 2.0, 0.0, 1.0, 0.1, Direction::IncreaseSpeedsUp).is_err()
        );
    }

    #[test]
    fn inverted_range_rejected() {
        assert!(
            AdjustmentParameter::new("p", 0.5, 1.0, 0.0, 0.1, Direction::IncreaseSpeedsUp).is_err()
        );
    }

    #[test]
    fn nonpositive_increment_rejected() {
        assert!(
            AdjustmentParameter::new("p", 0.5, 0.0, 1.0, 0.0, Direction::IncreaseSpeedsUp).is_err()
        );
        assert!(AdjustmentParameter::new("p", 0.5, 0.0, 1.0, -0.1, Direction::IncreaseSpeedsUp)
            .is_err());
    }

    #[test]
    fn non_finite_bounds_rejected() {
        assert!(AdjustmentParameter::new(
            "p",
            0.5,
            0.0,
            f64::INFINITY,
            0.1,
            Direction::IncreaseSpeedsUp
        )
        .is_err());
    }

    #[test]
    fn quantize_snaps_to_grid_and_clamps() {
        let p = sampling_rate();
        assert!((p.quantize(0.2349) - 0.23).abs() < 1e-12);
        assert!((p.quantize(0.2351) - 0.24).abs() < 1e-12);
        assert_eq!(p.quantize(5.0), 1.0);
        assert_eq!(p.quantize(-1.0), 0.01);
    }

    #[test]
    fn table_register_and_read() {
        let mut t = ParamTable::new();
        let id = t.register(sampling_rate());
        assert_eq!(t.suggested(id).unwrap(), 0.20);
        assert_eq!(t.len(), 1);
        assert_eq!(t.spec(id).unwrap().name, "sampling_rate");
    }

    #[test]
    fn table_set_quantizes() {
        let mut t = ParamTable::new();
        let id = t.register(sampling_rate());
        let v = t.set_suggested(id, 0.333).unwrap();
        assert!((v - 0.33).abs() < 1e-12);
        assert_eq!(t.suggested(id).unwrap(), v);
    }

    #[test]
    fn unknown_handle_is_error() {
        let mut t = ParamTable::new();
        assert!(t.suggested(ParamId(0)).is_err());
        assert!(t.set_suggested(ParamId(1), 0.5).is_err());
        assert!(t.spec(ParamId(2)).is_err());
    }

    #[test]
    fn iter_yields_all() {
        let mut t = ParamTable::new();
        t.register(sampling_rate());
        t.register(
            AdjustmentParameter::new("k", 100.0, 10.0, 240.0, 10.0, Direction::IncreaseSlowsDown)
                .unwrap(),
        );
        let names: Vec<_> = t.iter().map(|(_, s, _)| s.name.clone()).collect();
        assert_eq!(names, ["sampling_rate", "k"]);
    }
}

//! Run reports shared by all executors.
//!
//! Both engines (virtual-time and threaded) produce the same
//! [`RunReport`], so the experiment harness and tests are
//! executor-agnostic.

use gates_sim::stats::Welford;
use gates_sim::{SimDuration, SimTime};

use crate::trace::RunTrace;

/// One adjustment parameter's recorded trajectory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParamTrajectory {
    /// Parameter name.
    pub name: String,
    /// `(time in seconds, suggested value)` samples, one per adaptation
    /// round — exactly the series plotted in paper Figures 8 and 9.
    pub samples: Vec<(f64, f64)>,
}

impl ParamTrajectory {
    /// Final suggested value, if any rounds ran.
    pub fn final_value(&self) -> Option<f64> {
        self.samples.last().map(|&(_, v)| v)
    }

    /// Mean of the last `n` samples (convergence estimate).
    pub fn tail_mean(&self, n: usize) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let tail = &self.samples[self.samples.len().saturating_sub(n)..];
        Some(tail.iter().map(|&(_, v)| v).sum::<f64>() / tail.len() as f64)
    }

    /// True when the last `n` samples all lie within ±`tol` of their mean.
    pub fn converged(&self, n: usize, tol: f64) -> bool {
        if self.samples.len() < n {
            return false;
        }
        let tail = &self.samples[self.samples.len() - n..];
        let mean = tail.iter().map(|&(_, v)| v).sum::<f64>() / n as f64;
        tail.iter().all(|&(_, v)| (v - mean).abs() <= tol)
    }
}

/// Statistics for one stage over a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Node the stage ran on (site label or node name).
    pub placed_on: String,
    /// Packets consumed from the input queue.
    pub packets_in: u64,
    /// Packets emitted downstream.
    pub packets_out: u64,
    /// Logical records consumed.
    pub records_in: u64,
    /// Logical records emitted.
    pub records_out: u64,
    /// Payload bytes consumed.
    pub bytes_in: u64,
    /// Payload bytes emitted.
    pub bytes_out: u64,
    /// Input packets dropped because the queue was full (real-time
    /// constraint violations).
    pub packets_dropped: u64,
    /// Observed input queue length statistics.
    pub queue: Welford,
    /// End-to-end latency (seconds) of consumed packets, measured from
    /// each packet's `created_at` stamp at its source to its arrival at
    /// this stage — the real-time constraint made visible.
    pub latency: Welford,
    /// Time spent servicing packets.
    pub busy_time: SimDuration,
    /// `(overload, underload)` exceptions this stage reported upstream.
    pub exceptions_sent: (u64, u64),
    /// `(overload, underload)` exceptions received from downstream.
    pub exceptions_received: (u64, u64),
    /// One trajectory per declared adjustment parameter.
    pub params: Vec<ParamTrajectory>,
}

impl StageReport {
    /// Utilization of this stage over the run, in `[0, 1]`.
    pub fn utilization(&self, run_time: SimTime) -> f64 {
        let total = run_time.as_secs_f64();
        if total <= 0.0 {
            return 0.0;
        }
        (self.busy_time.as_secs_f64() / total).min(1.0)
    }

    /// Trajectory for a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamTrajectory> {
        self.params.iter().find(|p| p.name == name)
    }
}

/// A worker process the distributed runtime declared lost during a run.
///
/// A run that lost a worker is a *partial* run: the affected stages'
/// statistics cover only what survived (or what a failover replacement
/// accumulated after restoring the last checkpoint). Consumers comparing
/// runs (parity tests, experiment harnesses) must check
/// [`RunReport::lost_workers`] before trusting the numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LostWorker {
    /// Name the worker registered under.
    pub worker: String,
    /// Why the coordinator declared it lost (connection closed, missed
    /// heartbeats, no report before the deadline).
    pub reason: String,
    /// Run time of the declaration, seconds since the coordinator
    /// started the run.
    pub at: f64,
}

/// The outcome of executing a topology.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Virtual (or wall) time when the last stage finished.
    pub finished_at: SimTime,
    /// Per-stage statistics, in stage-id order.
    pub stages: Vec<StageReport>,
    /// Total events dispatched (virtual-time engine) or callbacks run.
    pub events: u64,
    /// Workers declared lost during the run (distributed runtime only;
    /// always empty for the virtual-time and threaded engines). Non-empty
    /// means the run was partial — see [`LostWorker`].
    pub lost_workers: Vec<LostWorker>,
    /// Flight recording grouped into per-stage time series, when the run
    /// was executed with a [`crate::trace::FlightRecorder`] attached.
    pub trace: Option<RunTrace>,
    /// Faults the chaos layer injected during the run (drops, bit flips,
    /// duplicates, delays, resets, partition transitions). Zero when no
    /// fault plan was configured.
    pub faults_injected: u64,
    /// Recovery actions completed in response to transport failures:
    /// successful reconnects, restored/adopted stages, and idempotently
    /// discarded stale control frames.
    pub fault_recoveries: u64,
    /// Packets the at-least-once layer gave up on: frames still unacked
    /// when a link's redial budget ran out, or evicted from a replay
    /// buffer past its retention cap. Zero in a clean run — injected
    /// drops and duplicates are repaired by replay and dedup, not
    /// counted here (distributed runtime only).
    pub packets_lost: u64,
    /// Frames the at-least-once layer re-transmitted (reconnect replay
    /// and gap NAKs) across all links (distributed runtime only).
    pub packets_replayed: u64,
    /// Already-delivered frames receivers discarded by edge sequence
    /// number — chaos duplicates and over-covering replays that would
    /// previously have double-delivered (distributed runtime only).
    pub packets_deduped: u64,
    /// Total microseconds sending stages spent stalled on a full ack
    /// credit window — the visible cost of credit-based backpressure
    /// (distributed runtime only).
    pub backpressure_us: u64,
}

impl RunReport {
    /// A stage's report by name.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// True when at least one worker was lost, i.e. the statistics
    /// describe a partial run.
    pub fn is_partial(&self) -> bool {
        !self.lost_workers.is_empty()
    }

    /// Total packets dropped anywhere in the pipeline.
    pub fn total_dropped(&self) -> u64 {
        self.stages.iter().map(|s| s.packets_dropped).sum()
    }

    /// End-to-end execution time in seconds (the paper's "execution
    /// time" metric for Figures 5 and 6).
    pub fn execution_secs(&self) -> f64 {
        self.finished_at.as_secs_f64()
    }

    /// Render a fixed-width summary table (for examples and harnesses).
    pub fn summary_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:>10} {:>10} {:>12} {:>12} {:>8} {:>10} {:>12}",
            "stage",
            "pkts in",
            "pkts out",
            "bytes in",
            "bytes out",
            "drops",
            "queue avg",
            "busy (s)"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<18} {:>10} {:>10} {:>12} {:>12} {:>8} {:>10.2} {:>12.3}",
                s.name,
                s.packets_in,
                s.packets_out,
                s.bytes_in,
                s.bytes_out,
                s.packets_dropped,
                s.queue.mean(),
                s.busy_time.as_secs_f64(),
            );
        }
        let _ = writeln!(out, "finished at {:.3}s, {} events", self.execution_secs(), self.events);
        out
    }

    /// Render the second-level table: placement, utilization, latency and
    /// exception traffic per stage.
    pub fn detail_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<18} {:<14} {:>6} {:>12} {:>12} {:>10} {:>10}",
            "stage", "node", "util", "lat avg (s)", "lat max (s)", "exc sent", "exc recv"
        );
        for s in &self.stages {
            let lat_mean = if s.latency.count() > 0 { s.latency.mean() } else { 0.0 };
            let lat_max = if s.latency.count() > 0 { s.latency.max() } else { 0.0 };
            let _ = writeln!(
                out,
                "{:<18} {:<14} {:>5.0}% {:>12.4} {:>12.4} {:>10} {:>10}",
                s.name,
                s.placed_on,
                s.utilization(self.finished_at) * 100.0,
                lat_mean,
                lat_max,
                s.exceptions_sent.0 + s.exceptions_sent.1,
                s.exceptions_received.0 + s.exceptions_received.1,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trajectory(values: &[f64]) -> ParamTrajectory {
        ParamTrajectory {
            name: "p".into(),
            samples: values.iter().enumerate().map(|(i, &v)| (i as f64, v)).collect(),
        }
    }

    #[test]
    fn final_value_and_tail_mean() {
        let t = trajectory(&[0.1, 0.2, 0.3, 0.4]);
        assert_eq!(t.final_value(), Some(0.4));
        assert!((t.tail_mean(2).unwrap() - 0.35).abs() < 1e-12);
        assert!((t.tail_mean(100).unwrap() - 0.25).abs() < 1e-12, "tail longer than data uses all");
        assert_eq!(trajectory(&[]).final_value(), None);
        assert_eq!(trajectory(&[]).tail_mean(3), None);
    }

    #[test]
    fn converged_detects_plateau() {
        let mut values = vec![0.1; 5];
        values.extend([0.5, 0.5, 0.5, 0.5, 0.5]);
        let t = trajectory(&values);
        assert!(t.converged(5, 0.01));
        assert!(!t.converged(8, 0.01), "window reaching the ramp is not converged");
        assert!(!trajectory(&[0.1]).converged(5, 0.1), "too few samples");
    }

    #[test]
    fn stage_utilization_is_bounded() {
        let mut s = StageReport { busy_time: SimDuration::from_secs(5), ..Default::default() };
        assert!((s.utilization(SimTime::from_secs_f64(10.0)) - 0.5).abs() < 1e-12);
        s.busy_time = SimDuration::from_secs(100);
        assert_eq!(s.utilization(SimTime::from_secs_f64(10.0)), 1.0);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn report_lookup_and_totals() {
        let report = RunReport {
            finished_at: SimTime::from_secs_f64(2.5),
            stages: vec![
                StageReport { name: "a".into(), packets_dropped: 3, ..Default::default() },
                StageReport { name: "b".into(), packets_dropped: 4, ..Default::default() },
            ],
            events: 10,
            lost_workers: Vec::new(),
            trace: None,
            faults_injected: 0,
            fault_recoveries: 0,
            packets_lost: 0,
            packets_replayed: 0,
            packets_deduped: 0,
            backpressure_us: 0,
        };
        assert!(report.stage("a").is_some());
        assert!(report.stage("zz").is_none());
        assert_eq!(report.total_dropped(), 7);
        assert_eq!(report.execution_secs(), 2.5);
        let table = report.summary_table();
        assert!(table.contains("a"));
        assert!(table.contains("finished at 2.500s"));
        let detail = report.detail_table();
        assert!(detail.contains("util"));
        assert!(detail.contains("lat avg"));
    }

    #[test]
    fn lost_workers_mark_partial_runs() {
        let mut report = RunReport::default();
        assert!(!report.is_partial(), "clean run");
        report.lost_workers.push(LostWorker {
            worker: "w1".into(),
            reason: "no heartbeat for 3s".into(),
            at: 2.5,
        });
        assert!(report.is_partial());
        assert_eq!(report.lost_workers[0].worker, "w1");
    }

    #[test]
    fn param_lookup_by_name() {
        let s = StageReport { params: vec![trajectory(&[1.0])], ..Default::default() };
        assert!(s.param("p").is_some());
        assert!(s.param("q").is_none());
    }
}

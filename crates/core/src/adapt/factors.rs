//! The three load factors of paper §4.2, as pure functions.
//!
//! All three map into `[-1, 1]`: negative means under-loaded, positive
//! over-loaded, and "the closer |φᵢ| is to 1, it is more likely that the
//! unit is over or under-loaded".

/// φ1 — lifetime over/under-load balance (paper Equation 1):
///
/// ```text
/// φ1(t1, t2) = (t1 − t2) / (t1 + t2)   if t1 + t2 > 0
///            = 0                        otherwise
/// ```
///
/// `t1` counts over-load observations, `t2` under-load observations. The
/// same formula is reused for the downstream exception balance φ1(T1, T2).
pub fn phi1(t1: u64, t2: u64) -> f64 {
    let total = t1 + t2;
    if total == 0 {
        0.0
    } else {
        (t1 as f64 - t2 as f64) / total as f64
    }
}

/// φ2 — recent over/under-load balance over the last `W` load events.
///
/// `w` is incremented for each over-load and decremented for each
/// under-load among the last `window` such occurrences, so `|w| ≤ window`.
///
/// The paper's printed formula for φ2 is corrupted (it is not confined to
/// the stated range `[-1, 1]`); we implement the stated *intent*: the sign
/// of `w` with a magnitude that grows exponentially with `|w|` and reaches
/// 1 at `|w| = W`:
///
/// ```text
/// φ2(w) = sign(w) · (e^|w| − 1) / (e^W − 1)
/// ```
///
/// The exponential emphasizes *consistent* recent overload: half the
/// window agreeing is worth far less than the whole window agreeing.
pub fn phi2(w: i64, window: usize) -> f64 {
    if w == 0 || window == 0 {
        return 0.0;
    }
    let wmag = (w.unsigned_abs() as f64).min(window as f64);
    let scale = (window as f64).exp() - 1.0;
    let mag = (wmag.exp() - 1.0) / scale;
    mag.clamp(0.0, 1.0) * (w.signum() as f64)
}

/// φ3 — recent average queue length d̄ against the expected length `D`
/// and capacity `C` (paper Equation 3):
///
/// ```text
/// φ3(d̄) = (d̄ − D) / D        if d̄ < D     (under-load, in [−1, 0))
///        = (d̄ − D) / (C − D)  if d̄ ≥ D     (over-load, in [0, 1])
/// ```
pub fn phi3(d_bar: f64, expected: f64, capacity: f64) -> f64 {
    debug_assert!(expected > 0.0 && capacity > expected);
    let v = if d_bar < expected {
        (d_bar - expected) / expected
    } else {
        (d_bar - expected) / (capacity - expected)
    };
    v.clamp(-1.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phi1_balance_points() {
        assert_eq!(phi1(0, 0), 0.0);
        assert_eq!(phi1(10, 0), 1.0);
        assert_eq!(phi1(0, 10), -1.0);
        assert_eq!(phi1(5, 5), 0.0);
        assert!((phi1(3, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phi1_always_in_range() {
        for t1 in 0..20u64 {
            for t2 in 0..20u64 {
                let v = phi1(t1, t2);
                assert!((-1.0..=1.0).contains(&v), "phi1({t1},{t2}) = {v}");
            }
        }
    }

    #[test]
    fn phi2_zero_and_extremes() {
        assert_eq!(phi2(0, 16), 0.0);
        assert!((phi2(16, 16) - 1.0).abs() < 1e-12);
        assert!((phi2(-16, 16) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn phi2_is_odd_and_monotone() {
        let window = 16;
        let mut prev = 0.0;
        for w in 1..=window {
            let v = phi2(w as i64, window);
            assert!(v > prev, "phi2 must be increasing in w");
            assert!((phi2(-(w as i64), window) + v).abs() < 1e-12, "phi2 must be odd");
            prev = v;
        }
    }

    #[test]
    fn phi2_emphasizes_consensus() {
        // Exponential shape: half the window is worth far less than half
        // the extreme value.
        assert!(phi2(8, 16) < 0.01);
    }

    #[test]
    fn phi2_clamps_out_of_range_w() {
        assert!((phi2(100, 16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn phi3_anchor_points() {
        let (d_exp, c) = (20.0, 100.0);
        assert_eq!(phi3(0.0, d_exp, c), -1.0);
        assert_eq!(phi3(d_exp, d_exp, c), 0.0);
        assert_eq!(phi3(c, d_exp, c), 1.0);
        assert!((phi3(10.0, d_exp, c) + 0.5).abs() < 1e-12);
        assert!((phi3(60.0, d_exp, c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn phi3_clamps_beyond_capacity() {
        assert_eq!(phi3(250.0, 20.0, 100.0), 1.0);
        assert_eq!(phi3(-5.0, 20.0, 100.0), -1.0);
    }

    #[test]
    fn phi3_piecewise_is_continuous_at_expected() {
        let (d_exp, c) = (20.0, 100.0);
        let below = phi3(d_exp - 1e-9, d_exp, c);
        let above = phi3(d_exp + 1e-9, d_exp, c);
        assert!((below - above).abs() < 1e-9);
    }
}

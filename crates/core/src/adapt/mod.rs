//! The self-adaptation algorithm of paper §4.
//!
//! Every stage is modeled as a server with an input queue of (fixed-size)
//! packets. The algorithm has two halves:
//!
//! 1. **Load evaluation** ([`LoadTracker`]) — each stage periodically
//!    observes its instantaneous queue length `d` and folds three load
//!    factors — φ1(t1, t2), the lifetime ratio of over- vs. under-load
//!    observations; φ2(w), the windowed recent over/under-load balance;
//!    and φ3(d̄), the recent average queue length relative to the
//!    expected length D and capacity C — into a *long-term average queue
//!    size factor* d̃. When d̃ leaves the interval `[LT1·C, LT2·C]` the
//!    stage reports an over-load or under-load **exception** to its
//!    upstream stage.
//!
//! 2. **Parameter adjustment** ([`ParamController`]) — each adaptation
//!    round, the stage owning an adjustment parameter combines its own d̃
//!    with the exception balance φ1(T1, T2) reported by its downstream
//!    stage into a *speed-up demand* `U`, scales it by the variability
//!    gains σ1/σ2 (paper: "if the values … are unsteady, we want ΔP to be
//!    large"), and steps the parameter in the direction that satisfies
//!    the demand (using the declared [`crate::Direction`]).
//!
//! ## Deviation from the paper's Equation 4 (documented)
//!
//! The paper combines the two signals additively
//! (`ΔP = d̃·σ1 − φ1(T1,T2)·σ2`). For parameters that control the volume
//! of data forwarded downstream — which describes *both* of the paper's
//! applications — the additive form lets an empty local queue cancel a
//! saturated downstream stage (and vice versa), preventing the
//! convergence shown in the paper's Figures 8 and 9. We therefore default
//! to the **max-demand** combination `U = max(d̃n·σ1, φ1·σ2)`: slow down
//! if *either* end is stressed, speed up only when *both* report slack.
//! The additive form is retained as [`CombinePolicy::PaperAdditive`] and
//! evaluated in the ablation benchmarks.

//! ## Pluggable policies (deviation from the paper, documented)
//!
//! The paper's parameter-adjustment rule is one fixed algorithm. Here it
//! is one of several [`AdaptPolicy`] implementations hosted by the
//! controller — the paper blend (default), AIMD and PID — selectable per
//! stage via [`AdaptationConfig::policy`] / `<stage policy="..."/>` and
//! compared head-to-head by the `abtest` benchmark. See [`policy`] for
//! the rationale (Jacques-Silva et al., *User-defined Runtime Adaptation
//! Routines for Stream Processing*).

mod config;
mod controller;
mod factors;
mod load;
pub mod policy;

pub use config::{AdaptationConfig, CombinePolicy};
pub use controller::{AdaptOutcome, ParamController};
pub use factors::{phi1, phi2, phi3};
pub use load::{LoadException, LoadTracker};
pub use policy::{
    AdaptPolicy, AimdPolicy, PaperPolicy, PidPolicy, PolicyDecision, PolicyInput, PolicyKind,
};

//! Tuning constants of the self-adaptation algorithm (paper Figure 2).

use super::policy::PolicyKind;
use crate::CoreError;

/// How the two demand signals (own queue, downstream exceptions) combine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinePolicy {
    /// `U = max(d̃n·σ1, φ1·σ2)` — slow down when either end is stressed;
    /// speed up only when both have slack. Default; see the module docs
    /// for why.
    MaxDemand,
    /// `U = d̃n·σ1 + φ1·σ2` — the literal reading of the paper's
    /// Equation 4. Kept for ablation.
    PaperAdditive,
}

/// Constants of the algorithm; field names follow paper Figure 2 where
/// one exists.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationConfig {
    /// Learning rate α ∈ (0, 1) smoothing d̃ (paper: "helps remove
    /// transient behavior"). Closer to 1 ⇒ smoother, slower.
    pub alpha: f64,
    /// Window size W: how many recent over/under-load occurrences feed φ2.
    pub window: usize,
    /// Expected queue length D, in packets.
    pub expected_len: f64,
    /// Queue capacity C, in packets.
    pub capacity: f64,
    /// Weights (P1, P2, P3) of φ1, φ2, φ3; must sum to 1.
    pub weights: (f64, f64, f64),
    /// Lower threshold LT1 for d̃ as a fraction of C (typically negative):
    /// below it the stage reports under-load exceptions upstream.
    pub lt1: f64,
    /// Upper threshold LT2 for d̃ as a fraction of C: above it the stage
    /// reports over-load exceptions upstream.
    pub lt2: f64,
    /// An observation counts as *over-loaded* when `d > over_frac·C`.
    pub over_frac: f64,
    /// An observation counts as *under-loaded* when `d < under_frac·C`.
    pub under_frac: f64,
    /// Ring size for the recent average d̄ feeding φ3.
    pub recent_window: usize,
    /// Base gains (g1 for σ1, g2 for σ2).
    pub sigma_base: (f64, f64),
    /// Variability coupling κ: σᵢ = gᵢ·(1 + κ·std(argument)). Zero
    /// disables the paper's "unsteady ⇒ larger steps" behaviour
    /// (ablation knob).
    pub sigma_variability: f64,
    /// Sliding window (in exceptions) for the downstream T1/T2 counts.
    pub exception_window: usize,
    /// Exceptions aged out of the window per adaptation round, so φ1(T1,T2)
    /// returns to 0 once the downstream stops complaining.
    pub exception_decay: usize,
    /// Parameter step per adaptation round, in increments, at |U| = 1.
    pub step_scale: f64,
    /// Signal combination policy.
    pub combine: CombinePolicy,
    /// Which adaptation policy decides each round (paper blend, AIMD or
    /// PID; see [`PolicyKind`]). Selectable per stage from the XML
    /// config via `<stage policy="..."/>`.
    pub policy: PolicyKind,
}

impl Default for AdaptationConfig {
    fn default() -> Self {
        AdaptationConfig {
            alpha: 0.8,
            window: 16,
            expected_len: 20.0,
            capacity: 100.0,
            weights: (0.2, 0.3, 0.5),
            lt1: -0.3,
            lt2: 0.3,
            over_frac: 0.4,
            under_frac: 0.1,
            recent_window: 8,
            sigma_base: (1.0, 0.6),
            sigma_variability: 1.0,
            exception_window: 32,
            exception_decay: 1,
            step_scale: 2.0,
            combine: CombinePolicy::MaxDemand,
            policy: PolicyKind::Paper,
        }
    }
}

impl AdaptationConfig {
    /// Default configuration with a different queue capacity (the most
    /// commonly varied constant), keeping D at 20% of C.
    pub fn with_capacity(capacity: f64) -> Self {
        AdaptationConfig { capacity, expected_len: capacity * 0.2, ..AdaptationConfig::default() }
    }

    /// Validate invariants; call once at deployment time.
    pub fn validate(&self) -> Result<(), CoreError> {
        let fail = |msg: String| Err(CoreError::InvalidParam(msg));
        if !(0.0 < self.alpha && self.alpha < 1.0) {
            return fail(format!("alpha must be in (0,1), got {}", self.alpha));
        }
        if self.window == 0 || self.recent_window == 0 {
            return fail("windows must be positive".into());
        }
        if self.capacity <= 0.0 || self.capacity.is_nan() {
            return fail(format!("capacity must be positive, got {}", self.capacity));
        }
        if !(0.0 < self.expected_len && self.expected_len < self.capacity) {
            return fail(format!(
                "expected_len must be in (0, capacity), got {} vs {}",
                self.expected_len, self.capacity
            ));
        }
        let (p1, p2, p3) = self.weights;
        if p1 < 0.0 || p2 < 0.0 || p3 < 0.0 || ((p1 + p2 + p3) - 1.0).abs() > 1e-9 {
            return fail(format!(
                "weights must be non-negative and sum to 1, got {:?}",
                self.weights
            ));
        }
        if self.lt1 >= self.lt2 || self.lt1 < -1.0 || self.lt2 > 1.0 {
            return fail(format!("need -1 ≤ LT1 < LT2 ≤ 1, got {} and {}", self.lt1, self.lt2));
        }
        if !(0.0 <= self.under_frac && self.under_frac < self.over_frac && self.over_frac <= 1.0) {
            return fail(format!(
                "need 0 ≤ under_frac < over_frac ≤ 1, got {} and {}",
                self.under_frac, self.over_frac
            ));
        }
        if self.sigma_base.0 <= 0.0 || self.sigma_base.1 <= 0.0 {
            return fail("sigma base gains must be positive".into());
        }
        if self.sigma_variability < 0.0 {
            return fail("sigma_variability must be non-negative".into());
        }
        if self.exception_window == 0 {
            return fail("exception_window must be positive".into());
        }
        if self.exception_decay == 0 {
            // A zero decay silently breaks the documented invariant that
            // φ1(T1,T2) returns to 0 once the downstream stops
            // complaining: stale exceptions would steer the parameter
            // forever.
            return fail("exception_decay must be positive".into());
        }
        if self.step_scale <= 0.0 || self.step_scale.is_nan() {
            return fail("step_scale must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        AdaptationConfig::default().validate().unwrap();
    }

    #[test]
    fn with_capacity_scales_expected_len() {
        let c = AdaptationConfig::with_capacity(500.0);
        c.validate().unwrap();
        assert_eq!(c.capacity, 500.0);
        assert_eq!(c.expected_len, 100.0);
    }

    #[test]
    fn bad_alpha_rejected() {
        for alpha in [0.0, 1.0, -0.5, 1.5] {
            let cfg = AdaptationConfig { alpha, ..Default::default() };
            assert!(cfg.validate().is_err(), "alpha={alpha} should fail");
        }
    }

    #[test]
    fn weights_must_sum_to_one() {
        let cfg = AdaptationConfig { weights: (0.5, 0.5, 0.5), ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg = AdaptationConfig { weights: (-0.2, 0.7, 0.5), ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn thresholds_must_be_ordered() {
        let cfg = AdaptationConfig { lt1: 0.5, lt2: 0.3, ..Default::default() };
        assert!(cfg.validate().is_err());
        let cfg = AdaptationConfig { lt1: -2.0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn load_fractions_must_be_ordered() {
        let cfg = AdaptationConfig { over_frac: 0.05, under_frac: 0.1, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn expected_len_must_be_below_capacity() {
        let cfg = AdaptationConfig { expected_len: 200.0, capacity: 100.0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_step_scale_rejected() {
        let cfg = AdaptationConfig { step_scale: 0.0, ..Default::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_exception_decay_rejected() {
        let cfg = AdaptationConfig { exception_decay: 0, ..Default::default() };
        assert!(cfg.validate().is_err(), "decay 0 would pin phi1 forever");
    }
}

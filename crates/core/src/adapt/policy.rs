//! Pluggable adaptation policies.
//!
//! The paper hard-codes one parameter-adjustment rule (§4.2). Follow-up
//! work — Jacques-Silva et al., *User-defined Runtime Adaptation
//! Routines for Stream Processing* — argues the rule should be a
//! user-replaceable routine, because different applications want very
//! different trade-offs between convergence speed, oscillation and
//! deadline safety. This module is that seam: [`AdaptPolicy`] is the
//! decision kernel of one adaptation round, and
//! [`super::ParamController`] hosts whichever implementation the stage's
//! [`super::AdaptationConfig`] names via [`PolicyKind`].
//!
//! The controller owns everything *around* the decision — the exception
//! window, round counting, the unquantized internal value, clamping and
//! quantization — so a policy only answers one question per round: given
//! the normalized own-load signal, the downstream exception balance and
//! the parameter declaration, where should the raw value move?
//!
//! Three implementations ship:
//!
//! * [`PaperPolicy`] — the paper's φ/σ blend, verbatim from PR 1
//!   (variability-inflated gains, max-demand or additive combination).
//!   This is the default; every pre-existing run is bit-identical.
//! * [`AimdPolicy`] — additive-increase/multiplicative-decrease: probe
//!   toward accuracy one increment at a time, halve the accuracy
//!   headroom on stress. TCP's congestion rule, transplanted.
//! * [`PidPolicy`] — a textbook PID loop on the combined stress signal,
//!   with anti-windup clamping on the integral term.

use super::config::{AdaptationConfig, CombinePolicy};
use crate::param::AdjustmentParameter;
use crate::CoreError;
use gates_sim::stats::RingStat;

/// What one adaptation round feeds a policy. All signals are normalized:
/// `dn` and `downstream_phi` live in `[-1, 1]`, positive = stressed.
#[derive(Debug, Clone, Copy)]
pub struct PolicyInput {
    /// The un-normalized long-term queue factor d̃ (diagnostics only;
    /// policies should prefer `dn`).
    pub d_tilde: f64,
    /// d̃ normalized by queue capacity, clamped to [−1, 1].
    pub dn: f64,
    /// Downstream exception balance φ1(T1, T2) over the sliding window.
    pub downstream_phi: f64,
    /// True when the downstream exception window is empty — no recent
    /// complaints either way, so `downstream_phi` is vacuous.
    pub window_empty: bool,
    /// Current raw (unquantized) parameter value.
    pub value: f64,
}

/// What a policy decided: the new raw value plus the gains it applied
/// (recorded in the flight-recorder [`crate::trace::AdaptRound`], so an
/// A-B diff can see *why* two policies diverged, not just where).
#[derive(Debug, Clone, Copy)]
pub struct PolicyDecision {
    /// New raw value. The controller clamps it to `[min, max]` and
    /// quantizes the reported suggestion; policies may return values
    /// outside the bounds.
    pub raw_value: f64,
    /// Gain applied to the own-load signal this round (diagnostic).
    pub sigma1: f64,
    /// Gain applied to the downstream signal this round (diagnostic).
    pub sigma2: f64,
}

/// The decision kernel of one adaptation round.
///
/// Implementations may keep state (signal histories, integral terms) but
/// must be deterministic: the same sequence of inputs must produce the
/// same sequence of decisions, because the record/replay harness diffs
/// adaptation-round traces bit-for-bit.
pub trait AdaptPolicy: Send + std::fmt::Debug {
    /// Stable lowercase name, used in traces, XML configs and the wire
    /// protocol.
    fn name(&self) -> &'static str;

    /// Compute the round's decision.
    fn round(
        &mut self,
        cfg: &AdaptationConfig,
        spec: &AdjustmentParameter,
        input: &PolicyInput,
    ) -> PolicyDecision;
}

/// Selector for the shipped policies; lives in [`AdaptationConfig`] and
/// travels per stage through the XML config (`<stage policy="aimd"/>`),
/// the launcher, and the distributed `Assign` message.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's §4.2 blend ([`PaperPolicy`]). Default.
    #[default]
    Paper,
    /// Additive-increase / multiplicative-decrease ([`AimdPolicy`]).
    Aimd,
    /// Proportional-integral-derivative ([`PidPolicy`]).
    Pid,
}

impl PolicyKind {
    /// Stable lowercase name (inverse of [`PolicyKind::parse`]).
    pub fn as_str(self) -> &'static str {
        match self {
            PolicyKind::Paper => "paper",
            PolicyKind::Aimd => "aimd",
            PolicyKind::Pid => "pid",
        }
    }

    /// Parse a policy name from config/wire text.
    pub fn parse(s: &str) -> Result<Self, CoreError> {
        match s {
            "paper" => Ok(PolicyKind::Paper),
            "aimd" => Ok(PolicyKind::Aimd),
            "pid" => Ok(PolicyKind::Pid),
            other => Err(CoreError::InvalidParam(format!(
                "unknown adaptation policy {other:?} (expected paper, aimd or pid)"
            ))),
        }
    }

    /// All shipped kinds, for sweeps and property tests.
    pub fn all() -> [PolicyKind; 3] {
        [PolicyKind::Paper, PolicyKind::Aimd, PolicyKind::Pid]
    }

    /// Instantiate a fresh policy of this kind.
    pub fn build(self, cfg: &AdaptationConfig) -> Box<dyn AdaptPolicy> {
        match self {
            PolicyKind::Paper => Box::new(PaperPolicy::new(cfg)),
            PolicyKind::Aimd => Box::new(AimdPolicy::new()),
            PolicyKind::Pid => Box::new(PidPolicy::new()),
        }
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The paper's §4.2 rule: speed-up demand `U` from the σ-scaled own and
/// downstream signals, stepped through the parameter's declared
/// direction. Extracted verbatim from the original `ParamController`.
#[derive(Debug)]
pub struct PaperPolicy {
    /// History of the normalized own-load signal, for σ1's variability.
    dn_hist: RingStat,
    /// History of the downstream balance φ1(T1, T2), for σ2's.
    phi_hist: RingStat,
}

impl PaperPolicy {
    /// Fresh policy sized to `cfg`'s variability window.
    pub fn new(cfg: &AdaptationConfig) -> Self {
        PaperPolicy {
            dn_hist: RingStat::new(cfg.recent_window),
            phi_hist: RingStat::new(cfg.recent_window),
        }
    }
}

impl AdaptPolicy for PaperPolicy {
    fn name(&self) -> &'static str {
        "paper"
    }

    fn round(
        &mut self,
        cfg: &AdaptationConfig,
        spec: &AdjustmentParameter,
        input: &PolicyInput,
    ) -> PolicyDecision {
        self.dn_hist.push(input.dn);
        self.phi_hist.push(input.downstream_phi);

        // σ gains: base gain, inflated by the recent variability of the
        // signal ("if the values of d_B and φ1(T1,T2) are unsteady, we
        // want ΔP_B to be large").
        let (g1, g2) = cfg.sigma_base;
        let kappa = cfg.sigma_variability;
        let sigma1 = g1 * (1.0 + kappa * self.dn_hist.variability(1.0));
        let sigma2 = g2 * (1.0 + kappa * self.phi_hist.variability(1.0));

        // Speed-up demand U ∈ ~[-σmax, σmax]: positive ⇒ the pipeline is
        // stressed, make processing faster / volume smaller. A silent
        // downstream (empty exception window) defers to the local signal,
        // so an idle pipeline probes toward best accuracy — the paper's
        // stated goal — instead of freezing.
        let own = input.dn * sigma1;
        let down = input.downstream_phi * sigma2;
        let u = match cfg.combine {
            CombinePolicy::MaxDemand if input.window_empty => own,
            CombinePolicy::MaxDemand => own.max(down),
            CombinePolicy::PaperAdditive => own + down,
        };

        // Map the demand onto the raw parameter through its declared
        // direction, stepping in increments.
        let delta = spec.direction.sign() * u * cfg.step_scale * spec.increment;
        PolicyDecision { raw_value: input.value + delta, sigma1, sigma2 }
    }
}

/// AIMD: when neither end is stressed, probe toward the accuracy bound
/// one `step_scale`-sized additive step per round; the moment either
/// signal crosses its stress threshold, multiplicatively surrender half
/// the accuracy headroom. Converges as a sawtooth hugging the capacity
/// line — fast to back off, deliberate to recover, never stuck.
#[derive(Debug)]
pub struct AimdPolicy {
    /// Multiplicative-decrease factor β ∈ (0, 1): the fraction of the
    /// accuracy headroom kept on stress.
    pub beta: f64,
}

impl AimdPolicy {
    /// The classic β = 1/2 rule.
    pub fn new() -> Self {
        AimdPolicy { beta: 0.5 }
    }
}

impl Default for AimdPolicy {
    fn default() -> Self {
        AimdPolicy::new()
    }
}

impl AdaptPolicy for AimdPolicy {
    fn name(&self) -> &'static str {
        "aimd"
    }

    fn round(
        &mut self,
        cfg: &AdaptationConfig,
        spec: &AdjustmentParameter,
        input: &PolicyInput,
    ) -> PolicyDecision {
        // The "fast" bound is where processing is cheapest; accuracy
        // lies at the opposite bound (see `Direction::sign`).
        let fast = if spec.direction.sign() < 0.0 { spec.min } else { spec.max };
        let accuracy_sign = -spec.direction.sign();
        let stressed =
            input.dn > cfg.lt2 || (!input.window_empty && input.downstream_phi > cfg.lt2);
        let raw = if stressed {
            // Multiplicative decrease: keep β of the accuracy headroom.
            fast + (input.value - fast) * self.beta
        } else {
            // Additive increase: one step toward accuracy.
            input.value + accuracy_sign * cfg.step_scale * spec.increment
        };
        PolicyDecision {
            raw_value: raw,
            sigma1: if stressed { self.beta } else { 1.0 },
            sigma2: 1.0,
        }
    }
}

/// PID control on the combined stress signal, target 0 (a centered
/// queue with a quiet downstream). The proportional term mirrors the
/// paper's reaction, the integral term removes steady-state error the
/// paper's rule leaves (persistent mild stress), and the derivative term
/// damps the oscillation AIMD exhibits by design.
#[derive(Debug)]
pub struct PidPolicy {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Anti-windup clamp on the integral accumulator.
    pub integral_limit: f64,
    integral: f64,
    prev_error: Option<f64>,
}

impl PidPolicy {
    /// Conservative default gains (kp 1.0, ki 0.1, kd 0.5).
    pub fn new() -> Self {
        PidPolicy {
            kp: 1.0,
            ki: 0.1,
            kd: 0.5,
            integral_limit: 10.0,
            integral: 0.0,
            prev_error: None,
        }
    }
}

impl Default for PidPolicy {
    fn default() -> Self {
        PidPolicy::new()
    }
}

impl AdaptPolicy for PidPolicy {
    fn name(&self) -> &'static str {
        "pid"
    }

    fn round(
        &mut self,
        cfg: &AdaptationConfig,
        spec: &AdjustmentParameter,
        input: &PolicyInput,
    ) -> PolicyDecision {
        // Combined stress u ∈ [-1, 1], same silent-downstream rule as the
        // paper policy: no complaints ⇒ trust the local queue.
        let u = if input.window_empty { input.dn } else { input.dn.max(input.downstream_phi) };
        self.integral = (self.integral + u).clamp(-self.integral_limit, self.integral_limit);
        let derivative = u - self.prev_error.unwrap_or(u);
        self.prev_error = Some(u);
        let control = self.kp * u + self.ki * self.integral + self.kd * derivative;
        let delta = spec.direction.sign() * control * cfg.step_scale * spec.increment;
        PolicyDecision { raw_value: input.value + delta, sigma1: self.kp, sigma2: self.ki }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Direction;

    fn spec() -> AdjustmentParameter {
        AdjustmentParameter::new("p", 0.5, 0.01, 1.0, 0.01, Direction::IncreaseSlowsDown).unwrap()
    }

    fn input(dn: f64, phi: f64, empty: bool, value: f64) -> PolicyInput {
        PolicyInput { d_tilde: dn * 100.0, dn, downstream_phi: phi, window_empty: empty, value }
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in PolicyKind::all() {
            assert_eq!(PolicyKind::parse(kind.as_str()).unwrap(), kind);
            assert_eq!(format!("{kind}"), kind.as_str());
        }
        assert!(PolicyKind::parse("fancy").is_err());
        assert_eq!(PolicyKind::default(), PolicyKind::Paper);
    }

    #[test]
    fn built_policies_report_their_kind() {
        let cfg = AdaptationConfig::default();
        for kind in PolicyKind::all() {
            assert_eq!(kind.build(&cfg).name(), kind.as_str());
        }
    }

    #[test]
    fn aimd_backs_off_multiplicatively_and_probes_additively() {
        let cfg = AdaptationConfig::default();
        let s = spec();
        let mut p = AimdPolicy::new();
        // Stress: halve the headroom above min (the fast bound).
        let d = p.round(&cfg, &s, &input(0.9, 0.9, false, 0.81));
        assert!((d.raw_value - (0.01 + 0.8 * 0.5)).abs() < 1e-12, "got {}", d.raw_value);
        // Slack: one additive step toward max (the accuracy bound).
        let d = p.round(&cfg, &s, &input(-0.5, 0.0, true, 0.5));
        assert!((d.raw_value - (0.5 + 2.0 * 0.01)).abs() < 1e-12, "got {}", d.raw_value);
    }

    #[test]
    fn aimd_respects_speed_up_direction() {
        let cfg = AdaptationConfig::default();
        let s =
            AdjustmentParameter::new("decim", 10.0, 1.0, 100.0, 1.0, Direction::IncreaseSpeedsUp)
                .unwrap();
        let mut p = AimdPolicy::new();
        // Stress: move toward max (the fast bound for speeds-up params).
        let d = p.round(&cfg, &s, &input(0.9, 0.9, false, 10.0));
        assert!(d.raw_value > 10.0, "stress must raise a speeds-up parameter");
        // Slack: probe toward min (accuracy).
        let d = p.round(&cfg, &s, &input(-0.5, 0.0, true, 50.0));
        assert!(d.raw_value < 50.0, "slack must lower a speeds-up parameter");
    }

    #[test]
    fn pid_integral_removes_steady_state_pressure() {
        let cfg = AdaptationConfig::default();
        let s = spec();
        let mut p = PidPolicy::new();
        // Constant mild stress: the integral term grows the step.
        let first = 0.5 - p.round(&cfg, &s, &input(0.1, 0.0, true, 0.5)).raw_value;
        let mut v = 0.5;
        for _ in 0..20 {
            v = p.round(&cfg, &s, &input(0.1, 0.0, true, v)).raw_value;
        }
        let late = v;
        let later = p.round(&cfg, &s, &input(0.1, 0.0, true, late)).raw_value;
        assert!(late - later > first, "integral term must amplify persistent stress");
    }

    #[test]
    fn pid_integral_clamps() {
        let cfg = AdaptationConfig::default();
        let s = spec();
        let mut p = PidPolicy::new();
        for _ in 0..1_000 {
            p.round(&cfg, &s, &input(1.0, 1.0, false, 0.5));
        }
        assert!(p.integral <= p.integral_limit + 1e-9, "anti-windup clamp holds");
        // Recovery after saturation is bounded, not stuck for 1000 rounds.
        let mut quiet = 0;
        let mut v = 0.5;
        for _ in 0..200 {
            v = p.round(&cfg, &s, &input(-0.5, 0.0, true, v)).raw_value;
            quiet += 1;
            if v > 0.5 {
                break;
            }
        }
        assert!(quiet < 200, "integral unwinds in bounded time");
    }

    #[test]
    fn paper_policy_matches_legacy_formula_on_first_round() {
        // One round, no history: variability is 0, σ = base gains.
        let cfg = AdaptationConfig { sigma_variability: 0.0, ..Default::default() };
        let s = spec();
        let mut p = PaperPolicy::new(&cfg);
        let d = p.round(&cfg, &s, &input(0.5, 0.0, true, 0.5));
        // delta = sign(-1) * (0.5 * 1.0) * 2.0 * 0.01 = -0.01
        assert!((d.raw_value - 0.49).abs() < 1e-12, "got {}", d.raw_value);
        assert_eq!(d.sigma1, 1.0);
        assert_eq!(d.sigma2, 0.6);
    }
}

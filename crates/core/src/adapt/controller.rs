//! Parameter adjustment: the "Parameter Adjustment" half of paper §4.2.

use std::collections::VecDeque;

use super::config::AdaptationConfig;
use super::factors::phi1;
use super::load::LoadException;
use super::policy::{AdaptPolicy, PolicyInput};
use crate::param::AdjustmentParameter;

/// Everything a single adaptation round computed, kept for the flight
/// recorder: the inputs the controller saw and the gains it derived.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AdaptOutcome {
    /// The un-normalized d̃ the round was given.
    pub d_tilde: f64,
    /// d̃ normalized by queue capacity, clamped to [−1, 1].
    pub dn: f64,
    /// Downstream exception balance φ1(T1, T2) at round time.
    pub downstream_phi: f64,
    /// Gain σ1 applied to the own-load signal this round.
    pub sigma1: f64,
    /// Gain σ2 applied to the downstream signal this round.
    pub sigma2: f64,
    /// The quantized suggested value the round produced.
    pub suggested: f64,
}

/// Drives one adjustment parameter at the stage that owns it (server *B*
/// in the paper's exposition), using B's own load factor d̃ and the
/// exception stream reported by the downstream stage (server *C*).
///
/// The controller hosts the round bookkeeping — the exception window,
/// clamping, quantization, trajectories — and delegates the per-round
/// *decision* to its [`AdaptPolicy`] (the paper's blend by default; see
/// [`super::PolicyKind`]).
#[derive(Debug)]
pub struct ParamController {
    cfg: AdaptationConfig,
    spec: AdjustmentParameter,
    policy: Box<dyn AdaptPolicy>,
    value: f64,
    /// Recent downstream exceptions, +1 overload / −1 underload, capped at
    /// `exception_window` and aged by `exception_decay` per round.
    exceptions: VecDeque<i8>,
    rounds: u64,
    exceptions_received: (u64, u64),
    /// Trajectory of suggested values, one entry per round (for Figures
    /// 8 and 9, which plot exactly this).
    trajectory: Vec<f64>,
    /// What the most recent round computed (for the flight recorder).
    last_outcome: Option<AdaptOutcome>,
}

impl ParamController {
    /// Controller for `spec` under constants `cfg`, using the policy
    /// `cfg.policy` names.
    pub fn new(cfg: AdaptationConfig, spec: AdjustmentParameter) -> Self {
        let policy = cfg.policy.build(&cfg);
        ParamController::with_policy(cfg, spec, policy)
    }

    /// Controller with an explicit (possibly user-defined) policy.
    pub fn with_policy(
        cfg: AdaptationConfig,
        spec: AdjustmentParameter,
        policy: Box<dyn AdaptPolicy>,
    ) -> Self {
        debug_assert!(cfg.validate().is_ok());
        let value = spec.init;
        ParamController {
            cfg,
            spec,
            policy,
            value,
            exceptions: VecDeque::new(),
            rounds: 0,
            exceptions_received: (0, 0),
            trajectory: Vec::new(),
            last_outcome: None,
        }
    }

    /// Record an exception reported by the downstream stage.
    pub fn on_exception(&mut self, e: LoadException) {
        match e {
            LoadException::Overload => {
                self.exceptions_received.0 += 1;
                self.exceptions.push_back(1);
            }
            LoadException::Underload => {
                self.exceptions_received.1 += 1;
                self.exceptions.push_back(-1);
            }
        }
        while self.exceptions.len() > self.cfg.exception_window {
            self.exceptions.pop_front();
        }
    }

    /// Downstream exception balance φ1(T1, T2) over the sliding window.
    pub fn downstream_phi(&self) -> f64 {
        let t1 = self.exceptions.iter().filter(|&&e| e > 0).count() as u64;
        let t2 = self.exceptions.iter().filter(|&&e| e < 0).count() as u64;
        phi1(t1, t2)
    }

    /// Run one adaptation round given the owning stage's current d̃
    /// (un-normalized, in [−C, C]). Returns the new suggested value.
    pub fn adapt(&mut self, d_tilde: f64) -> f64 {
        self.rounds += 1;
        let dn = (d_tilde / self.cfg.capacity).clamp(-1.0, 1.0);
        let phi = self.downstream_phi();
        let input = PolicyInput {
            d_tilde,
            dn,
            downstream_phi: phi,
            window_empty: self.exceptions.is_empty(),
            value: self.value,
        };

        // The policy proposes; the *internal* value stays unquantized so
        // persistent small pressure accumulates across rounds instead of
        // being swallowed by rounding (a sub-increment step would
        // otherwise round back forever); only the reported suggestion
        // snaps to the increment grid.
        let decision = self.policy.round(&self.cfg, &self.spec, &input);
        self.value = decision.raw_value.clamp(self.spec.min, self.spec.max);

        // Age the exception window so φ1(T1,T2) returns to 0 once the
        // downstream stops complaining. The decay must stay *linear* and
        // run every round: exceptions pause whenever the downstream's d̃
        // dips back inside the healthy band, so convergence depends on
        // the window remembering sparse-but-sustained pressure across
        // quiet rounds (an earlier proportional-decay variant forgot it
        // and comp-steer drifted above its sustainable rate). The
        // invariant that the window actually drains is enforced at
        // deployment: `AdaptationConfig::validate` rejects
        // `exception_decay == 0`, which silently froze φ1 forever.
        for _ in 0..self.cfg.exception_decay {
            if self.exceptions.pop_front().is_none() {
                break;
            }
        }

        let reported = self.spec.quantize(self.value);
        self.trajectory.push(reported);
        self.last_outcome = Some(AdaptOutcome {
            d_tilde,
            dn,
            downstream_phi: phi,
            sigma1: decision.sigma1,
            sigma2: decision.sigma2,
            suggested: reported,
        });
        reported
    }

    /// What the most recent [`ParamController::adapt`] round computed,
    /// or `None` before the first round. This is the flight recorder's
    /// window into the otherwise-internal σ gains.
    pub fn last_outcome(&self) -> Option<AdaptOutcome> {
        self.last_outcome
    }

    /// Name of the policy deciding the rounds (for traces and A-B runs).
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Current suggested value (quantized to the increment grid).
    pub fn value(&self) -> f64 {
        self.spec.quantize(self.value)
    }

    /// The unquantized internal value (for diagnostics/ablation).
    pub fn raw_value(&self) -> f64 {
        self.value
    }

    /// The parameter declaration.
    pub fn spec(&self) -> &AdjustmentParameter {
        &self.spec
    }

    /// Adaptation rounds run.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// `(overloads, underloads)` received from downstream.
    pub fn exceptions_received(&self) -> (u64, u64) {
        self.exceptions_received
    }

    /// Value after each round (the paper's Figures 8/9 series).
    pub fn trajectory(&self) -> &[f64] {
        &self.trajectory
    }
}

#[cfg(test)]
mod tests {
    use super::super::config::CombinePolicy;
    use super::super::policy::PolicyKind;
    use super::*;
    use crate::param::Direction;

    fn sampling_param() -> AdjustmentParameter {
        AdjustmentParameter::new("p", 0.13, 0.01, 1.0, 0.01, Direction::IncreaseSlowsDown).unwrap()
    }

    fn controller() -> ParamController {
        ParamController::new(AdaptationConfig::default(), sampling_param())
    }

    #[test]
    fn downstream_overload_decreases_volume_parameter() {
        let mut c = controller();
        for _ in 0..20 {
            c.on_exception(LoadException::Overload);
            c.adapt(0.0);
        }
        assert!(c.value() < 0.13, "overloaded downstream must shrink sampling rate");
    }

    #[test]
    fn slack_everywhere_increases_volume_parameter() {
        let mut c = controller();
        for _ in 0..300 {
            c.on_exception(LoadException::Underload);
            c.adapt(-80.0); // own queue nearly empty
        }
        assert!((c.value() - 1.0).abs() < 1e-9, "idle pipeline must converge to max accuracy");
    }

    #[test]
    fn own_queue_growth_decreases_volume_even_if_downstream_idle() {
        // The Figure 9 scenario: the outgoing link saturates, the sender's
        // queue grows, while the starved downstream reports underload.
        let mut c = controller();
        for _ in 0..20 {
            c.on_exception(LoadException::Underload);
            c.adapt(90.0); // own queue nearly full
        }
        assert!(c.value() < 0.13, "own backlog must win over downstream slack");
    }

    #[test]
    fn additive_policy_lets_signals_cancel() {
        // Same mixed scenario under the paper's additive Equation 4: the
        // signals partially cancel, producing a much weaker (or wrong-
        // direction) response. This is the ablation's key observation.
        let cfg = AdaptationConfig {
            combine: CombinePolicy::PaperAdditive,
            sigma_base: (1.0, 1.0),
            sigma_variability: 0.0,
            ..Default::default()
        };
        let mut additive = ParamController::new(cfg.clone(), sampling_param());
        let max_cfg = AdaptationConfig { combine: CombinePolicy::MaxDemand, ..cfg };
        let mut maxd = ParamController::new(max_cfg, sampling_param());
        for _ in 0..20 {
            additive.on_exception(LoadException::Underload);
            maxd.on_exception(LoadException::Underload);
            additive.adapt(90.0);
            maxd.adapt(90.0);
        }
        assert!(
            maxd.value() < additive.value(),
            "max-demand reacts harder to the bottleneck: {} vs {}",
            maxd.value(),
            additive.value()
        );
    }

    #[test]
    fn direction_flips_response_for_speed_parameters() {
        // A parameter whose increase speeds processing up (e.g. a
        // decimation factor) must move the other way.
        let spec =
            AdjustmentParameter::new("decim", 10.0, 1.0, 100.0, 1.0, Direction::IncreaseSpeedsUp)
                .unwrap();
        let mut c = ParamController::new(AdaptationConfig::default(), spec);
        for _ in 0..20 {
            c.on_exception(LoadException::Overload);
            c.adapt(50.0);
        }
        assert!(c.value() > 10.0, "stress must raise a speeds-up parameter");
    }

    #[test]
    fn value_respects_declared_bounds() {
        let mut c = controller();
        for _ in 0..500 {
            c.on_exception(LoadException::Overload);
            c.adapt(100.0);
        }
        assert!((c.value() - 0.01).abs() < 1e-9, "clamped at min");
        for _ in 0..2000 {
            c.on_exception(LoadException::Underload);
            c.adapt(-100.0);
        }
        assert!((c.value() - 1.0).abs() < 1e-9, "clamped at max");
    }

    #[test]
    fn exception_window_ages_out() {
        let mut c = controller();
        for _ in 0..10 {
            c.on_exception(LoadException::Overload);
        }
        assert!(c.downstream_phi() > 0.99);
        // Rounds with no new exceptions age the window away.
        for _ in 0..15 {
            c.adapt(0.0);
        }
        assert_eq!(c.downstream_phi(), 0.0, "stale exceptions must decay");
    }

    #[test]
    fn phi1_returns_to_zero_after_quiescence() {
        // Regression for the decay drift: the docs promise φ1 returns to
        // 0 once the downstream stops complaining, but nothing enforced
        // it — `exception_decay: 0` froze the window forever (now
        // rejected by `AdaptationConfig::validate`). A between-rounds
        // burst (exceptions arrive via `on_exception` outside `adapt`)
        // must cap at `exception_window` and then drain within
        // `exception_window / exception_decay` quiet rounds.
        let mut c = controller();
        for _ in 0..64 {
            c.on_exception(LoadException::Overload);
        }
        assert!(c.downstream_phi() > 0.99);
        let bound = {
            let cfg = AdaptationConfig::default();
            cfg.exception_window.div_ceil(cfg.exception_decay)
        };
        let mut rounds = 0;
        while c.downstream_phi() != 0.0 {
            c.adapt(0.0);
            rounds += 1;
            assert!(
                rounds <= bound,
                "phi1 stuck at {} after {rounds} quiet rounds ({} stale entries)",
                c.downstream_phi(),
                c.exceptions.len()
            );
        }
        // And with the window empty, the parameter stops moving.
        let settled = c.value();
        for _ in 0..10 {
            c.adapt(0.0);
        }
        assert_eq!(c.value(), settled, "no ghost pressure once quiesced");
    }

    #[test]
    fn neutral_inputs_hold_steady() {
        let mut c = controller();
        let before = c.value();
        for _ in 0..50 {
            c.adapt(0.0);
        }
        assert!((c.value() - before).abs() < 1e-9, "no signals ⇒ no movement");
    }

    #[test]
    fn trajectory_records_every_round() {
        let mut c = controller();
        for _ in 0..7 {
            c.adapt(0.0);
        }
        assert_eq!(c.trajectory().len(), 7);
        assert_eq!(c.rounds(), 7);
    }

    #[test]
    fn variability_inflates_step_size() {
        let steady_cfg = AdaptationConfig { sigma_variability: 0.0, ..Default::default() };
        let jumpy_cfg = AdaptationConfig { sigma_variability: 4.0, ..Default::default() };
        let run = |cfg: AdaptationConfig| {
            // Mid-range parameter so clamping can't mask the step size.
            let spec =
                AdjustmentParameter::new("p", 0.5, 0.0, 1.0, 0.01, Direction::IncreaseSlowsDown)
                    .unwrap();
            let mut c = ParamController::new(cfg, spec);
            // Mild oscillation primes the variability estimate without
            // pushing the value near a bound.
            for i in 0..8 {
                let d = if i % 2 == 0 { 30.0 } else { -30.0 };
                c.adapt(d);
            }
            let before = c.value();
            c.adapt(90.0);
            (before - c.value()).abs()
        };
        let steady_step = run(steady_cfg);
        let jumpy_step = run(jumpy_cfg);
        assert!(
            jumpy_step > steady_step,
            "unsteady signals must take larger steps: {jumpy_step} vs {steady_step}"
        );
    }

    #[test]
    fn last_outcome_exposes_round_internals() {
        let mut c = controller();
        assert!(c.last_outcome().is_none(), "no outcome before the first round");
        c.on_exception(LoadException::Overload);
        let suggested = c.adapt(50.0);
        let o = c.last_outcome().expect("round ran");
        assert_eq!(o.d_tilde, 50.0);
        assert!((o.dn - 0.5).abs() < 1e-9, "dn normalizes by capacity");
        assert!(o.downstream_phi > 0.0, "overload window pushes phi positive");
        assert!(o.sigma1 > 0.0 && o.sigma2 > 0.0);
        assert_eq!(o.suggested, suggested);
    }

    #[test]
    fn exception_counters_track_kinds() {
        let mut c = controller();
        c.on_exception(LoadException::Overload);
        c.on_exception(LoadException::Overload);
        c.on_exception(LoadException::Underload);
        assert_eq!(c.exceptions_received(), (2, 1));
    }

    #[test]
    fn config_selects_the_policy() {
        for kind in PolicyKind::all() {
            let cfg = AdaptationConfig { policy: kind, ..Default::default() };
            let c = ParamController::new(cfg, sampling_param());
            assert_eq!(c.policy_name(), kind.as_str());
        }
    }

    #[test]
    fn alternative_policies_still_converge_directionally() {
        // Not a precision claim — just that every shipped policy shrinks
        // the parameter under sustained stress and grows it under slack.
        for kind in PolicyKind::all() {
            let cfg = AdaptationConfig { policy: kind, ..Default::default() };
            let mut c = ParamController::new(cfg.clone(), sampling_param());
            for _ in 0..30 {
                c.on_exception(LoadException::Overload);
                c.adapt(60.0);
            }
            assert!(c.value() < 0.13, "{kind}: stress must shrink the parameter");
            let mut c = ParamController::new(cfg, sampling_param());
            for _ in 0..300 {
                c.adapt(-60.0);
            }
            assert!(c.value() > 0.13, "{kind}: slack must grow the parameter");
        }
    }
}

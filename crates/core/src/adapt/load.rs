//! Per-queue load evaluation: the "Evaluating Long-Term Load" half of
//! paper §4.2.

use std::collections::VecDeque;

use gates_sim::stats::{Ewma, RingStat, Welford};

use super::config::AdaptationConfig;
use super::factors::{phi1, phi2, phi3};

/// An exception a stage reports to its *upstream* neighbour when its
/// long-term load factor d̃ leaves `[LT1·C, LT2·C]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadException {
    /// d̃ above LT2·C — the reporter cannot keep up; send less / slower.
    Overload,
    /// d̃ below LT1·C — the reporter is starved; more data is affordable.
    Underload,
}

/// Observes one stage's input-queue length over time and maintains the
/// load factors and d̃.
#[derive(Debug, Clone)]
pub struct LoadTracker {
    cfg: AdaptationConfig,
    /// Lifetime over-load observation count (paper t1).
    t1: u64,
    /// Lifetime under-load observation count (paper t2).
    t2: u64,
    /// Classification of the last `W` observations: +1 over-loaded,
    /// −1 under-loaded, 0 neutral (neutral entries age the window; see
    /// the note in [`LoadTracker::observe`]).
    events: VecDeque<i8>,
    /// Recent queue lengths for d̄.
    recent: RingStat,
    /// The long-term average queue size factor d̃ ∈ [−C, C].
    d_tilde: Ewma,
    /// All observed queue lengths (for reports).
    all: Welford,
    observations: u64,
    overloads_reported: u64,
    underloads_reported: u64,
}

impl LoadTracker {
    /// Tracker with the given constants (validate the config first at
    /// deployment; this asserts only in debug builds).
    pub fn new(cfg: AdaptationConfig) -> Self {
        debug_assert!(cfg.validate().is_ok());
        let recent = RingStat::new(cfg.recent_window);
        let d_tilde = Ewma::new(cfg.alpha);
        LoadTracker {
            cfg,
            t1: 0,
            t2: 0,
            events: VecDeque::new(),
            recent,
            d_tilde,
            all: Welford::new(),
            observations: 0,
            overloads_reported: 0,
            underloads_reported: 0,
        }
    }

    /// Record an instantaneous queue length `d` (in packets); returns the
    /// exception to report upstream, if d̃ has left the allowed interval.
    pub fn observe(&mut self, d: f64) -> Option<LoadException> {
        self.observations += 1;
        self.all.push(d);
        self.recent.push(d);

        // Classify the instantaneous observation. Neutral observations
        // push a 0 so the φ2 window ages under steady load — the paper's
        // wording ("the last W times the system was observed to be over
        // or under-loaded") would freeze φ2 at its last extreme forever
        // once the queue settles, which contradicts the recovery its own
        // experiments show. Documented deviation.
        if d > self.cfg.over_frac * self.cfg.capacity {
            self.t1 += 1;
            self.push_event(1);
        } else if d < self.cfg.under_frac * self.cfg.capacity {
            self.t2 += 1;
            self.push_event(-1);
        } else {
            self.push_event(0);
        }

        // Blend the three factors and smooth (paper's d̃ equation).
        let (p1, p2, p3) = self.cfg.weights;
        let blend = p1 * self.phi1() + p2 * self.phi2() + p3 * self.phi3();
        let target = (blend * self.cfg.capacity).clamp(-self.cfg.capacity, self.cfg.capacity);
        self.d_tilde.update(target);

        let d_tilde = self.d_tilde();
        if d_tilde > self.cfg.lt2 * self.cfg.capacity {
            self.overloads_reported += 1;
            Some(LoadException::Overload)
        } else if d_tilde < self.cfg.lt1 * self.cfg.capacity {
            self.underloads_reported += 1;
            Some(LoadException::Underload)
        } else {
            None
        }
    }

    fn push_event(&mut self, e: i8) {
        self.events.push_back(e);
        while self.events.len() > self.cfg.window {
            self.events.pop_front();
        }
    }

    /// Lifetime balance φ1(t1, t2).
    pub fn phi1(&self) -> f64 {
        phi1(self.t1, self.t2)
    }

    /// Windowed balance φ2(w).
    pub fn phi2(&self) -> f64 {
        let w: i64 = self.events.iter().map(|&e| e as i64).sum();
        phi2(w, self.cfg.window)
    }

    /// Recent-average factor φ3(d̄).
    pub fn phi3(&self) -> f64 {
        phi3(self.recent.mean(), self.cfg.expected_len, self.cfg.capacity)
    }

    /// The long-term average queue size factor d̃ ∈ [−C, C].
    pub fn d_tilde(&self) -> f64 {
        self.d_tilde.value()
    }

    /// d̃ normalized by capacity, in [−1, 1].
    pub fn d_tilde_norm(&self) -> f64 {
        self.d_tilde() / self.cfg.capacity
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdaptationConfig {
        &self.cfg
    }

    /// Total observations recorded.
    pub fn observations(&self) -> u64 {
        self.observations
    }

    /// `(t1, t2)` lifetime over/under counts.
    pub fn lifetime_counts(&self) -> (u64, u64) {
        (self.t1, self.t2)
    }

    /// `(overloads, underloads)` exceptions this tracker has emitted.
    pub fn exceptions_reported(&self) -> (u64, u64) {
        (self.overloads_reported, self.underloads_reported)
    }

    /// Whole-run queue-length statistics.
    pub fn queue_stats(&self) -> &Welford {
        &self.all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AdaptationConfig {
        AdaptationConfig::default() // C=100, D=20, over 40, under 10
    }

    #[test]
    fn saturated_queue_drives_overload_exceptions() {
        let mut lt = LoadTracker::new(cfg());
        let mut saw_overload = false;
        for _ in 0..100 {
            if lt.observe(95.0) == Some(LoadException::Overload) {
                saw_overload = true;
            }
        }
        assert!(saw_overload, "persistently full queue must overload");
        assert!(lt.d_tilde() > 0.3 * 100.0);
        assert_eq!(lt.phi1(), 1.0);
        assert!(lt.phi2() > 0.99);
        assert!(lt.phi3() > 0.9);
    }

    #[test]
    fn empty_queue_drives_underload_exceptions() {
        let mut lt = LoadTracker::new(cfg());
        let mut saw_underload = false;
        for _ in 0..100 {
            if lt.observe(0.0) == Some(LoadException::Underload) {
                saw_underload = true;
            }
        }
        assert!(saw_underload);
        assert!(lt.d_tilde() < -0.3 * 100.0);
        assert_eq!(lt.phi1(), -1.0);
    }

    #[test]
    fn queue_at_expected_length_is_quiet() {
        let mut lt = LoadTracker::new(cfg());
        for _ in 0..200 {
            assert_eq!(lt.observe(20.0), None, "expected-length queue must not alarm");
        }
        assert!(lt.d_tilde().abs() < 10.0);
        // 20 is neither over (>60) nor under (<10): no load events at all.
        assert_eq!(lt.lifetime_counts(), (0, 0));
        assert_eq!(lt.phi2(), 0.0);
    }

    #[test]
    fn recovery_after_transient_overload() {
        let mut lt = LoadTracker::new(cfg());
        for _ in 0..50 {
            lt.observe(95.0);
        }
        assert!(lt.d_tilde() > 0.0);
        // Long calm period: recent factors recover; φ1 decays only slowly
        // (lifetime counts), which is exactly the paper's intent.
        let mut last = None;
        for _ in 0..300 {
            last = lt.observe(20.0);
        }
        assert_eq!(last, None, "exceptions must stop after recovery");
        assert!(lt.phi3().abs() < 0.05);
        assert_eq!(lt.phi2(), 0.0, "no over/under events in recent window");
    }

    #[test]
    fn alpha_controls_reaction_speed() {
        let slow_cfg = AdaptationConfig { alpha: 0.99, ..cfg() };
        let fast_cfg = AdaptationConfig { alpha: 0.5, ..cfg() };
        let mut slow = LoadTracker::new(slow_cfg);
        let mut fast = LoadTracker::new(fast_cfg);
        for _ in 0..10 {
            slow.observe(95.0);
            fast.observe(95.0);
        }
        assert!(
            fast.d_tilde() > slow.d_tilde(),
            "smaller alpha reacts faster: {} vs {}",
            fast.d_tilde(),
            slow.d_tilde()
        );
    }

    #[test]
    fn d_tilde_stays_in_bounds() {
        let mut lt = LoadTracker::new(cfg());
        for i in 0..1000 {
            let d = if i % 3 == 0 { 100.0 } else { 0.0 };
            lt.observe(d);
            let v = lt.d_tilde();
            assert!((-100.0..=100.0).contains(&v), "d̃ out of bounds: {v}");
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut lt = LoadTracker::new(cfg());
        for d in [0.0, 100.0, 50.0] {
            lt.observe(d);
        }
        assert_eq!(lt.observations(), 3);
        assert_eq!(lt.queue_stats().count(), 3);
        assert!((lt.queue_stats().mean() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn window_limits_event_memory() {
        let mut lt = LoadTracker::new(AdaptationConfig { window: 4, ..cfg() });
        for _ in 0..50 {
            lt.observe(95.0); // fill with overloads
        }
        // Four underloads flush the entire window.
        for _ in 0..4 {
            lt.observe(0.0);
        }
        assert!(lt.phi2() < 0.0, "window should now be all underloads");
    }
}

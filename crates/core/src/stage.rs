//! The developer-facing stage API.
//!
//! A GATES application "comprises a set of stages"; each stage "accepts
//! data from one or more input streams and outputs zero or more streams"
//! (paper §3.1). Developers implement [`StreamProcessor`] — the Rust
//! equivalent of the paper's Java `StreamProcessor` interface — and
//! interact with the middleware through [`StageApi`], which carries the
//! paper's `specifyPara` / `getSuggestedValue` self-adaptation surface.

use gates_sim::{SimDuration, SimTime};

use crate::packet::Packet;
use crate::param::{AdjustmentParameter, Direction, ParamId, ParamTable};
use crate::{CoreError, Result};

/// Result of polling a source stage for data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// The source emitted zero or more packets and wants to be polled
    /// again after `next_poll` (this models the stream's arrival rate).
    Continue {
        /// Delay until the next poll.
        next_poll: SimDuration,
    },
    /// The stream has ended; the engine propagates end-of-stream.
    Done,
}

/// Per-packet processing cost, used by the executors to model service
/// time. Costs compose: `per_packet + records·per_record + bytes·per_byte`,
/// divided by the hosting node's speed factor.
///
/// This is the knob the comp-steer experiments turn: the paper's
/// "time required for post-processing was 1, 5, 8, 10, and 20 ms/byte"
/// is `CostModel::per_byte(0.001)` … `per_byte(0.020)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed seconds per packet.
    pub per_packet_s: f64,
    /// Seconds per logical record.
    pub per_record_s: f64,
    /// Seconds per payload byte.
    pub per_byte_s: f64,
}

impl CostModel {
    /// Free processing (pure forwarding).
    pub const fn zero() -> Self {
        CostModel { per_packet_s: 0.0, per_record_s: 0.0, per_byte_s: 0.0 }
    }

    /// Only a fixed per-packet cost.
    pub const fn per_packet(seconds: f64) -> Self {
        CostModel { per_packet_s: seconds, per_record_s: 0.0, per_byte_s: 0.0 }
    }

    /// Only a per-record cost.
    pub const fn per_record(seconds: f64) -> Self {
        CostModel { per_packet_s: 0.0, per_record_s: seconds, per_byte_s: 0.0 }
    }

    /// Only a per-byte cost (the comp-steer analysis model).
    pub const fn per_byte(seconds: f64) -> Self {
        CostModel { per_packet_s: 0.0, per_record_s: 0.0, per_byte_s: seconds }
    }

    /// Service time for `packet` on a node with the given speed factor
    /// (1.0 = reference speed; 2.0 = twice as fast).
    pub fn service_time(&self, packet: &Packet, speed: f64) -> SimDuration {
        assert!(speed > 0.0, "node speed must be positive");
        let secs = (self.per_packet_s
            + self.per_record_s * packet.records as f64
            + self.per_byte_s * packet.payload.len() as f64)
            / speed;
        SimDuration::from_secs_f64(secs)
    }

    /// True when all components are zero.
    pub fn is_zero(&self) -> bool {
        self.per_packet_s == 0.0 && self.per_record_s == 0.0 && self.per_byte_s == 0.0
    }
}

/// A stage's processing logic, written by the application developer.
///
/// All methods receive a [`StageApi`] for emitting packets, reading
/// suggested parameter values, and charging explicit processing cost.
pub trait StreamProcessor: 'static {
    /// Called once before any data flows. Declare adjustment parameters
    /// here with [`StageApi::specify_para`].
    fn on_start(&mut self, _api: &mut StageApi) {}

    /// Handle one input packet (never called with end-of-stream markers).
    fn process(&mut self, packet: Packet, api: &mut StageApi);

    /// For source stages (no inbound edges): produce data and say when to
    /// be polled next. The default marks the source as immediately done.
    fn poll_generate(&mut self, _api: &mut StageApi) -> SourceStatus {
        SourceStatus::Done
    }

    /// Called once after every input stream has delivered end-of-stream.
    /// Flush any pending output here; the engine then forwards EOS.
    fn on_eos(&mut self, _api: &mut StageApi) {}

    /// Serialize this stage's replayable state for failover.
    ///
    /// The distributed runtime calls this periodically (every
    /// `checkpoint_every` input packets) and ships the bytes to the
    /// coordinator; when the hosting worker dies, a replacement stage is
    /// started from the last snapshot via [`StreamProcessor::restore`].
    ///
    /// The default returns an empty vector, which the runtime treats as
    /// "nothing to checkpoint": the replacement stage restarts fresh.
    ///
    /// Recovery is **at-least-once**: each checkpoint also records the
    /// stage's per-edge input cursors, upstream senders retain sent
    /// frames in acked replay buffers until a checkpoint covers them,
    /// and a restored stage is re-fed exactly the frames between its
    /// snapshot and the failure (receivers deduplicate by edge sequence
    /// number, so reconnect replay and chaos duplicates never
    /// double-deliver). A packet may still be *processed* more than once
    /// across a crash — snapshot state must therefore be self-contained,
    /// with no external side effects that a replayed packet would
    /// double-apply. A stage that skips checkpointing restarts fresh and
    /// opts out of replay coverage for its own inputs.
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Rebuild state from bytes produced by [`StreamProcessor::snapshot`].
    ///
    /// Called at most once, after [`StreamProcessor::on_start`] and
    /// before any data flows, on a replacement stage instance during
    /// failover. The default ignores the state (fresh restart).
    fn restore(&mut self, _state: &[u8]) {}
}

/// The middleware surface a processor sees during a callback.
///
/// Owned by the executor; `now` is refreshed before every callback and
/// emitted packets are drained afterwards.
#[derive(Debug, Default)]
pub struct StageApi {
    now: SimTime,
    params: ParamTable,
    emitted: Vec<(Option<usize>, Packet)>,
    extra_cost: SimDuration,
    eos_requested: bool,
}

impl StageApi {
    /// A fresh API (executors create one per stage instance).
    pub fn new() -> Self {
        StageApi::default()
    }

    /// Current virtual (or wall-mapped) time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Declare an adjustment parameter. Mirrors the paper's
    /// `specifyPara(init, max, min, increment, decrease)`; prefer the
    /// typed [`AdjustmentParameter`] + [`Direction`] form.
    pub fn specify_para(
        &mut self,
        name: &str,
        init: f64,
        min: f64,
        max: f64,
        increment: f64,
        direction: Direction,
    ) -> Result<ParamId> {
        let spec = AdjustmentParameter::new(name, init, min, max, increment, direction)?;
        Ok(self.params.register(spec))
    }

    /// The current middleware-suggested value for a declared parameter
    /// (the paper's `getSuggestedValue()`).
    pub fn suggested_value(&self, id: ParamId) -> Result<f64> {
        self.params.suggested(id)
    }

    /// Emit a packet downstream on **every** out edge (broadcast). Its
    /// `created_at` is stamped with the current time if unset.
    pub fn emit(&mut self, mut packet: Packet) {
        if packet.created_at == SimTime::ZERO {
            packet.created_at = self.now;
        }
        self.emitted.push((None, packet));
    }

    /// Emit a packet on a single out edge, identified by its 0-based
    /// *port* — the position of the edge among this stage's outgoing
    /// connections in topology declaration order. Lets a stage split a
    /// stream (e.g. route by key) instead of broadcasting. Emitting to a
    /// port the stage does not have silently drops the packet (executors
    /// debug-assert on it).
    pub fn emit_to(&mut self, port: usize, mut packet: Packet) {
        if packet.created_at == SimTime::ZERO {
            packet.created_at = self.now;
        }
        self.emitted.push((Some(port), packet));
    }

    /// Charge additional service time beyond the stage's static
    /// [`CostModel`] (e.g. cost proportional to a data-dependent value).
    pub fn add_cost(&mut self, cost: SimDuration) {
        self.extra_cost += cost;
    }

    /// Declare this stage's own output finished even though inputs may
    /// continue (rarely needed; sources normally end via
    /// [`SourceStatus::Done`]).
    pub fn request_eos(&mut self) {
        self.eos_requested = true;
    }

    // ---- Executor-facing accessors -------------------------------------

    /// Set the time visible to the next callback (executor use).
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    /// Drain packets emitted during the last callback, each tagged with
    /// its destination port (`None` = broadcast). Executor use.
    pub fn take_emitted(&mut self) -> Vec<(Option<usize>, Packet)> {
        std::mem::take(&mut self.emitted)
    }

    /// Take and reset the extra service cost (executor use).
    pub fn take_extra_cost(&mut self) -> SimDuration {
        std::mem::replace(&mut self.extra_cost, SimDuration::ZERO)
    }

    /// Whether [`StageApi::request_eos`] was called (executor use).
    pub fn eos_requested(&self) -> bool {
        self.eos_requested
    }

    /// The parameter table (executor/adaptation use).
    pub fn params(&self) -> &ParamTable {
        &self.params
    }

    /// Mutable parameter table (adaptation writes suggestions here).
    pub fn params_mut(&mut self) -> &mut ParamTable {
        &mut self.params
    }

    /// Write a new suggested value (adaptation use).
    pub fn push_suggestion(&mut self, id: ParamId, value: f64) -> Result<f64> {
        self.params.set_suggested(id, value)
    }

    /// Fail with a decode error (helper for processors parsing payloads).
    pub fn decode_error(&self, msg: impl Into<String>) -> CoreError {
        CoreError::PayloadDecode(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    #[test]
    fn cost_model_components_add() {
        let m = CostModel { per_packet_s: 0.001, per_record_s: 0.0001, per_byte_s: 0.00001 };
        let p = Packet::data(0, 0, 10, Bytes::from(vec![0u8; 100]));
        // 0.001 + 10*0.0001 + 100*0.00001 = 0.003 s
        let t = m.service_time(&p, 1.0);
        assert_eq!(t.as_micros(), 3_000);
    }

    #[test]
    fn node_speed_divides_cost() {
        let m = CostModel::per_packet(0.010);
        let p = Packet::data(0, 0, 1, Bytes::new());
        assert_eq!(m.service_time(&p, 2.0).as_micros(), 5_000);
        assert_eq!(m.service_time(&p, 0.5).as_micros(), 20_000);
    }

    #[test]
    fn zero_cost_is_zero_time() {
        let p = Packet::data(0, 0, 1, Bytes::from_static(b"abc"));
        assert!(CostModel::zero().service_time(&p, 1.0).is_zero());
        assert!(CostModel::zero().is_zero());
    }

    #[test]
    #[should_panic(expected = "node speed must be positive")]
    fn zero_speed_panics() {
        let p = Packet::data(0, 0, 1, Bytes::new());
        let _ = CostModel::per_packet(1.0).service_time(&p, 0.0);
    }

    #[test]
    fn per_byte_matches_paper_units() {
        // 20 ms/byte on a 16-byte payload = 320 ms.
        let m = CostModel::per_byte(0.020);
        let p = Packet::data(0, 0, 1, Bytes::from(vec![0u8; 16]));
        assert_eq!(m.service_time(&p, 1.0).as_micros(), 320_000);
    }

    #[test]
    fn api_emit_stamps_creation_time() {
        let mut api = StageApi::new();
        api.set_now(SimTime::from_secs_f64(2.0));
        api.emit(Packet::data(0, 0, 1, Bytes::new()));
        let already = Packet::data(0, 1, 1, Bytes::new()).at(SimTime::from_secs_f64(1.0));
        api.emit(already);
        let out = api.take_emitted();
        assert_eq!(out[0].1.created_at.as_secs_f64(), 2.0);
        assert_eq!(out[0].0, None, "plain emit broadcasts");
        assert_eq!(out[1].1.created_at.as_secs_f64(), 1.0, "existing stamp preserved");
        assert!(api.take_emitted().is_empty(), "drained");
    }

    #[test]
    fn api_emit_to_tags_the_port() {
        let mut api = StageApi::new();
        api.set_now(SimTime::from_secs_f64(1.0));
        api.emit_to(2, Packet::data(0, 0, 1, Bytes::new()));
        let out = api.take_emitted();
        assert_eq!(out[0].0, Some(2));
        assert_eq!(out[0].1.created_at.as_secs_f64(), 1.0);
    }

    #[test]
    fn api_specify_para_and_read_back() {
        let mut api = StageApi::new();
        let id =
            api.specify_para("rate", 0.2, 0.01, 1.0, 0.01, Direction::IncreaseSlowsDown).unwrap();
        assert_eq!(api.suggested_value(id).unwrap(), 0.2);
        api.push_suggestion(id, 0.5).unwrap();
        assert_eq!(api.suggested_value(id).unwrap(), 0.5);
    }

    #[test]
    fn api_invalid_param_spec_propagates() {
        let mut api = StageApi::new();
        assert!(api.specify_para("bad", 2.0, 0.0, 1.0, 0.1, Direction::IncreaseSlowsDown).is_err());
    }

    #[test]
    fn api_extra_cost_accumulates_and_resets() {
        let mut api = StageApi::new();
        api.add_cost(SimDuration::from_millis(5));
        api.add_cost(SimDuration::from_millis(7));
        assert_eq!(api.take_extra_cost().as_micros(), 12_000);
        assert!(api.take_extra_cost().is_zero());
    }

    #[test]
    fn default_poll_generate_is_done() {
        struct Nop;
        impl StreamProcessor for Nop {
            fn process(&mut self, _packet: Packet, _api: &mut StageApi) {}
        }
        let mut nop = Nop;
        let mut api = StageApi::new();
        assert_eq!(nop.poll_generate(&mut api), SourceStatus::Done);
    }
}

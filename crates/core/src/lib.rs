#![deny(missing_docs)]

//! # gates-core
//!
//! The GATES middleware core, reproducing *"GATES: A Grid-Based Middleware
//! for Processing Distributed Data Streams"* (Chen, Reddy, Agrawal —
//! HPDC 2004).
//!
//! GATES lets an application developer express stream analysis as a
//! pipeline of **stages** deployed across grid resources. Each stage may
//! expose **adjustment parameters** — tunables like a sampling rate or a
//! summary-structure size — and the middleware continuously retunes them
//! so the application delivers the best accuracy that still keeps up with
//! the input streams (the *real-time constraint*).
//!
//! This crate contains everything execution-independent:
//!
//! * [`Packet`] — the unit of data flowing between stages.
//! * [`StreamProcessor`] — the developer-facing stage trait, with the
//!   paper's `specifyPara` / `getSuggestedValue` API surface on
//!   [`StageApi`].
//! * [`adapt`] — the self-adaptation algorithm of paper §4: load factors
//!   φ1/φ2/φ3, the long-term queue factor d̃, over-/under-load exceptions,
//!   and the σ-gain parameter controller.
//! * [`Topology`] — the pipeline description (stages, edges, links,
//!   placement sites) consumed by the deployer and the engines, including
//!   stage replication ([`Topology::replicate`]).
//! * [`shard`] — key-partitioned sharding: the hash, the versioned
//!   key-range map, and the router replicated stages route through.
//! * [`report`] — per-run statistics shared by all executors.
//! * [`trace`] — the flight recorder: per-round adaptation events and
//!   per-stage runtime samples both engines can feed for debugging.
//!
//! Execution lives in `gates-engine` (deterministic virtual-time engine
//! and a native-thread runtime); grid deployment in `gates-grid`.

pub mod adapt;
mod error;
mod packet;
mod param;
pub mod report;
pub mod shard;
mod stage;
mod topology;
pub mod trace;

pub use error::CoreError;
pub use packet::{Packet, PacketKind, PayloadReader, PayloadWriter, PACKET_TRAILER_LEN};
pub use param::{AdjustmentParameter, Direction, ParamId, ParamTable};
pub use shard::{shard_key, ShardChange, ShardError, ShardMap, ShardRange, ShardRouter};
pub use stage::{CostModel, SourceStatus, StageApi, StreamProcessor};
pub use topology::{
    Edge, OutRoute, ReplicaGroup, StageBuilder, StageId, StageSpec, Topology, TopologyError,
};

/// Crate-level result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

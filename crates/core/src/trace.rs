//! The flight recorder: lightweight run instrumentation shared by all
//! executors.
//!
//! Debugging an adaptation run requires seeing *why* the long-term queue
//! factor d̃ left `[LT1, LT2]` and which stage's queue blew up. Both
//! engines feed a [`Recorder`] with two kinds of events while a run is in
//! flight:
//!
//! * [`AdaptRound`] — one per parameter-adaptation round: d̃, the load
//!   factors φ1/φ2/φ3, the gains σ1/σ2 the controller actually used, the
//!   suggested value it produced, and the exception counts at that point.
//! * [`StageSample`] — one per observation tick: instantaneous queue
//!   depth, packet counters, throughput and realized service time since
//!   the previous sample, and (threaded engine) token-bucket wait time.
//! * [`LinkEvent`] — transport lifecycle on the distributed runtime: TCP
//!   connects, reconnect attempts with backoff, CRC-failure drops, peer
//!   EOFs and drain decisions, one event per transition per link.
//!
//! The default recorder is [`NullRecorder`], which reports itself
//! disabled so call sites can skip building events entirely — the
//! instrumented hot paths cost one virtual call on a shared `Arc` per
//! tick, nothing per packet. Opting in is one line:
//!
//! ```
//! use std::sync::Arc;
//! use gates_core::trace::{FlightRecorder, Recorder, TraceEvent, StageSample};
//!
//! let rec = Arc::new(FlightRecorder::new(1024));
//! rec.record(TraceEvent::Sample(StageSample { stage: "sink".into(), ..Default::default() }));
//! let trace = rec.run_trace();
//! assert_eq!(trace.stages[0].stage, "sink");
//! assert!(rec.to_jsonl().contains("\"stage\":\"sink\""));
//! ```

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Identity of a run: which engine executed it and where each stage was
/// placed (stage name → node name, from the deployment plan).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunMeta {
    /// Executor name (`"des"` or `"threaded"`).
    pub engine: String,
    /// `(stage, node)` placement pairs in stage order.
    pub placements: Vec<(String, String)>,
}

/// One parameter-adaptation round as seen by a `ParamController`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdaptRound {
    /// Run time of the round, in seconds (virtual or wall clock).
    pub t: f64,
    /// Stage that owns the parameter.
    pub stage: String,
    /// Adjustment-parameter name.
    pub param: String,
    /// Adaptation policy that decided the round (`"paper"`, `"aimd"`,
    /// `"pid"`, or a user-defined policy's name).
    pub policy: String,
    /// Long-term queue factor d̃ fed into the round.
    pub d_tilde: f64,
    /// Load factor φ1 (queue-growth rate).
    pub phi1: f64,
    /// Load factor φ2 (normalized queue occupancy).
    pub phi2: f64,
    /// Load factor φ3 (exception pressure).
    pub phi3: f64,
    /// Gain σ1 applied to the stage's own demand this round.
    pub sigma1: f64,
    /// Gain σ2 applied to the downstream demand this round.
    pub sigma2: f64,
    /// Suggested (quantized) parameter value after the round.
    pub suggested: f64,
    /// Overload exceptions this stage has sent upstream so far.
    pub overload_sent: u64,
    /// Underload exceptions this stage has sent upstream so far.
    pub underload_sent: u64,
    /// Overload exceptions received from downstream so far.
    pub overload_received: u64,
    /// Underload exceptions received from downstream so far.
    pub underload_received: u64,
}

/// One runtime sample of a stage, taken on the observation tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageSample {
    /// Run time of the sample, in seconds (virtual or wall clock).
    pub t: f64,
    /// Stage name.
    pub stage: String,
    /// Instantaneous input-queue depth.
    pub queue_depth: usize,
    /// Packets accepted so far.
    pub packets_in: u64,
    /// Packets emitted so far.
    pub packets_out: u64,
    /// Packets dropped so far (queue overflow + lossy links).
    pub dropped: u64,
    /// Input throughput since the previous sample, packets/second.
    pub throughput: f64,
    /// Realized mean service time per packet since the previous sample,
    /// seconds (0 when no packet was serviced in the window).
    pub service_time: f64,
    /// Token-bucket wait accumulated since the previous sample, seconds
    /// (always 0 on the virtual-time engine, which models links by
    /// transit delay instead of pacing).
    pub bucket_wait: f64,
}

/// Transport lifecycle transitions recorded by the distributed runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkEventKind {
    /// A TCP connection for this link was established.
    Connected,
    /// The connection broke; a bounded-backoff reconnect is in progress.
    Reconnecting,
    /// A reconnect attempt succeeded and traffic resumed.
    Reconnected,
    /// The retry budget was exhausted; the link is dead and further
    /// packets on it are dropped.
    Dead,
    /// A frame failed its CRC (or carried an unknown kind tag) and was
    /// skipped.
    CrcDrop,
    /// The peer closed the connection (worker EOF).
    PeerEof,
    /// The receiver injected an end-of-stream marker after the drain
    /// window expired without a reconnect (graceful pipeline drain).
    Drained,
    /// A worker's control connection to the coordinator was lost.
    WorkerLost,
    /// The coordinator re-placed a lost worker's stage on a surviving
    /// worker (failover step 1 of 3).
    Reassigned,
    /// A surviving worker started a replacement stage, restoring the last
    /// checkpoint when one existed (failover step 2 of 3).
    Restored,
    /// The first data packet reached a replacement stage after failover
    /// (failover step 3 of 3 — traffic is flowing again).
    Resumed,
    /// The coordinator refused a registration (malformed or timed-out
    /// hello, duplicate worker name) and told the peer so.
    Rejected,
    /// The chaos layer injected a fault (drop, bit flip, duplicate,
    /// delay, reset, or partition transition); the detail names it.
    FaultInjected,
    /// A duplicated or out-of-date control frame (stale `Reassign`
    /// epoch, checkpoint older than one already held) was discarded
    /// idempotently instead of being applied.
    StaleDiscarded,
    /// A checkpoint payload failed its checksum and was not restored;
    /// the stage restarted fresh instead.
    CheckpointCorrupt,
    /// A dead link's re-dial budget ran out; the link stays down until
    /// failover re-places the peer stage or the stream ends.
    ReconnectExhausted,
    /// A replica group's shard map split: an overloaded replica handed
    /// half its key range to a sibling (live scale-out).
    ShardSplit,
    /// A replica group's shard map merged: an underloaded replica handed
    /// its key range to its neighbours (live scale-in).
    ShardMerge,
    /// A packet reached a replica that does not own its key (the sender
    /// routed with a stale shard map); it was re-routed or rejected.
    Misrouted,
    /// A sender's replay window advanced on a cumulative ack from the
    /// receiver (delivered or durable); the detail carries the floor.
    Acked,
    /// A sender re-transmitted retained frames (reconnect replay, or a
    /// gap NAK from the receiver); the detail counts the frames.
    Replayed,
    /// The receiver discarded an already-delivered frame by its edge
    /// sequence number (chaos duplicate, or an over-covering replay).
    Deduped,
    /// A sender's credit window filled and backpressure parked the
    /// stage; the detail carries the accumulated stall time.
    Stalled,
    /// A receiver jumped its delivery cursor forward past frames the
    /// sender no longer retains (retention-cap eviction before a
    /// delivered ack arrived); the skipped frames are counted as lost.
    Skipped,
}

impl LinkEventKind {
    /// Stable lowercase name used in the JSONL serialization.
    pub fn as_str(self) -> &'static str {
        match self {
            LinkEventKind::Connected => "connected",
            LinkEventKind::Reconnecting => "reconnecting",
            LinkEventKind::Reconnected => "reconnected",
            LinkEventKind::Dead => "dead",
            LinkEventKind::CrcDrop => "crc_drop",
            LinkEventKind::PeerEof => "peer_eof",
            LinkEventKind::Drained => "drained",
            LinkEventKind::WorkerLost => "worker_lost",
            LinkEventKind::Reassigned => "reassigned",
            LinkEventKind::Restored => "restored",
            LinkEventKind::Resumed => "resumed",
            LinkEventKind::Rejected => "rejected",
            LinkEventKind::FaultInjected => "fault_injected",
            LinkEventKind::StaleDiscarded => "stale_discarded",
            LinkEventKind::CheckpointCorrupt => "checkpoint_corrupt",
            LinkEventKind::ReconnectExhausted => "reconnect_exhausted",
            LinkEventKind::ShardSplit => "shard_split",
            LinkEventKind::ShardMerge => "shard_merge",
            LinkEventKind::Misrouted => "misrouted",
            LinkEventKind::Acked => "acked",
            LinkEventKind::Replayed => "replayed",
            LinkEventKind::Deduped => "deduped",
            LinkEventKind::Stalled => "stalled",
            LinkEventKind::Skipped => "skipped",
        }
    }
}

/// One transport lifecycle event on a distributed link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkEvent {
    /// Run time of the event, in seconds (wall clock of the reporter).
    pub t: f64,
    /// Link label, `"<from-stage>-><to-stage>"` (or a worker name for
    /// control-channel events).
    pub link: String,
    /// Worker (or coordinator) that observed the event.
    pub node: String,
    /// What happened.
    pub kind: LinkEventKind,
    /// Free-form detail: attempt counts, drop totals, error text.
    pub detail: String,
}

/// A single flight-recorder event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Run identity, emitted once when an engine starts.
    Meta(RunMeta),
    /// A parameter-adaptation round.
    Adapt(AdaptRound),
    /// A per-stage runtime sample.
    Sample(StageSample),
    /// A transport lifecycle transition (distributed runtime only).
    Link(LinkEvent),
}

/// Sink for [`TraceEvent`]s. Implementations must be cheap when
/// disabled: engines consult [`Recorder::enabled`] before assembling an
/// event, so a disabled recorder costs one virtual call per tick.
pub trait Recorder: Send + Sync {
    /// Whether events should be assembled and recorded at all.
    fn enabled(&self) -> bool;
    /// Record one event. May drop it (ring buffer overflow, disabled).
    fn record(&self, event: TraceEvent);
    /// Downcast hook: the concrete [`FlightRecorder`], if that is what
    /// this recorder is. Lets engines attach the collected trace to the
    /// [`crate::report::RunReport`] without `Any` gymnastics.
    fn as_flight(&self) -> Option<&FlightRecorder> {
        None
    }
}

/// The default recorder: records nothing, reports itself disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn record(&self, _event: TraceEvent) {}
}

/// Ring-buffered in-memory recorder.
///
/// Keeps the most recent `capacity` events under a mutex; older events
/// are evicted and counted in [`FlightRecorder::dropped`]. The buffer is
/// written on observation/adaptation ticks only (never per packet), so
/// contention is negligible.
#[derive(Debug)]
pub struct FlightRecorder {
    events: Mutex<VecDeque<TraceEvent>>,
    capacity: usize,
    dropped: AtomicU64,
    dropped_adapt: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(Self::DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Default ring capacity: enough for hours of default-interval
    /// observation on paper-sized pipelines.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Create a recorder keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            dropped_adapt: AtomicU64::new(0),
        }
    }

    /// A recorder that never evicts. Record/replay uses this: a replay
    /// diff is only meaningful against a complete adaptation-round
    /// stream, so record mode must be lossless rather than ring-bounded.
    pub fn lossless() -> Self {
        FlightRecorder::new(usize::MAX)
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.events.lock().expect("flight recorder lock").len()
    }

    /// True when no events have been recorded (or all were evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Adaptation-round events among the evicted (tracked separately:
    /// a trace missing rounds silently breaks replay diffs, so round
    /// loss must be visible, not folded into a generic counter).
    pub fn dropped_adapt(&self) -> u64 {
        self.dropped_adapt.load(Ordering::Relaxed)
    }

    /// Copy of the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("flight recorder lock").iter().cloned().collect()
    }

    /// Group the buffered events into per-stage time series. Eviction
    /// counters ride along so the summary can flag an incomplete trace.
    pub fn run_trace(&self) -> RunTrace {
        let mut trace = RunTrace::from_events(&self.snapshot());
        trace.events_dropped = self.dropped();
        trace.adapt_rounds_dropped = self.dropped_adapt();
        trace
    }

    /// Serialize the buffered events as JSON Lines (one event object per
    /// line, oldest first).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.snapshot() {
            event_to_json(&event, &mut out);
            out.push('\n');
        }
        out
    }

    /// Write the JSONL serialization to `path`.
    pub fn save_jsonl(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_jsonl().as_bytes())?;
        file.flush()
    }

    /// Compact human-readable end-of-run summary table.
    pub fn summary_table(&self) -> String {
        self.run_trace().summary_table()
    }
}

impl Recorder for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, event: TraceEvent) {
        let mut events = self.events.lock().expect("flight recorder lock");
        if events.len() >= self.capacity {
            if let Some(evicted) = events.pop_front() {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                if matches!(evicted, TraceEvent::Adapt(_)) {
                    self.dropped_adapt.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        events.push_back(event);
    }

    fn as_flight(&self) -> Option<&FlightRecorder> {
        Some(self)
    }
}

/// Per-stage time series recovered from a flight recording, attached to
/// [`crate::report::RunReport::trace`] when a run used a
/// [`FlightRecorder`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTrace {
    /// Run identity, when a [`TraceEvent::Meta`] survived in the ring.
    pub meta: Option<RunMeta>,
    /// One series per stage that produced at least one event, in order
    /// of first appearance.
    pub stages: Vec<StageTrace>,
    /// Transport lifecycle events (distributed runs), oldest first.
    pub links: Vec<LinkEvent>,
    /// Events evicted from the ring before the trace was assembled.
    pub events_dropped: u64,
    /// Adaptation-round events among the evicted. A non-zero value means
    /// the per-stage `adapt_rounds` series are incomplete and must not be
    /// used for replay diffs.
    pub adapt_rounds_dropped: u64,
}

/// The recorded time series of a single stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageTrace {
    /// Stage name.
    pub stage: String,
    /// Runtime samples, oldest first.
    pub samples: Vec<StageSample>,
    /// Adaptation rounds (all parameters interleaved), oldest first.
    pub adapt_rounds: Vec<AdaptRound>,
}

impl RunTrace {
    /// Build per-stage series from a flat event list.
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut trace = RunTrace::default();
        for event in events {
            match event {
                TraceEvent::Meta(m) => trace.meta = Some(m.clone()),
                TraceEvent::Adapt(a) => {
                    trace.stage_mut(&a.stage).adapt_rounds.push(a.clone());
                }
                TraceEvent::Sample(s) => {
                    trace.stage_mut(&s.stage).samples.push(s.clone());
                }
                TraceEvent::Link(l) => trace.links.push(l.clone()),
            }
        }
        trace
    }

    fn stage_mut(&mut self, name: &str) -> &mut StageTrace {
        if let Some(i) = self.stages.iter().position(|s| s.stage == name) {
            return &mut self.stages[i];
        }
        self.stages.push(StageTrace { stage: name.to_string(), ..Default::default() });
        self.stages.last_mut().expect("just pushed")
    }

    /// Series for `stage`, if it recorded anything.
    pub fn stage(&self, name: &str) -> Option<&StageTrace> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// Compact per-stage summary table of the recording.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        if let Some(meta) = &self.meta {
            let _ = writeln!(out, "flight recording · engine={}", meta.engine);
        }
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>7} {:>8} {:>9} {:>7} {:>6} {:>9} {:>9}",
            "stage",
            "samples",
            "q.max",
            "q.mean",
            "thr p/s",
            "drops",
            "adapt",
            "last d~",
            "last sugg"
        );
        for s in &self.stages {
            let q_max = s.samples.iter().map(|x| x.queue_depth).max().unwrap_or(0);
            let q_mean = if s.samples.is_empty() {
                0.0
            } else {
                s.samples.iter().map(|x| x.queue_depth as f64).sum::<f64>() / s.samples.len() as f64
            };
            let thr_mean = if s.samples.is_empty() {
                0.0
            } else {
                s.samples.iter().map(|x| x.throughput).sum::<f64>() / s.samples.len() as f64
            };
            let drops = s.samples.last().map(|x| x.dropped).unwrap_or(0);
            let last = s.adapt_rounds.last();
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:>7} {:>8.2} {:>9.1} {:>7} {:>6} {:>9} {:>9}",
                s.stage,
                s.samples.len(),
                q_max,
                q_mean,
                thr_mean,
                drops,
                s.adapt_rounds.len(),
                last.map(|a| format!("{:.3}", a.d_tilde)).unwrap_or_else(|| "-".into()),
                last.map(|a| format!("{:.3}", a.suggested)).unwrap_or_else(|| "-".into()),
            );
        }
        if !self.links.is_empty() {
            let _ = writeln!(out, "transport events ({}):", self.links.len());
            for l in &self.links {
                let _ = writeln!(
                    out,
                    "  t={:<8.3} {:<22} {:<12} {} {}",
                    l.t,
                    l.link,
                    l.node,
                    l.kind.as_str(),
                    l.detail
                );
            }
        }
        if self.events_dropped > 0 {
            let _ = writeln!(
                out,
                "({} events evicted from the ring buffer, {} adaptation rounds among them)",
                self.events_dropped, self.adapt_rounds_dropped
            );
        }
        out
    }
}

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn event_to_json(event: &TraceEvent, out: &mut String) {
    match event {
        TraceEvent::Meta(m) => {
            out.push_str("{\"type\":\"meta\",\"engine\":");
            json_escape(&m.engine, out);
            out.push_str(",\"placements\":[");
            for (i, (stage, node)) in m.placements.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"stage\":");
                json_escape(stage, out);
                out.push_str(",\"node\":");
                json_escape(node, out);
                out.push('}');
            }
            out.push_str("]}");
        }
        TraceEvent::Adapt(a) => {
            out.push_str("{\"type\":\"adapt\",\"t\":");
            json_f64(a.t, out);
            out.push_str(",\"stage\":");
            json_escape(&a.stage, out);
            out.push_str(",\"param\":");
            json_escape(&a.param, out);
            out.push_str(",\"policy\":");
            json_escape(&a.policy, out);
            for (key, v) in [
                ("d_tilde", a.d_tilde),
                ("phi1", a.phi1),
                ("phi2", a.phi2),
                ("phi3", a.phi3),
                ("sigma1", a.sigma1),
                ("sigma2", a.sigma2),
                ("suggested", a.suggested),
            ] {
                let _ = write!(out, ",\"{key}\":");
                json_f64(v, out);
            }
            let _ = write!(
                out,
                ",\"overload_sent\":{},\"underload_sent\":{},\"overload_received\":{},\"underload_received\":{}}}",
                a.overload_sent, a.underload_sent, a.overload_received, a.underload_received
            );
        }
        TraceEvent::Sample(s) => {
            out.push_str("{\"type\":\"sample\",\"t\":");
            json_f64(s.t, out);
            out.push_str(",\"stage\":");
            json_escape(&s.stage, out);
            let _ = write!(
                out,
                ",\"queue_depth\":{},\"packets_in\":{},\"packets_out\":{},\"dropped\":{}",
                s.queue_depth, s.packets_in, s.packets_out, s.dropped
            );
            for (key, v) in [
                ("throughput", s.throughput),
                ("service_time", s.service_time),
                ("bucket_wait", s.bucket_wait),
            ] {
                let _ = write!(out, ",\"{key}\":");
                json_f64(v, out);
            }
            out.push('}');
        }
        TraceEvent::Link(l) => {
            out.push_str("{\"type\":\"link\",\"t\":");
            json_f64(l.t, out);
            out.push_str(",\"link\":");
            json_escape(&l.link, out);
            out.push_str(",\"node\":");
            json_escape(&l.node, out);
            out.push_str(",\"kind\":");
            json_escape(l.kind.as_str(), out);
            out.push_str(",\"detail\":");
            json_escape(&l.detail, out);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(stage: &str, t: f64, depth: usize) -> TraceEvent {
        TraceEvent::Sample(StageSample {
            t,
            stage: stage.into(),
            queue_depth: depth,
            ..Default::default()
        })
    }

    #[test]
    fn null_recorder_is_disabled() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.record(sample("s", 0.0, 1));
        assert!(r.as_flight().is_none());
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(sample("s", i as f64, i));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let snap = r.snapshot();
        match &snap[0] {
            TraceEvent::Sample(s) => assert_eq!(s.queue_depth, 2, "oldest two evicted"),
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn run_trace_groups_by_stage() {
        let r = FlightRecorder::new(64);
        r.record(TraceEvent::Meta(RunMeta {
            engine: "des".into(),
            placements: vec![("a".into(), "n0".into())],
        }));
        r.record(sample("a", 0.1, 4));
        r.record(sample("b", 0.1, 0));
        r.record(sample("a", 0.2, 6));
        r.record(TraceEvent::Adapt(AdaptRound {
            t: 1.0,
            stage: "a".into(),
            param: "rate".into(),
            d_tilde: 0.4,
            suggested: 0.25,
            ..Default::default()
        }));
        let trace = r.run_trace();
        assert_eq!(trace.meta.as_ref().unwrap().engine, "des");
        assert_eq!(trace.stages.len(), 2);
        let a = trace.stage("a").unwrap();
        assert_eq!(a.samples.len(), 2);
        assert_eq!(a.adapt_rounds.len(), 1);
        assert_eq!(trace.stage("b").unwrap().samples.len(), 1);
        let table = r.summary_table();
        assert!(table.contains("engine=des"));
        assert!(table.contains("rate") || table.contains('a'));
    }

    #[test]
    fn jsonl_is_one_valid_object_per_line() {
        let r = FlightRecorder::new(16);
        r.record(TraceEvent::Meta(RunMeta {
            engine: "threaded".into(),
            placements: vec![("src \"x\"".into(), "n0".into())],
        }));
        r.record(sample("src \"x\"", 0.5, 2));
        r.record(TraceEvent::Adapt(AdaptRound {
            t: 1.0,
            stage: "src \"x\"".into(),
            param: "p".into(),
            d_tilde: f64::NAN,
            ..Default::default()
        }));
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }
        assert!(lines[0].contains("\\\"x\\\""), "quotes escaped: {}", lines[0]);
        assert!(lines[2].contains("\"d_tilde\":null"), "NaN maps to null: {}", lines[2]);
    }

    #[test]
    fn link_events_serialize_and_group() {
        let r = FlightRecorder::new(16);
        r.record(TraceEvent::Link(LinkEvent {
            t: 0.5,
            link: "summarizer-0->collector".into(),
            node: "w1".into(),
            kind: LinkEventKind::Reconnecting,
            detail: "attempt 2".into(),
        }));
        r.record(TraceEvent::Link(LinkEvent {
            t: 0.9,
            link: "summarizer-0->collector".into(),
            node: "w1".into(),
            kind: LinkEventKind::Reconnected,
            detail: String::new(),
        }));
        let trace = r.run_trace();
        assert_eq!(trace.links.len(), 2);
        assert_eq!(trace.links[0].kind, LinkEventKind::Reconnecting);
        assert!(trace.stages.is_empty(), "link events are not stage series");
        let jsonl = r.to_jsonl();
        let first = jsonl.lines().next().unwrap();
        assert!(first.contains("\"type\":\"link\""), "{first}");
        assert!(first.contains("\"kind\":\"reconnecting\""), "{first}");
        assert!(first.contains("\"detail\":\"attempt 2\""), "{first}");
        let table = trace.summary_table();
        assert!(table.contains("transport events (2)"), "{table}");
    }

    #[test]
    fn adapt_round_loss_is_visible() {
        let r = FlightRecorder::new(2);
        r.record(TraceEvent::Adapt(AdaptRound { stage: "a".into(), ..Default::default() }));
        for i in 0..3 {
            r.record(sample("s", i as f64, i));
        }
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.dropped_adapt(), 1, "evicted round counted separately");
        let trace = r.run_trace();
        assert_eq!(trace.events_dropped, 2, "run_trace carries the eviction count");
        assert_eq!(trace.adapt_rounds_dropped, 1);
        let table = trace.summary_table();
        assert!(table.contains("1 adaptation rounds among them"), "{table}");
    }

    #[test]
    fn lossless_recorder_never_evicts() {
        let r = FlightRecorder::lossless();
        for i in 0..10_000 {
            r.record(sample("s", i as f64, i));
        }
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.len(), 10_000);
    }

    #[test]
    fn adapt_round_serializes_policy() {
        let r = FlightRecorder::new(4);
        r.record(TraceEvent::Adapt(AdaptRound {
            stage: "s".into(),
            param: "p".into(),
            policy: "aimd".into(),
            ..Default::default()
        }));
        assert!(r.to_jsonl().contains("\"policy\":\"aimd\""), "{}", r.to_jsonl());
    }

    #[test]
    fn save_jsonl_writes_file() {
        let r = FlightRecorder::new(4);
        r.record(sample("s", 0.0, 1));
        let path = std::env::temp_dir().join("gates_trace_test.jsonl");
        r.save_jsonl(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"type\":\"sample\""));
        let _ = std::fs::remove_file(&path);
    }
}

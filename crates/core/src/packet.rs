//! Packets: the fixed-envelope unit of data flowing between stages.
//!
//! The adaptation model of paper §4 "assume[s] that the data arrives at a
//! server in fixed-size packets"; queue lengths and capacities are counted
//! in packets. A [`Packet`] carries an opaque payload plus the metadata
//! the middleware needs (stream id, sequence number, logical record count,
//! creation time). On a link it is framed by `gates-net`, so its wire size
//! is `FRAME_HEADER_LEN + payload length`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use gates_net::{encode_segments_into, Frame, FrameKind, FRAME_HEADER_LEN};
use gates_sim::SimTime;

use crate::CoreError;

/// Size of the metadata trailer [`Packet::to_frame`] appends to the
/// payload so `records` (u32), `created_at` (u64 microseconds), the
/// routing `key` (u64) and the producer's `seq` (u64) survive the hop.
/// Shared by [`Packet::to_frame`], [`Packet::from_frame`],
/// [`Packet::encode_into`] and [`Packet::wire_len`].
///
/// The producer sequence number travels in the trailer — not (only) in
/// the frame header — because the frame-header `seq` belongs to the
/// *link* layer: the distributed runtime's replay windows stamp a
/// per-edge monotonic sequence there (see
/// [`Packet::encode_into_with_seq`]) for acked at-least-once delivery,
/// and the application's own numbering must survive that renumbering.
pub const PACKET_TRAILER_LEN: usize = 4 + 8 + 8 + 8;

/// What a packet carries (mirrors `gates_net::FrameKind` minus control).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// Raw stream records.
    Data,
    /// A summary structure produced by an intermediate stage.
    Summary,
    /// End-of-stream marker: the upstream stage will send nothing more.
    Eos,
}

impl PacketKind {
    fn to_frame_kind(self) -> FrameKind {
        match self {
            PacketKind::Data => FrameKind::Data,
            PacketKind::Summary => FrameKind::Summary,
            PacketKind::Eos => FrameKind::Eos,
        }
    }

    fn from_frame_kind(kind: FrameKind) -> Option<Self> {
        Some(match kind {
            FrameKind::Data => PacketKind::Data,
            FrameKind::Summary => PacketKind::Summary,
            FrameKind::Eos => PacketKind::Eos,
            _ => return None,
        })
    }
}

/// A unit of stream data exchanged between stages.
#[derive(Debug, Clone, PartialEq)]
pub struct Packet {
    /// Packet type.
    pub kind: PacketKind,
    /// Logical stream the packet belongs to (e.g. source index).
    pub stream_id: u32,
    /// Per-stream sequence number, assigned by the producer.
    pub seq: u64,
    /// Number of logical records in the payload (drives per-record cost
    /// models and throughput accounting).
    pub records: u32,
    /// Virtual time at which the packet was created at its source, for
    /// end-to-end latency accounting.
    pub created_at: SimTime,
    /// Sharding key: when the downstream stage is replicated, the packet
    /// is routed to the replica whose key range contains this value (see
    /// [`crate::shard::ShardMap`]). Producers set it with
    /// [`Packet::with_key`] or [`crate::shard::shard_key`]; it defaults
    /// to `0`, which always lands in replica ordinal 0's range.
    pub key: u64,
    /// Application payload.
    pub payload: Bytes,
}

impl Packet {
    /// A data packet.
    pub fn data(stream_id: u32, seq: u64, records: u32, payload: Bytes) -> Self {
        Packet {
            kind: PacketKind::Data,
            stream_id,
            seq,
            records,
            created_at: SimTime::ZERO,
            key: 0,
            payload,
        }
    }

    /// A summary packet.
    pub fn summary(stream_id: u32, seq: u64, records: u32, payload: Bytes) -> Self {
        Packet {
            kind: PacketKind::Summary,
            stream_id,
            seq,
            records,
            created_at: SimTime::ZERO,
            key: 0,
            payload,
        }
    }

    /// An end-of-stream marker for `stream_id`.
    pub fn eos(stream_id: u32, seq: u64) -> Self {
        Packet {
            kind: PacketKind::Eos,
            stream_id,
            seq,
            records: 0,
            created_at: SimTime::ZERO,
            key: 0,
            payload: Bytes::new(),
        }
    }

    /// Tag the packet with its creation time (builder style).
    pub fn at(mut self, t: SimTime) -> Self {
        self.created_at = t;
        self
    }

    /// Tag the packet with its sharding key (builder style). When the
    /// consuming stage is replicated, the key selects the owning replica.
    pub fn with_key(mut self, key: u64) -> Self {
        self.key = key;
        self
    }

    /// True for end-of-stream markers.
    pub fn is_eos(&self) -> bool {
        self.kind == PacketKind::Eos
    }

    /// Bytes this packet occupies on a link: frame header + payload +
    /// the [`PACKET_TRAILER_LEN`]-byte metadata trailer added by
    /// [`Packet::to_frame`].
    pub fn wire_len(&self) -> u64 {
        (FRAME_HEADER_LEN + self.payload.len() + PACKET_TRAILER_LEN) as u64
    }

    /// The metadata trailer appended to the payload on the wire.
    fn trailer(&self) -> [u8; PACKET_TRAILER_LEN] {
        let mut t = [0u8; PACKET_TRAILER_LEN];
        t[..4].copy_from_slice(&self.records.to_be_bytes());
        t[4..12].copy_from_slice(&self.created_at.as_micros().to_be_bytes());
        t[12..20].copy_from_slice(&self.key.to_be_bytes());
        t[20..].copy_from_slice(&self.seq.to_be_bytes());
        t
    }

    /// Encode into a wire frame. `created_at` and `records` travel in a
    /// [`PACKET_TRAILER_LEN`]-byte trailer appended to the payload so
    /// they survive the hop.
    pub fn to_frame(&self) -> Frame {
        let mut payload = BytesMut::with_capacity(self.payload.len() + PACKET_TRAILER_LEN);
        payload.put_slice(&self.payload);
        payload.put_slice(&self.trailer());
        Frame {
            kind: self.kind.to_frame_kind(),
            stream_id: self.stream_id,
            seq: self.seq,
            payload: payload.freeze(),
        }
    }

    /// Append this packet's complete wire frame to `out`, byte-identical
    /// to `encode_frame(&self.to_frame())` but without materializing the
    /// intermediate payload-plus-trailer buffer: the payload and the
    /// stack-allocated trailer go straight into the frame encoder as
    /// segments. This is the steady-state path of the distributed
    /// runtime's senders — with a long-lived `out` buffer it performs
    /// zero allocations per packet.
    pub fn encode_into(&self, out: &mut BytesMut) {
        self.encode_into_with_seq(self.seq, out);
    }

    /// Like [`Packet::encode_into`], but stamp `wire_seq` into the frame
    /// header instead of the packet's own sequence number. This is the
    /// distributed runtime's send path: the header carries a per-edge
    /// monotonic link sequence (acked, replayed, and deduplicated by the
    /// at-least-once machinery) while the producer's `seq` rides in the
    /// trailer and is restored by [`Packet::from_frame`].
    pub fn encode_into_with_seq(&self, wire_seq: u64, out: &mut BytesMut) {
        encode_segments_into(
            self.kind.to_frame_kind(),
            self.stream_id,
            wire_seq,
            &[&self.payload, &self.trailer()],
            out,
        );
    }

    /// Decode from a wire frame produced by [`Packet::to_frame`]. The
    /// producer's sequence number comes from the trailer, so a frame
    /// whose header seq was renumbered by the link layer round-trips the
    /// packet unchanged.
    pub fn from_frame(frame: &Frame) -> Result<Self, CoreError> {
        let kind = PacketKind::from_frame_kind(frame.kind).ok_or_else(|| {
            CoreError::PayloadDecode(format!("unexpected frame kind {:?}", frame.kind))
        })?;
        if frame.payload.len() < PACKET_TRAILER_LEN {
            return Err(CoreError::PayloadDecode("missing packet trailer".into()));
        }
        let body_len = frame.payload.len() - PACKET_TRAILER_LEN;
        let mut trailer = frame.payload.slice(body_len..);
        let records = trailer.get_u32();
        let created_at = SimTime::from_micros(trailer.get_u64());
        let key = trailer.get_u64();
        let seq = trailer.get_u64();
        Ok(Packet {
            kind,
            stream_id: frame.stream_id,
            seq,
            records,
            created_at,
            key,
            payload: frame.payload.slice(..body_len),
        })
    }
}

/// Incremental payload builder with fixed-width big-endian encodings.
///
/// Applications use this to encode records; sizes are explicit so the
/// experiments can report exact on-wire volumes.
#[derive(Debug, Default)]
pub struct PayloadWriter {
    buf: BytesMut,
}

impl PayloadWriter {
    /// Empty writer.
    pub fn new() -> Self {
        PayloadWriter { buf: BytesMut::new() }
    }

    /// Writer with pre-reserved capacity.
    pub fn with_capacity(bytes: usize) -> Self {
        PayloadWriter { buf: BytesMut::with_capacity(bytes) }
    }

    /// Append a `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32(v);
        self
    }

    /// Append a `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64(v);
        self
    }

    /// Append an `i64`.
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.put_i64(v);
        self
    }

    /// Append an `f64`.
    pub fn put_f64(&mut self, v: f64) -> &mut Self {
        self.buf.put_f64(v);
        self
    }

    /// Append raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.buf.put_slice(v);
        self
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish, yielding the immutable payload.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Sequential reader over a payload written by [`PayloadWriter`].
#[derive(Debug)]
pub struct PayloadReader {
    buf: Bytes,
}

impl PayloadReader {
    /// Read from the given payload.
    pub fn new(payload: Bytes) -> Self {
        PayloadReader { buf: payload }
    }

    fn ensure(&self, n: usize) -> Result<(), CoreError> {
        if self.buf.len() < n {
            Err(CoreError::PayloadDecode(format!("need {n} bytes, have {}", self.buf.len())))
        } else {
            Ok(())
        }
    }

    /// Read a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CoreError> {
        self.ensure(4)?;
        Ok(self.buf.get_u32())
    }

    /// Read a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CoreError> {
        self.ensure(8)?;
        Ok(self.buf.get_u64())
    }

    /// Read an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, CoreError> {
        self.ensure(8)?;
        Ok(self.buf.get_i64())
    }

    /// Read an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, CoreError> {
        self.ensure(8)?;
        Ok(self.buf.get_f64())
    }

    /// Read a single byte.
    pub fn get_u8(&mut self) -> Result<u8, CoreError> {
        self.ensure(1)?;
        Ok(self.buf.get_u8())
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<Bytes, CoreError> {
        self.ensure(n)?;
        Ok(self.buf.split_to(n))
    }

    /// Unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// True when fully consumed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_len_matches_encoded_frame() {
        let p = Packet::data(1, 1, 1, Bytes::from_static(&[0u8; 10]));
        assert_eq!(p.wire_len(), (FRAME_HEADER_LEN + 10 + PACKET_TRAILER_LEN) as u64);
        let encoded = gates_net::encode_frame(&p.to_frame());
        assert_eq!(p.wire_len(), encoded.len() as u64, "wire_len must match the actual encoding");
    }

    #[test]
    fn encode_into_matches_to_frame_encoding() {
        let packets = [
            Packet::data(1, 9, 3, Bytes::from_static(b"some records here"))
                .at(SimTime::from_micros(777))
                .with_key(42),
            Packet::summary(2, 10, 50, Bytes::from_static(b"topk")),
            Packet::eos(3, 11),
        ];
        let mut appended = BytesMut::new();
        let mut reference = Vec::new();
        for p in &packets {
            p.encode_into(&mut appended);
            reference.extend_from_slice(&gates_net::encode_frame(&p.to_frame()));
        }
        assert_eq!(&appended[..], &reference[..], "segmented encode must be byte-identical");

        // And the appended stream decodes back to the same packets.
        for p in &packets {
            let frame = gates_net::decode_frame(&mut appended).unwrap();
            assert_eq!(&Packet::from_frame(&frame).unwrap(), p);
        }
        assert!(appended.is_empty());
    }

    #[test]
    fn frame_round_trip_preserves_metadata() {
        let p = Packet::summary(3, 42, 7, Bytes::from_static(b"payload"))
            .at(SimTime::from_secs_f64(1.5))
            .with_key(0xDEAD_BEEF_CAFE_F00D);
        let frame = p.to_frame();
        let back = Packet::from_frame(&frame).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.key, 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn wire_seq_renumbering_preserves_producer_seq() {
        let p = Packet::data(4, 1234, 2, Bytes::from_static(b"renumber me")).with_key(9);
        let mut buf = BytesMut::new();
        p.encode_into_with_seq(777, &mut buf);
        let frame = gates_net::decode_frame(&mut buf).unwrap();
        assert_eq!(frame.seq, 777, "header carries the link seq");
        let back = Packet::from_frame(&frame).unwrap();
        assert_eq!(back, p, "producer seq restored from the trailer");
    }

    #[test]
    fn eos_round_trips() {
        let p = Packet::eos(9, 100).at(SimTime::from_micros(5));
        let back = Packet::from_frame(&p.to_frame()).unwrap();
        assert!(back.is_eos());
        assert_eq!(back.stream_id, 9);
        assert_eq!(back.created_at.as_micros(), 5);
    }

    #[test]
    fn from_frame_rejects_control_frames() {
        let frame = Frame {
            kind: FrameKind::Control,
            stream_id: 0,
            seq: 0,
            payload: Bytes::from_static(&[0u8; 12]),
        };
        assert!(Packet::from_frame(&frame).is_err());
    }

    #[test]
    fn from_frame_rejects_short_payload() {
        let frame = Frame {
            kind: FrameKind::Data,
            stream_id: 0,
            seq: 0,
            payload: Bytes::from_static(b"short"),
        };
        assert!(Packet::from_frame(&frame).is_err());
    }

    #[test]
    fn payload_writer_reader_round_trip() {
        let mut w = PayloadWriter::new();
        w.put_u32(7).put_i64(-5).put_f64(1.25).put_u64(u64::MAX).put_bytes(b"xy");
        assert_eq!(w.len(), 4 + 8 + 8 + 8 + 2);
        let mut r = PayloadReader::new(w.finish());
        assert_eq!(r.get_u32().unwrap(), 7);
        assert_eq!(r.get_i64().unwrap(), -5);
        assert_eq!(r.get_f64().unwrap(), 1.25);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.remaining(), 2);
    }

    #[test]
    fn reader_underflow_is_error_not_panic() {
        let mut r = PayloadReader::new(Bytes::from_static(&[1, 2]));
        assert!(r.get_u32().is_err());
    }
}

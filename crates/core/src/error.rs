//! Error type for the middleware core.

use std::fmt;

/// Errors raised by core middleware operations.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A parameter handle did not belong to this stage's table.
    UnknownParam(usize),
    /// A parameter specification was internally inconsistent.
    InvalidParam(String),
    /// A topology failed validation (cycle, dangling edge, …).
    InvalidTopology(String),
    /// A payload could not be decoded.
    PayloadDecode(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownParam(id) => write!(f, "unknown adjustment parameter #{id}"),
            CoreError::InvalidParam(msg) => write!(f, "invalid adjustment parameter: {msg}"),
            CoreError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            CoreError::PayloadDecode(msg) => write!(f, "payload decode failed: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(CoreError::UnknownParam(3).to_string().contains("#3"));
        assert!(CoreError::InvalidTopology("cycle".into()).to_string().contains("cycle"));
    }
}

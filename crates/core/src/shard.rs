//! Key-partitioned sharding for replicated stages.
//!
//! When a stage is replicated ([`crate::Topology::replicate`]), the
//! 64-bit key space is partitioned into contiguous ranges, one or more
//! per replica *ordinal* (the replica's index within its group). Every
//! packet carries a [`crate::Packet::key`]; upstream senders look the
//! key up in the group's [`ShardMap`] and deliver the packet to exactly
//! one replica. Because each sketch in `gates-streams` merges, the
//! downstream aggregator can combine per-shard summaries into the same
//! answer (within error bounds) that a singleton stage would produce.
//!
//! The map is versioned: every change bumps an *epoch*, and
//! [`ShardRouter::install`] rejects stale maps, so concurrent updates
//! from the adaptation loop (live split / merge) and from coordinator
//! broadcasts in the distributed runtime converge on the newest
//! partition.
//!
//! ```
//! use gates_core::{shard_key, ShardMap};
//!
//! let map = ShardMap::uniform(4);
//! let owner = map.owner_of(shard_key(b"user-123"));
//! assert!(owner < 4);
//! // Every key has exactly one owner.
//! assert_eq!(map.owner_of(0), 0);
//! assert_eq!(map.owner_of(u64::MAX), 3);
//! ```

use std::sync::RwLock;

/// Hash arbitrary bytes to a 64-bit shard key (FNV-1a).
///
/// Deterministic across processes and platforms, so every sender in a
/// distributed run routes the same record to the same replica.
///
/// ```
/// use gates_core::shard_key;
/// assert_eq!(shard_key(b"tenant-7"), shard_key(b"tenant-7"));
/// assert_ne!(shard_key(b"tenant-7"), shard_key(b"tenant-8"));
/// ```
pub fn shard_key(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    // Final avalanche (splitmix64 tail) so short keys spread over the
    // whole range instead of clustering near the FNV offset basis.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// Typed sharding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The ordinal does not exist in this group.
    UnknownOrdinal(u32),
    /// The ordinal owns no key range (already merged away).
    NothingOwned(u32),
    /// The ordinal's widest range is a single key and cannot split.
    RangeTooNarrow(u32),
    /// A merge would leave the key space with no owner.
    LastOwner(u32),
    /// A split found no sibling replica to hand keys to.
    NoTarget,
    /// A packet reached a replica that does not own its key — the
    /// sender routed with a stale [`ShardMap`]. Receivers must re-route
    /// or reject, never process.
    WrongShard {
        /// The packet's routing key.
        key: u64,
        /// The ordinal that owns the key under the receiver's map.
        owner: u32,
        /// The ordinal the packet was delivered to.
        delivered_to: u32,
    },
    /// An encoded map failed to decode.
    Decode(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::UnknownOrdinal(o) => write!(f, "unknown replica ordinal {o}"),
            ShardError::NothingOwned(o) => write!(f, "replica {o} owns no key range"),
            ShardError::RangeTooNarrow(o) => {
                write!(f, "replica {o}'s range is too narrow to split")
            }
            ShardError::LastOwner(o) => {
                write!(f, "replica {o} is the last owner; merging would orphan the key space")
            }
            ShardError::NoTarget => write!(f, "no sibling replica available to receive keys"),
            ShardError::WrongShard { key, owner, delivered_to } => write!(
                f,
                "key {key:#x} owned by replica {owner} was delivered to replica {delivered_to} \
                 (stale shard map)"
            ),
            ShardError::Decode(msg) => write!(f, "shard map decode: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {}

/// One contiguous key range: `[start, next range's start)`, owned by a
/// replica ordinal. The last range extends through `u64::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First key of the range (inclusive).
    pub start: u64,
    /// Owning replica ordinal within the group.
    pub ordinal: u32,
}

/// A total partition of the 64-bit key space among a replica group.
///
/// Invariants (enforced by every constructor and mutation):
/// ranges are sorted by `start`, the first range starts at 0 (so every
/// key has an owner), adjacent ranges have distinct ordinals, and every
/// ordinal is `< members`.
///
/// ```
/// use gates_core::ShardMap;
///
/// let mut map = ShardMap::uniform(2);
/// // Splitting replica 0's range hands its upper half to replica 1.
/// map.split(0, 1).unwrap();
/// assert_eq!(map.owner_of(0), 0);
/// assert_eq!(map.owner_of(u64::MAX / 2), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    members: u32,
    ranges: Vec<ShardRange>,
}

impl ShardMap {
    /// `n` replicas, each owning an equal `1/n` slice of the key space
    /// (ordinal `i` owns the `i`-th slice). `n` is clamped to at least 1.
    pub fn uniform(n: usize) -> Self {
        let n = n.max(1) as u32;
        let ranges = (0..n)
            .map(|i| ShardRange {
                start: ((i as u128) << 64).wrapping_div(n as u128) as u64,
                ordinal: i,
            })
            .collect();
        ShardMap { members: n, ranges }
    }

    /// `n` replicas with the *entire* key space on ordinal 0; the other
    /// replicas idle until a live split hands them keys. This is the
    /// starting point of the scale-out drill: traffic concentrates on
    /// one replica, the overload signal fires, and
    /// [`ShardMap::split`] activates a sibling.
    pub fn concentrated(n: usize) -> Self {
        let n = n.max(1) as u32;
        ShardMap { members: n, ranges: vec![ShardRange { start: 0, ordinal: 0 }] }
    }

    /// Number of replicas in the group (owning keys or idle).
    pub fn members(&self) -> u32 {
        self.members
    }

    /// The ranges, sorted by start key.
    pub fn ranges(&self) -> &[ShardRange] {
        &self.ranges
    }

    /// The ordinal owning `key`. Total: every key has exactly one owner.
    pub fn owner_of(&self, key: u64) -> u32 {
        // Last range whose start <= key (first range starts at 0).
        match self.ranges.binary_search_by(|r| r.start.cmp(&key)) {
            Ok(i) => self.ranges[i].ordinal,
            Err(i) => self.ranges[i - 1].ordinal,
        }
    }

    /// Total width of the key space owned by `ordinal` (0 when idle).
    pub fn width_of(&self, ordinal: u32) -> u128 {
        let mut total: u128 = 0;
        for (i, r) in self.ranges.iter().enumerate() {
            if r.ordinal == ordinal {
                total += self.range_width(i);
            }
        }
        total
    }

    fn range_width(&self, i: usize) -> u128 {
        let start = self.ranges[i].start as u128;
        let end = match self.ranges.get(i + 1) {
            Some(next) => next.start as u128,
            None => 1u128 << 64,
        };
        end - start
    }

    /// The sibling of `from` owning the least key-space width (idle
    /// replicas first); `None` when the group has no other member.
    pub fn least_loaded_other(&self, from: u32) -> Option<u32> {
        (0..self.members).filter(|&o| o != from).min_by_key(|&o| self.width_of(o))
    }

    /// Split `from`'s widest range in half, handing the upper half to
    /// `to`. Both ordinals must exist; `from` must own a range at least
    /// two keys wide.
    pub fn split(&mut self, from: u32, to: u32) -> Result<(), ShardError> {
        for o in [from, to] {
            if o >= self.members {
                return Err(ShardError::UnknownOrdinal(o));
            }
        }
        if from == to {
            return Err(ShardError::NoTarget);
        }
        let widest = (0..self.ranges.len())
            .filter(|&i| self.ranges[i].ordinal == from)
            .max_by_key(|&i| self.range_width(i))
            .ok_or(ShardError::NothingOwned(from))?;
        let width = self.range_width(widest);
        if width < 2 {
            return Err(ShardError::RangeTooNarrow(from));
        }
        let mid = self.ranges[widest].start.wrapping_add((width / 2) as u64);
        self.ranges.insert(widest + 1, ShardRange { start: mid, ordinal: to });
        self.coalesce();
        Ok(())
    }

    /// Remove `from` from the partition, handing each of its ranges to
    /// the neighbouring owner (the range to its left, or to its right
    /// for the first range). At least one other ordinal must own keys.
    pub fn merge(&mut self, from: u32) -> Result<(), ShardError> {
        if from >= self.members {
            return Err(ShardError::UnknownOrdinal(from));
        }
        if !self.ranges.iter().any(|r| r.ordinal == from) {
            return Err(ShardError::NothingOwned(from));
        }
        if self.ranges.iter().all(|r| r.ordinal == from) {
            return Err(ShardError::LastOwner(from));
        }
        // Reassign each of `from`'s ranges to a neighbour, preferring the
        // left one (keeps ranges contiguous per owner where possible).
        for i in 0..self.ranges.len() {
            if self.ranges[i].ordinal != from {
                continue;
            }
            let heir = if i > 0 {
                self.ranges[i - 1].ordinal
            } else {
                // First range: walk right to the first non-`from` owner.
                self.ranges[i..]
                    .iter()
                    .map(|r| r.ordinal)
                    .find(|&o| o != from)
                    .expect("checked: another owner exists")
            };
            self.ranges[i].ordinal = heir;
        }
        self.coalesce();
        Ok(())
    }

    fn coalesce(&mut self) {
        self.ranges.dedup_by(|next, prev| next.ordinal == prev.ordinal);
    }

    /// Serialize for the wire: `members:u32, count:u32, (start:u64,
    /// ordinal:u32)*`, all big-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.ranges.len() * 12);
        out.extend_from_slice(&self.members.to_be_bytes());
        out.extend_from_slice(&(self.ranges.len() as u32).to_be_bytes());
        for r in &self.ranges {
            out.extend_from_slice(&r.start.to_be_bytes());
            out.extend_from_slice(&r.ordinal.to_be_bytes());
        }
        out
    }

    /// Decode a map encoded by [`ShardMap::encode`], revalidating every
    /// invariant (sorted starts, first at 0, ordinals in range).
    pub fn decode(bytes: &[u8]) -> Result<Self, ShardError> {
        let take4 = |b: &[u8], at: usize| -> Result<u32, ShardError> {
            b.get(at..at + 4)
                .map(|s| u32::from_be_bytes(s.try_into().unwrap()))
                .ok_or_else(|| ShardError::Decode("truncated".into()))
        };
        let take8 = |b: &[u8], at: usize| -> Result<u64, ShardError> {
            b.get(at..at + 8)
                .map(|s| u64::from_be_bytes(s.try_into().unwrap()))
                .ok_or_else(|| ShardError::Decode("truncated".into()))
        };
        let members = take4(bytes, 0)?;
        let count = take4(bytes, 4)? as usize;
        if members == 0 || count == 0 {
            return Err(ShardError::Decode("empty map".into()));
        }
        let mut ranges = Vec::with_capacity(count);
        for i in 0..count {
            let at = 8 + i * 12;
            let start = take8(bytes, at)?;
            let ordinal = take4(bytes, at + 8)?;
            if ordinal >= members {
                return Err(ShardError::Decode(format!(
                    "ordinal {ordinal} out of range (members {members})"
                )));
            }
            ranges.push(ShardRange { start, ordinal });
        }
        if ranges[0].start != 0 {
            return Err(ShardError::Decode("first range must start at 0".into()));
        }
        if ranges.windows(2).any(|w| w[0].start >= w[1].start) {
            return Err(ShardError::Decode("range starts must strictly increase".into()));
        }
        Ok(ShardMap { members, ranges })
    }
}

#[derive(Debug)]
struct RouterInner {
    map: ShardMap,
    epoch: u64,
}

/// What a live [`ShardRouter`] mutation did, for logging and for the
/// coordinator's broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardChange {
    /// True for a split (scale-out), false for a merge (scale-in).
    pub split: bool,
    /// The replica whose load triggered the change.
    pub from: u32,
    /// The replica that received the keys.
    pub to: u32,
    /// The map epoch after the change.
    pub epoch: u64,
}

/// Shared, epoch-versioned view of a replica group's [`ShardMap`].
///
/// One router per replica group, shared (via `Arc`) by every upstream
/// sender, every replica, and the adaptation loop. Senders call
/// [`ShardRouter::route`] per packet; the adaptation loop calls
/// [`ShardRouter::split_hot`] / [`ShardRouter::merge_cold`]; the
/// distributed runtime ships `(epoch, map)` snapshots and installs them
/// with [`ShardRouter::install`], which rejects anything not newer than
/// the current epoch.
///
/// ```
/// use gates_core::ShardRouter;
///
/// let router = ShardRouter::uniform(2);
/// let before = router.route(u64::MAX); // upper half → replica 1
/// assert_eq!(before, 1);
/// let change = router.split_hot(1).unwrap(); // replica 1 overloaded
/// assert!(change.split);
/// assert_eq!(router.epoch(), 1);
/// ```
#[derive(Debug)]
pub struct ShardRouter {
    inner: RwLock<RouterInner>,
}

impl ShardRouter {
    /// A router starting at epoch 0 with the given map.
    pub fn new(map: ShardMap) -> Self {
        ShardRouter { inner: RwLock::new(RouterInner { map, epoch: 0 }) }
    }

    /// A router over [`ShardMap::uniform`]`(n)`.
    pub fn uniform(n: usize) -> Self {
        ShardRouter::new(ShardMap::uniform(n))
    }

    /// Replica count of the group.
    pub fn members(&self) -> u32 {
        self.inner.read().unwrap().map.members()
    }

    /// The replica ordinal owning `key` under the current map.
    pub fn route(&self, key: u64) -> usize {
        self.inner.read().unwrap().map.owner_of(key) as usize
    }

    /// Current map version. Starts at 0; every mutation increments it.
    pub fn epoch(&self) -> u64 {
        self.inner.read().unwrap().epoch
    }

    /// Snapshot `(epoch, map)` atomically, e.g. for a coordinator
    /// broadcast or a checkpoint.
    pub fn snapshot(&self) -> (u64, ShardMap) {
        let g = self.inner.read().unwrap();
        (g.epoch, g.map.clone())
    }

    /// Install a newer map. Returns `false` (and changes nothing) when
    /// `epoch` is not strictly newer than the current epoch — the
    /// staleness guard for out-of-order coordinator broadcasts.
    pub fn install(&self, epoch: u64, map: ShardMap) -> bool {
        let mut g = self.inner.write().unwrap();
        if epoch <= g.epoch {
            return false;
        }
        g.map = map;
        g.epoch = epoch;
        true
    }

    /// Scale-out action: split the overloaded replica's widest range,
    /// handing the upper half to the least-loaded sibling.
    pub fn split_hot(&self, ordinal: u32) -> Result<ShardChange, ShardError> {
        let mut g = self.inner.write().unwrap();
        let to = g.map.least_loaded_other(ordinal).ok_or(ShardError::NoTarget)?;
        g.map.split(ordinal, to)?;
        g.epoch += 1;
        Ok(ShardChange { split: true, from: ordinal, to, epoch: g.epoch })
    }

    /// Scale-in action: hand the underloaded replica's ranges to its
    /// neighbours, idling it.
    pub fn merge_cold(&self, ordinal: u32) -> Result<ShardChange, ShardError> {
        let mut g = self.inner.write().unwrap();
        g.map.merge(ordinal)?;
        g.epoch += 1;
        // `merge` may spread ranges over several heirs; report the owner
        // of the first key the replica used to hold.
        let to = g.map.owner_of(0);
        Ok(ShardChange { split: false, from: ordinal, to, epoch: g.epoch })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_key_space() {
        for n in 1..=8 {
            let map = ShardMap::uniform(n);
            assert_eq!(map.ranges().len(), n);
            assert_eq!(map.owner_of(0), 0);
            assert_eq!(map.owner_of(u64::MAX), n as u32 - 1);
            // Boundaries are exact: the first key of slice i belongs to i.
            for (i, r) in map.ranges().iter().enumerate() {
                assert_eq!(map.owner_of(r.start), i as u32);
                if r.start > 0 {
                    assert_eq!(map.owner_of(r.start - 1), i as u32 - 1);
                }
            }
        }
    }

    #[test]
    fn concentrated_routes_everything_to_zero() {
        let map = ShardMap::concentrated(4);
        assert_eq!(map.members(), 4);
        for key in [0u64, 1, u64::MAX / 2, u64::MAX] {
            assert_eq!(map.owner_of(key), 0);
        }
        assert_eq!(map.width_of(0), 1u128 << 64);
        assert_eq!(map.width_of(3), 0);
    }

    #[test]
    fn split_halves_and_merge_restores() {
        let mut map = ShardMap::concentrated(2);
        map.split(0, 1).unwrap();
        assert_eq!(map.owner_of(0), 0);
        assert_eq!(map.owner_of(u64::MAX), 1);
        assert_eq!(map.width_of(0), map.width_of(1));
        map.merge(1).unwrap();
        assert_eq!(map.width_of(0), 1u128 << 64);
        assert_eq!(map.ranges().len(), 1);
    }

    #[test]
    fn split_errors_are_typed() {
        let mut map = ShardMap::concentrated(2);
        assert_eq!(map.split(1, 0), Err(ShardError::NothingOwned(1)));
        assert_eq!(map.split(0, 0), Err(ShardError::NoTarget));
        assert_eq!(map.split(0, 9), Err(ShardError::UnknownOrdinal(9)));
        let mut one = ShardMap::uniform(1);
        assert_eq!(one.split(0, 0), Err(ShardError::NoTarget));
    }

    #[test]
    fn merge_errors_are_typed() {
        let mut map = ShardMap::concentrated(2);
        assert_eq!(map.merge(0), Err(ShardError::LastOwner(0)));
        assert_eq!(map.merge(1), Err(ShardError::NothingOwned(1)));
        assert_eq!(map.merge(7), Err(ShardError::UnknownOrdinal(7)));
    }

    #[test]
    fn encode_decode_round_trips() {
        let mut map = ShardMap::uniform(4);
        map.split(2, 3).unwrap();
        map.merge(1).unwrap();
        let back = ShardMap::decode(&map.encode()).unwrap();
        assert_eq!(back, map);
    }

    #[test]
    fn decode_rejects_corruption() {
        let map = ShardMap::uniform(2);
        let mut bytes = map.encode();
        assert!(ShardMap::decode(&bytes[..bytes.len() - 1]).is_err());
        // Out-of-range ordinal.
        let last = bytes.len() - 1;
        bytes[last] = 200;
        assert!(ShardMap::decode(&bytes).is_err());
        assert!(ShardMap::decode(&[]).is_err());
    }

    #[test]
    fn router_epoch_guards_installs() {
        let router = ShardRouter::uniform(2);
        assert_eq!(router.epoch(), 0);
        let newer = ShardMap::concentrated(2);
        assert!(router.install(3, newer.clone()));
        assert_eq!(router.epoch(), 3);
        // Stale and equal epochs are rejected.
        assert!(!router.install(3, ShardMap::uniform(2)));
        assert!(!router.install(1, ShardMap::uniform(2)));
        assert_eq!(router.route(u64::MAX), 0, "concentrated map stays installed");
    }

    #[test]
    fn split_hot_targets_idle_sibling() {
        let router = ShardRouter::new(ShardMap::concentrated(3));
        let change = router.split_hot(0).unwrap();
        assert!(change.split);
        assert_eq!(change.from, 0);
        assert!(change.to == 1 || change.to == 2);
        assert_eq!(change.epoch, 1);
        assert_eq!(router.route(u64::MAX), change.to as usize);
    }

    #[test]
    fn merge_cold_idles_replica() {
        let router = ShardRouter::uniform(2);
        let change = router.merge_cold(1).unwrap();
        assert!(!change.split);
        let (_, map) = router.snapshot();
        assert_eq!(map.width_of(1), 0);
        assert_eq!(map.width_of(0), 1u128 << 64);
    }

    #[test]
    fn every_key_has_exactly_one_owner_after_mutations() {
        let mut map = ShardMap::uniform(4);
        map.split(0, 2).unwrap();
        map.split(3, 1).unwrap();
        map.merge(0).unwrap();
        // Probe boundaries: starts, starts-1, extremes.
        let mut probes = vec![0u64, u64::MAX, 1, u64::MAX - 1];
        for r in map.ranges() {
            probes.push(r.start);
            probes.push(r.start.wrapping_sub(1));
            probes.push(r.start.wrapping_add(1));
        }
        for key in probes {
            let o = map.owner_of(key);
            assert!(o < map.members());
        }
        // Widths sum to the full space.
        let total: u128 = (0..map.members()).map(|o| map.width_of(o)).sum();
        assert_eq!(total, 1u128 << 64);
    }
}

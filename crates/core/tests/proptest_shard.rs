//! Property tests for key-partitioned sharding: the key space is a
//! total partition of `u64` among the replica group — every key has
//! exactly one owner, and split/merge churn never breaks that.

use gates_core::{shard_key, ShardMap, ShardRouter};
use proptest::prelude::*;

/// One random resharding operation.
#[derive(Debug, Clone, Copy)]
enum Op {
    Split(u32),
    Merge(u32),
}

fn op_strategy(n: u32) -> impl Strategy<Value = Op> {
    (0..n, any::<bool>()).prop_map(|(o, split)| if split { Op::Split(o) } else { Op::Merge(o) })
}

proptest! {
    #[test]
    fn every_key_has_exactly_one_owner(
        n in 1usize..16,
        keys in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        let map = ShardMap::uniform(n);
        prop_assert_eq!(map.members(), n as u32);
        for &k in &keys {
            prop_assert!(map.owner_of(k) < n as u32, "key {k:#x} routed out of range");
        }
        // The range list is a partition: starts strictly increase from 0,
        // so lookup by binary search finds one and only one range.
        let ranges = map.ranges();
        prop_assert_eq!(ranges[0].start, 0, "first range must cover key 0");
        for w in ranges.windows(2) {
            prop_assert!(w[0].start < w[1].start, "range starts must strictly increase");
        }
    }

    #[test]
    fn partition_survives_split_and_merge_churn(
        n in 2usize..8,
        ops in proptest::collection::vec(op_strategy(8), 1..24),
        keys in proptest::collection::vec(any::<u64>(), 1..100),
    ) {
        let router = ShardRouter::uniform(n);
        for op in ops {
            // Individual operations may legitimately fail (narrow range,
            // last owner, unknown ordinal) — the invariant is that the
            // map stays a total partition either way.
            let _ = match op {
                Op::Split(o) => router.split_hot(o),
                Op::Merge(o) => router.merge_cold(o),
            };
            let (_, map) = router.snapshot();
            let ranges = map.ranges();
            prop_assert_eq!(ranges[0].start, 0);
            for w in ranges.windows(2) {
                prop_assert!(w[0].start < w[1].start);
            }
            for &k in &keys {
                let owner = map.owner_of(k);
                prop_assert!(owner < n as u32);
                prop_assert_eq!(router.route(k), owner as usize,
                    "router and map disagree on key {:#x}", k);
            }
        }
    }

    #[test]
    fn split_moves_keys_only_from_the_split_replica(
        n in 2usize..8,
        ordinal in 0u32..8,
        keys in proptest::collection::vec(any::<u64>(), 1..200),
    ) {
        if (ordinal as usize) >= n {
            return Ok(());
        }
        let router = ShardRouter::uniform(n);
        let before: Vec<u32> = keys.iter().map(|&k| router.snapshot().1.owner_of(k)).collect();
        let Ok(change) = router.split_hot(ordinal) else { return Ok(()) };
        prop_assert_eq!(change.from, ordinal);
        let (_, after) = router.snapshot();
        for (&k, &was) in keys.iter().zip(&before) {
            let now = after.owner_of(k);
            if now != was {
                prop_assert_eq!(was, change.from, "key {:#x} stolen from a bystander", k);
                prop_assert_eq!(now, change.to, "key {:#x} handed to the wrong replica", k);
            }
        }
    }

    #[test]
    fn encode_decode_round_trips_after_churn(
        n in 1usize..8,
        ops in proptest::collection::vec(op_strategy(8), 0..12),
    ) {
        let router = ShardRouter::uniform(n);
        for op in ops {
            let _ = match op {
                Op::Split(o) => router.split_hot(o),
                Op::Merge(o) => router.merge_cold(o),
            };
        }
        let (_, map) = router.snapshot();
        let decoded = ShardMap::decode(&map.encode()).unwrap();
        prop_assert_eq!(decoded.ranges(), map.ranges());
        prop_assert_eq!(decoded.members(), map.members());
    }

    #[test]
    fn shard_key_is_deterministic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(shard_key(&bytes), shard_key(&bytes));
    }

    #[test]
    fn stale_installs_are_rejected(
        n in 2usize..6,
        splits in 1usize..4,
    ) {
        let router = ShardRouter::uniform(n);
        let (old_epoch, old_map) = router.snapshot();
        let mut did_split = false;
        for o in 0..splits as u32 {
            did_split |= router.split_hot(o % n as u32).is_ok();
        }
        if !did_split {
            return Ok(());
        }
        let (new_epoch, _) = router.snapshot();
        prop_assert!(new_epoch > old_epoch);
        prop_assert!(!router.install(old_epoch, old_map), "stale epoch must not install");
        prop_assert_eq!(router.epoch(), new_epoch);
    }
}

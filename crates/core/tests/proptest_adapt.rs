//! Property tests for the self-adaptation algorithm's invariants.

use gates_core::adapt::{phi1, phi2, phi3, AdaptationConfig, LoadTracker, ParamController};
use gates_core::{AdjustmentParameter, Direction};
use proptest::prelude::*;

proptest! {
    #[test]
    fn phi1_in_range_and_antisymmetric(t1 in 0u64..10_000, t2 in 0u64..10_000) {
        let v = phi1(t1, t2);
        prop_assert!((-1.0..=1.0).contains(&v));
        prop_assert!((phi1(t2, t1) + v).abs() < 1e-12, "phi1 is antisymmetric");
    }

    #[test]
    fn phi2_in_range(w in -100i64..100, window in 1usize..64) {
        let v = phi2(w, window);
        prop_assert!((-1.0..=1.0).contains(&v), "phi2({w},{window}) = {v}");
        prop_assert_eq!(v.signum() as i64 * w.signum(), w.signum() * w.signum(),
            "phi2 sign matches w sign");
    }

    #[test]
    fn phi3_in_range_and_monotone(
        d_bar in 0.0f64..200.0,
        expected in 1.0f64..99.0,
    ) {
        let capacity = 100.0;
        let v = phi3(d_bar, expected, capacity);
        prop_assert!((-1.0..=1.0).contains(&v));
        // Monotone: a longer queue is never "less loaded".
        let v2 = phi3(d_bar + 1.0, expected, capacity);
        prop_assert!(v2 >= v - 1e-12);
    }

    #[test]
    fn d_tilde_always_bounded_by_capacity(
        observations in proptest::collection::vec(0.0f64..150.0, 1..500),
        alpha in 0.1f64..0.99,
    ) {
        let cfg = AdaptationConfig { alpha, ..AdaptationConfig::default() };
        let capacity = cfg.capacity;
        let mut lt = LoadTracker::new(cfg);
        for d in observations {
            lt.observe(d);
            prop_assert!(lt.d_tilde().abs() <= capacity + 1e-9);
            prop_assert!(lt.d_tilde_norm().abs() <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn controller_value_always_within_declared_bounds(
        demands in proptest::collection::vec(-100.0f64..100.0, 1..300),
        init in 0.1f64..0.9,
    ) {
        let spec = AdjustmentParameter::new("p", init, 0.01, 1.0, 0.01, Direction::IncreaseSlowsDown)
            .unwrap();
        let mut c = ParamController::new(AdaptationConfig::default(), spec);
        for d in demands {
            let v = c.adapt(d);
            prop_assert!((0.01..=1.0 + 1e-12).contains(&v), "value {v} escaped bounds");
            // Quantization: value sits on the increment grid.
            let steps = (v - 0.01) / 0.01;
            prop_assert!((steps - steps.round()).abs() < 1e-6, "value {v} off grid");
        }
    }

    #[test]
    fn sustained_overload_eventually_reaches_min(
        noise in proptest::collection::vec(80.0f64..100.0, 200..300),
    ) {
        let spec = AdjustmentParameter::new("p", 0.5, 0.01, 1.0, 0.01, Direction::IncreaseSlowsDown)
            .unwrap();
        let mut c = ParamController::new(AdaptationConfig::default(), spec);
        for d in noise {
            c.adapt(d);
        }
        prop_assert!((c.value() - 0.01).abs() < 1e-9,
            "persistent overload must floor the volume parameter, got {}", c.value());
    }

    #[test]
    fn sustained_slack_eventually_reaches_max(
        noise in proptest::collection::vec(-100.0f64..-80.0, 200..300),
    ) {
        let spec = AdjustmentParameter::new("p", 0.5, 0.01, 1.0, 0.01, Direction::IncreaseSlowsDown)
            .unwrap();
        let mut c = ParamController::new(AdaptationConfig::default(), spec);
        for d in noise {
            c.adapt(d);
        }
        prop_assert!((c.value() - 1.0).abs() < 1e-9,
            "persistent slack must max the volume parameter, got {}", c.value());
    }

    #[test]
    fn every_policy_quantizes_within_declared_bounds(
        rounds in proptest::collection::vec((-100.0f64..100.0, 0u8..4), 1..200),
        min in 0.01f64..0.4,
        span in 0.2f64..1.5,
        init_frac in 0.0f64..1.0,
    ) {
        // The [`AdaptPolicy`] contract: whatever the policy proposes,
        // the controller's reported suggestion sits on the increment
        // grid inside the declared [min, max] — for every shipped
        // policy, under arbitrary demand and exception interleavings.
        use gates_core::adapt::{LoadException, PolicyKind};
        let max = min + span;
        let incr = 0.01;
        let init = min + init_frac * span;
        for kind in PolicyKind::all() {
            let spec = AdjustmentParameter::new(
                "p", init, min, max, incr, Direction::IncreaseSlowsDown,
            ).unwrap();
            let cfg = AdaptationConfig { policy: kind, ..AdaptationConfig::default() };
            let mut c = ParamController::new(cfg, spec);
            for &(d, ex) in &rounds {
                match ex {
                    1 => c.on_exception(LoadException::Overload),
                    2 => c.on_exception(LoadException::Underload),
                    3 => {
                        c.on_exception(LoadException::Overload);
                        c.on_exception(LoadException::Underload);
                    }
                    _ => {}
                }
                let v = c.adapt(d);
                prop_assert!(
                    (min - 1e-9..=max + 1e-9).contains(&v),
                    "{kind}: suggestion {v} escaped [{min}, {max}]"
                );
                // On the min-anchored increment grid — or clamped to the
                // max endpoint, which need not itself sit on the grid.
                let steps = (v - min) / incr;
                prop_assert!(
                    (steps - steps.round()).abs() < 1e-6 || (v - max).abs() < 1e-9,
                    "{kind}: suggestion {v} off the increment grid"
                );
            }
        }
    }

    #[test]
    fn tracker_exception_kinds_match_d_tilde_sign(
        observations in proptest::collection::vec(0.0f64..150.0, 1..300),
    ) {
        use gates_core::adapt::LoadException;
        let cfg = AdaptationConfig::default();
        let (lt1, lt2, capacity) = (cfg.lt1, cfg.lt2, cfg.capacity);
        let mut lt = LoadTracker::new(cfg);
        for d in observations {
            let ex = lt.observe(d);
            match ex {
                Some(LoadException::Overload) => prop_assert!(lt.d_tilde() > lt2 * capacity),
                Some(LoadException::Underload) => prop_assert!(lt.d_tilde() < lt1 * capacity),
                None => {
                    prop_assert!(lt.d_tilde() <= lt2 * capacity + 1e-9);
                    prop_assert!(lt.d_tilde() >= lt1 * capacity - 1e-9);
                }
            }
        }
    }
}

/// Deterministic replay of the checked-in regression seed for
/// `sustained_slack_eventually_reaches_max` (see the sibling
/// `.proptest-regressions` file): the shrunken case is ~200 rounds of
/// all-underload noise pinned at the boundary of the `-100..-80` range.
/// The seed file keeps proptest replaying it; this plain test keeps the
/// scenario covered even if that file is ever pruned.
#[test]
fn regression_all_underload_noise_reaches_max() {
    let spec =
        AdjustmentParameter::new("p", 0.5, 0.01, 1.0, 0.01, Direction::IncreaseSlowsDown).unwrap();
    let mut c = ParamController::new(AdaptationConfig::default(), spec);
    for _ in 0..207 {
        c.adapt(-80.0);
    }
    assert!(
        (c.value() - 1.0).abs() < 1e-9,
        "persistent underload must max the volume parameter, got {}",
        c.value()
    );
}

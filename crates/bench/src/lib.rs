//! # gates-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation (§5), plus ablation studies of the adaptation algorithm
//! and Criterion micro-benchmarks of the hot paths.
//!
//! | binary | paper artifact | what it prints |
//! |---|---|---|
//! | `fig5` | Figure 5 (table) | centralized vs. distributed count-samps: execution time and accuracy |
//! | `fig6` | Figure 6 | execution time, 5 versions × 4 bandwidths |
//! | `fig7` | Figure 7 | accuracy, same sweep |
//! | `fig8` | Figure 8 | sampling-factor trajectories under 5 processing costs |
//! | `fig9` | Figure 9 | sampling-factor trajectories under 5 generation rates |
//! | `ablation` | — (DESIGN.md §5) | adaptation design-choice sweeps |
//!
//! Every run uses the deterministic virtual-time engine, so the numbers
//! are identical across machines and invocations.

use std::path::PathBuf;
use std::sync::Arc;

use gates_apps::comp_steer::{self, CompSteerParams};
use gates_apps::count_samps::{self, CountSampsHandles, CountSampsParams};
use gates_core::report::RunReport;
use gates_core::trace::FlightRecorder;
use gates_engine::{DesEngine, RunOptions};
use gates_grid::{Deployer, ResourceRegistry};
use gates_sim::SimDuration;

/// A uniform cluster with one node per source site plus a central node.
pub fn count_samps_registry(sources: usize) -> ResourceRegistry {
    let mut sites: Vec<String> = (0..sources).map(|i| format!("site-{i}")).collect();
    sites.push("central".to_string());
    let refs: Vec<&str> = sites.iter().map(String::as_str).collect();
    ResourceRegistry::uniform_cluster(&refs)
}

/// Build, deploy and run a count-samps configuration to completion.
pub fn run_count_samps(params: &CountSampsParams) -> (RunReport, CountSampsHandles) {
    run_count_samps_with(params, RunOptions::default())
}

/// [`run_count_samps`] with explicit run options (e.g. a flight
/// recorder attached by [`TraceSink::begin`]).
pub fn run_count_samps_with(
    params: &CountSampsParams,
    opts: RunOptions,
) -> (RunReport, CountSampsHandles) {
    let (topology, handles) = count_samps::build(params);
    let registry = count_samps_registry(params.sources);
    let plan = Deployer::new().deploy(&topology, &registry).expect("placement");
    let mut engine = DesEngine::new(topology, &plan, opts).expect("engine");
    let report = engine.run_to_completion();
    (report, handles)
}

/// Build, deploy and run a comp-steer configuration for `secs` of
/// virtual time; returns the run report (trajectories live in it).
pub fn run_comp_steer(params: &CompSteerParams, secs: u64) -> RunReport {
    run_comp_steer_with(params, secs, RunOptions::default())
}

/// [`run_comp_steer`] with explicit run options (e.g. a flight
/// recorder attached by [`TraceSink::begin`]).
pub fn run_comp_steer_with(params: &CompSteerParams, secs: u64, opts: RunOptions) -> RunReport {
    let (topology, _handles) = comp_steer::build(params);
    let registry = ResourceRegistry::uniform_cluster(&["hpc", "analysis"]);
    let plan = Deployer::new().deploy(&topology, &registry).expect("placement");
    let mut engine = DesEngine::new(topology, &plan, opts).expect("engine");
    engine.run_for(SimDuration::from_secs(secs))
}

/// `--trace <path>` support shared by the fig binaries.
///
/// Each experiment run gets a fresh [`FlightRecorder`]; the per-run JSONL
/// streams are concatenated into one file so a single invocation yields a
/// single trace artifact, and a compact summary table per run is printed
/// at the end. When the flag is absent every method is a no-op, so the
/// binaries call `begin`/`end`/`finish` unconditionally.
pub struct TraceSink {
    inner: Option<TraceInner>,
}

struct TraceInner {
    path: PathBuf,
    current: Option<(String, Arc<FlightRecorder>)>,
    jsonl: String,
    summaries: Vec<String>,
}

impl TraceSink {
    /// Parse `--trace <path>` from the process arguments. Exits with an
    /// error when the flag is present without a path, or when an unknown
    /// flag is given (the fig binaries take no other arguments).
    pub fn from_env() -> TraceSink {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut it = args.iter();
        let mut inner = None;
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--trace" => match it.next() {
                    Some(path) => {
                        inner = Some(TraceInner {
                            path: PathBuf::from(path),
                            current: None,
                            jsonl: String::new(),
                            summaries: Vec::new(),
                        });
                    }
                    None => {
                        eprintln!("error: --trace needs a file path");
                        std::process::exit(2);
                    }
                },
                other => {
                    eprintln!("error: unknown flag {other:?} (supported: --trace <path>)");
                    std::process::exit(2);
                }
            }
        }
        TraceSink { inner }
    }

    /// Options for the next run: a fresh recorder when tracing, the plain
    /// defaults otherwise. `label` names the run in the final summary.
    pub fn begin(&mut self, label: &str) -> RunOptions {
        match &mut self.inner {
            Some(inner) => {
                let rec = Arc::new(FlightRecorder::new(1 << 20));
                inner.current = Some((label.to_string(), Arc::clone(&rec)));
                RunOptions::default().recorder(rec)
            }
            None => RunOptions::default(),
        }
    }

    /// Absorb the run started by the matching [`Self::begin`].
    pub fn end(&mut self) {
        let Some(inner) = &mut self.inner else { return };
        if let Some((label, rec)) = inner.current.take() {
            inner.jsonl.push_str(&rec.to_jsonl());
            inner
                .summaries
                .push(format!("-- trace: {label} --\n{}", rec.run_trace().summary_table()));
        }
    }

    /// Write the JSONL file and print the per-run summary tables.
    pub fn finish(self) {
        let Some(inner) = self.inner else { return };
        if let Err(e) = std::fs::write(&inner.path, &inner.jsonl) {
            eprintln!("error: cannot write trace {}: {e}", inner.path.display());
            std::process::exit(1);
        }
        println!();
        for s in &inner.summaries {
            println!("{s}");
        }
        println!("trace written to {}", inner.path.display());
    }
}

/// The sampler's sampling-rate trajectory from a comp-steer report.
pub fn sampling_trajectory(report: &RunReport) -> Vec<(f64, f64)> {
    report
        .stage("sampler")
        .and_then(|s| s.param("sampling_rate"))
        .map(|t| t.samples.clone())
        .unwrap_or_default()
}

/// Convergence summary of a trajectory: `(final tail mean, tail std,
/// time at which the series first stays within ±tol of the tail mean)`.
pub fn convergence_summary(samples: &[(f64, f64)], tail: usize, tol: f64) -> (f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, f64::NAN);
    }
    let tail_slice = &samples[samples.len().saturating_sub(tail)..];
    let mean = tail_slice.iter().map(|&(_, v)| v).sum::<f64>() / tail_slice.len() as f64;
    let var =
        tail_slice.iter().map(|&(_, v)| (v - mean).powi(2)).sum::<f64>() / tail_slice.len() as f64;
    let std = var.sqrt();
    // First time after which every sample stays within tolerance.
    let mut converged_at = samples.last().map(|&(t, _)| t).unwrap_or(0.0);
    for i in (0..samples.len()).rev() {
        if (samples[i].1 - mean).abs() > tol {
            break;
        }
        converged_at = samples[i].0;
    }
    (mean, std, converged_at)
}

/// Render a row-major table with a header and fixed-width numeric cells.
pub fn render_table(
    title: &str,
    col_names: &[String],
    rows: &[(String, Vec<f64>)],
    unit: &str,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let _ = write!(out, "{:<28}", "");
    for c in col_names {
        let _ = write!(out, "{c:>14}");
    }
    let _ = writeln!(out);
    for (name, cells) in rows {
        let _ = write!(out, "{name:<28}");
        for v in cells {
            let _ = write!(out, "{v:>14.2}");
        }
        let _ = writeln!(out);
    }
    if !unit.is_empty() {
        let _ = writeln!(out, "(values in {unit})");
    }
    out
}

/// Emit a CSV block (for plotting) to stdout after the table.
pub fn print_csv(name: &str, header: &[&str], rows: &[Vec<f64>]) {
    println!("-- csv:{name} --");
    println!("{}", header.join(","));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        println!("{}", cells.join(","));
    }
    println!("-- end csv --");
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates_apps::count_samps::Mode;

    #[test]
    fn harness_runs_a_tiny_experiment() {
        let params = CountSampsParams {
            sources: 2,
            items_per_source: 1_000,
            mode: Mode::Distributed { k: 50.0 },
            ..Default::default()
        };
        let (report, handles) = run_count_samps(&params);
        assert!(report.execution_secs() > 0.0);
        assert!(handles.accuracy(10).score > 0.0);
    }

    #[test]
    fn convergence_summary_detects_plateau() {
        let mut samples: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, i as f64 * 0.1)).collect();
        samples.extend((10..40).map(|i| (i as f64, 1.0)));
        let (mean, std, at) = convergence_summary(&samples, 20, 0.05);
        assert!((mean - 1.0).abs() < 1e-9);
        assert!(std < 1e-9);
        assert!((at - 10.0).abs() < 1e-9, "converged at t=10, got {at}");
    }

    #[test]
    fn convergence_summary_empty_is_safe() {
        let (mean, std, at) = convergence_summary(&[], 10, 0.1);
        assert_eq!(mean, 0.0);
        assert_eq!(std, 0.0);
        assert!(at.is_nan());
    }

    #[test]
    fn table_renders_all_cells() {
        let table =
            render_table("demo", &["a".into(), "b".into()], &[("row".into(), vec![1.0, 2.0])], "s");
        assert!(table.contains("demo"));
        assert!(table.contains("1.00"));
        assert!(table.contains("2.00"));
    }
}

//! Ablation studies of the self-adaptation algorithm (DESIGN.md §5).
//!
//! Each ablation runs the comp-steer processing-constraint scenario
//! (Figure 8, c = 10 ms/byte ⇒ theoretical sustainable sampling 0.625)
//! under a modified adaptation configuration and reports where the
//! sampling factor settles, how long it takes, and how much it
//! oscillates.
//!
//! Studied knobs:
//! * combine policy — our `MaxDemand` vs. the paper's literal additive
//!   Equation 4;
//! * σ-gain variability coupling κ (paper: "unsteady ⇒ larger steps");
//! * learning rate α of d̃;
//! * φ-factor weights (P1, P2, P3);
//! * φ2 window size W.
//!
//! ```sh
//! cargo run --release -p gates-bench --bin ablation
//! ```

use gates_apps::comp_steer::CompSteerParams;
use gates_bench::{convergence_summary, run_comp_steer, sampling_trajectory};
use gates_core::adapt::{AdaptationConfig, CombinePolicy};

fn run_case(label: &str, cfg: AdaptationConfig) -> (String, f64, f64, f64) {
    let params =
        CompSteerParams { adaptation_override: Some(cfg), ..CompSteerParams::figure8(10.0) };
    let report = run_comp_steer(&params, 400);
    let trajectory = sampling_trajectory(&report);
    let (mean, std, at) = convergence_summary(&trajectory, 50, 0.08);
    (label.to_string(), mean, std, at)
}

fn main() {
    println!("Adaptation ablations — comp-steer, 10 ms/byte (theory: settle near 0.625)\n");
    let base = AdaptationConfig::with_capacity(100.0);

    let mut results: Vec<(String, f64, f64, f64)> = Vec::new();

    results.push(run_case("baseline (MaxDemand)", base.clone()));
    results.push(run_case(
        "paper additive Eq.4",
        AdaptationConfig { combine: CombinePolicy::PaperAdditive, ..base.clone() },
    ));

    for kappa in [0.0, 1.0, 4.0] {
        results.push(run_case(
            &format!("sigma variability k={kappa}"),
            AdaptationConfig { sigma_variability: kappa, ..base.clone() },
        ));
    }

    for alpha in [0.5, 0.8, 0.95] {
        results.push(run_case(
            &format!("learning rate a={alpha}"),
            AdaptationConfig { alpha, ..base.clone() },
        ));
    }

    for (label, weights) in [
        ("weights lifetime-heavy", (0.6, 0.2, 0.2)),
        ("weights default", (0.2, 0.3, 0.5)),
        ("weights recent-heavy", (0.0, 0.2, 0.8)),
    ] {
        results.push(run_case(label, AdaptationConfig { weights, ..base.clone() }));
    }

    for window in [4usize, 16, 64] {
        results.push(run_case(
            &format!("phi2 window W={window}"),
            AdaptationConfig { window, ..base.clone() },
        ));
    }

    println!(
        "{:<28} {:>12} {:>12} {:>14}",
        "configuration", "settled at", "tail std", "converge t(s)"
    );
    for (label, mean, std, at) in &results {
        println!("{label:<28} {mean:>12.3} {std:>12.3} {at:>14.0}");
    }

    println!("\nreading guide:");
    println!("  settled at  — tail mean of the sampling factor (ideal ≈ 0.625, never ≫)");
    println!("  tail std    — oscillation amplitude at equilibrium (smaller is smoother)");
    println!("  converge t  — first time the series stays within +-0.08 of its tail mean");
}

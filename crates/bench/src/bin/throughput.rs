//! Data-plane throughput baseline, machine-readable.
//!
//! Measures the three layers the distributed runtime's hot path is made
//! of and emits the numbers as JSON (default `results/BENCH_PR3.json`)
//! in a stable schema — one `{"bench": ..., "value": ..., "unit": ...}`
//! row per measurement — so later perf PRs can diff against this file
//! instead of prose:
//!
//! * **CRC** — GB/s of the slice-by-8 [`gates_net::crc32`] next to a
//!   byte-at-a-time reference loop (the pre-PR implementation).
//! * **Codec** — encode / decode / round-trip MB/s of the frame codec
//!   over 64 B – 64 KiB payloads, next to a faithful copy of the pre-PR
//!   scratch-`Vec` codec (`*_prepr3_baseline` rows) kept here so the
//!   speedup is measured, not remembered.
//! * **Loopback dist data plane** — end-to-end packets/s of the
//!   distributed runtime's transport stack ([`Packet::encode_into`] →
//!   [`FrameStream`] → loopback TCP → [`Packet::from_frame`]), with the
//!   sender-loop write coalescing on and off.
//!
//! Flags: `--smoke` shrinks every measurement for CI (~a second total);
//! `--out <path>` overrides the output file.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use gates_core::Packet;
use gates_net::{
    crc32, decode_frame, encode_frame_into, Frame, FrameKind, FrameStream, FRAME_HEADER_LEN,
};

/// One emitted measurement row.
struct Row {
    bench: String,
    value: f64,
    unit: &'static str,
}

/// Run `work` repeatedly for at least `window`, returning iterations/sec.
/// Each call to `work` must perform one unit of the benchmarked job.
fn measure(window: Duration, mut work: impl FnMut()) -> f64 {
    // Warm up and calibrate a batch size so the clock is read rarely.
    let start = Instant::now();
    work();
    let one = start.elapsed().max(Duration::from_nanos(20));
    let batch = (Duration::from_millis(5).as_secs_f64() / one.as_secs_f64()).clamp(1.0, 1e7) as u64;
    let begin = Instant::now();
    let mut iters = 0u64;
    while begin.elapsed() < window {
        for _ in 0..batch {
            work();
        }
        iters += batch;
    }
    iters as f64 / begin.elapsed().as_secs_f64()
}

/// Deterministic pseudo-random payload (no RNG dependency needed).
fn payload(len: usize) -> Bytes {
    let mut v = Vec::with_capacity(len);
    let mut x = 0x9E37_79B9u32;
    for _ in 0..len {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        v.push((x >> 24) as u8);
    }
    Bytes::from(v)
}

// --- pre-PR3 codec, kept verbatim as the recorded baseline ------------
//
// This is the seed codec this PR replaced: byte-at-a-time CRC and a
// scratch `Vec` copy of the CRC region on both the encode and decode
// side. It exists only so `*_prepr3_baseline` rows measure the old cost
// on the same machine and in the same file as the new numbers.

mod prepr3 {
    use bytes::{Buf, BufMut, Bytes, BytesMut};
    use gates_net::{Frame, FrameKind, FRAME_HEADER_LEN};

    fn table() -> &'static [u32; 256] {
        use std::sync::OnceLock;
        static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
        TABLE.get_or_init(|| {
            let mut t = [0u32; 256];
            for (i, entry) in t.iter_mut().enumerate() {
                let mut crc = i as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
                }
                *entry = crc;
            }
            t
        })
    }

    pub fn crc32_bytewise(data: &[u8]) -> u32 {
        let t = table();
        let mut crc = 0xFFFF_FFFFu32;
        for &b in data {
            crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
        }
        !crc
    }

    pub fn encode_frame(frame: &Frame) -> Bytes {
        let mut buf = BytesMut::with_capacity(FRAME_HEADER_LEN + frame.payload.len());
        buf.put_u32(frame.payload.len() as u32);
        let mut crc_region = Vec::with_capacity(1 + 4 + 8 + frame.payload.len());
        crc_region.push(kind_to_u8(frame.kind));
        crc_region.extend_from_slice(&frame.stream_id.to_be_bytes());
        crc_region.extend_from_slice(&frame.seq.to_be_bytes());
        crc_region.extend_from_slice(&frame.payload);
        let crc = crc32_bytewise(&crc_region);
        buf.put_u8(kind_to_u8(frame.kind));
        buf.put_u32(frame.stream_id);
        buf.put_u64(frame.seq);
        buf.put_u32(crc);
        buf.put_slice(&frame.payload);
        buf.freeze()
    }

    pub fn decode_frame(buf: &mut BytesMut) -> Option<Frame> {
        if buf.len() < FRAME_HEADER_LEN {
            return None;
        }
        let payload_len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        let total = FRAME_HEADER_LEN + payload_len;
        if buf.len() < total {
            return None;
        }
        let kind = kind_from_u8(buf[4])?;
        let stored_crc = u32::from_be_bytes([buf[17], buf[18], buf[19], buf[20]]);
        let computed = {
            let mut region = Vec::with_capacity(13 + payload_len);
            region.extend_from_slice(&buf[4..17]);
            region.extend_from_slice(&buf[FRAME_HEADER_LEN..total]);
            crc32_bytewise(&region)
        };
        if stored_crc != computed {
            return None;
        }
        buf.advance(4);
        buf.advance(1);
        let stream_id = buf.get_u32();
        let seq = buf.get_u64();
        let _crc = buf.get_u32();
        let payload = buf.split_to(payload_len).freeze();
        Some(Frame { kind, stream_id, seq, payload })
    }

    fn kind_to_u8(k: FrameKind) -> u8 {
        match k {
            FrameKind::Data => 0,
            FrameKind::Summary => 1,
            FrameKind::Control => 2,
            FrameKind::Exception => 3,
            FrameKind::Eos => 4,
            FrameKind::Ack => 5,
        }
    }

    fn kind_from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            0 => FrameKind::Data,
            1 => FrameKind::Summary,
            2 => FrameKind::Control,
            3 => FrameKind::Exception,
            4 => FrameKind::Eos,
            5 => FrameKind::Ack,
            _ => return None,
        })
    }
}

// --- CRC benchmarks ---------------------------------------------------

fn crc_rows(window: Duration, buf_len: usize, rows: &mut Vec<Row>) {
    let data = payload(buf_len);
    let gib = buf_len as f64 / 1e9;
    let fast = measure(window, || {
        std::hint::black_box(crc32(std::hint::black_box(&data)));
    }) * gib;
    let slow = measure(window, || {
        std::hint::black_box(prepr3::crc32_bytewise(std::hint::black_box(&data)));
    }) * gib;
    rows.push(Row { bench: "crc32_slice8".into(), value: fast, unit: "GB/s" });
    rows.push(Row { bench: "crc32_prepr3_baseline_bytewise".into(), value: slow, unit: "GB/s" });
    rows.push(Row { bench: "crc32_speedup".into(), value: fast / slow, unit: "x" });
}

// --- codec benchmarks -------------------------------------------------

fn size_label(n: usize) -> String {
    if n >= 1024 {
        format!("{}KiB", n / 1024)
    } else {
        format!("{n}B")
    }
}

fn codec_rows(window: Duration, sizes: &[usize], rows: &mut Vec<Row>) {
    for &size in sizes {
        let frame = Frame { kind: FrameKind::Data, stream_id: 7, seq: 42, payload: payload(size) };
        let wire = (FRAME_HEADER_LEN + size) as f64 / 1e6;
        let label = size_label(size);

        // Encode: the new path reuses one long-lived buffer.
        let mut out = BytesMut::with_capacity(FRAME_HEADER_LEN + size);
        let enc = measure(window, || {
            out.clear();
            encode_frame_into(std::hint::black_box(&frame), &mut out);
            std::hint::black_box(out.len());
        }) * wire;
        let enc_old = measure(window, || {
            std::hint::black_box(prepr3::encode_frame(std::hint::black_box(&frame)));
        }) * wire;

        // Decode: both variants pay the same memcpy refilling the input
        // buffer, so the delta is the codec itself.
        let mut encoded = BytesMut::new();
        encode_frame_into(&frame, &mut encoded);
        let mut inbuf = BytesMut::with_capacity(encoded.len());
        let dec = measure(window, || {
            inbuf.clear();
            inbuf.extend_from_slice(&encoded);
            std::hint::black_box(decode_frame(&mut inbuf).expect("decode"));
        }) * wire;
        let dec_old = measure(window, || {
            inbuf.clear();
            inbuf.extend_from_slice(&encoded);
            std::hint::black_box(prepr3::decode_frame(&mut inbuf).expect("decode"));
        }) * wire;

        // Round trip: the acceptance metric (encode + decode per iter).
        let rt = measure(window, || {
            out.clear();
            encode_frame_into(std::hint::black_box(&frame), &mut out);
            inbuf.clear();
            inbuf.extend_from_slice(&out);
            std::hint::black_box(decode_frame(&mut inbuf).expect("decode"));
        }) * wire;
        let rt_old = measure(window, || {
            let bytes = prepr3::encode_frame(std::hint::black_box(&frame));
            inbuf.clear();
            inbuf.extend_from_slice(&bytes);
            std::hint::black_box(prepr3::decode_frame(&mut inbuf).expect("decode"));
        }) * wire;

        rows.push(Row { bench: format!("codec_encode_{label}"), value: enc, unit: "MB/s" });
        rows.push(Row {
            bench: format!("codec_encode_prepr3_baseline_{label}"),
            value: enc_old,
            unit: "MB/s",
        });
        rows.push(Row { bench: format!("codec_decode_{label}"), value: dec, unit: "MB/s" });
        rows.push(Row {
            bench: format!("codec_decode_prepr3_baseline_{label}"),
            value: dec_old,
            unit: "MB/s",
        });
        rows.push(Row { bench: format!("codec_roundtrip_{label}"), value: rt, unit: "MB/s" });
        rows.push(Row {
            bench: format!("codec_roundtrip_prepr3_baseline_{label}"),
            value: rt_old,
            unit: "MB/s",
        });
        rows.push(Row {
            bench: format!("codec_roundtrip_speedup_{label}"),
            value: rt / rt_old,
            unit: "x",
        });
    }
}

// --- loopback dist data plane ----------------------------------------

/// Pump `n` packets through the distributed runtime's transport stack
/// over loopback TCP and return end-to-end packets/s. `batch` > 1 uses
/// the coalesced queue/flush path (as the dist sender loop does);
/// `batch` == 1 flushes per frame (the pre-PR behavior).
fn loopback_pps(n: u64, payload_len: usize, batch: u64) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let reader = std::thread::spawn(move || {
        let (socket, _) = listener.accept().expect("accept");
        let mut fs = FrameStream::new(socket);
        let mut got = 0u64;
        while let Ok(Some(frame)) = fs.read_frame() {
            let packet = Packet::from_frame(&frame).expect("packet");
            if packet.is_eos() {
                break;
            }
            std::hint::black_box(packet.records);
            got += 1;
        }
        got
    });

    let body = payload(payload_len);
    let mut fs = FrameStream::new(TcpStream::connect(addr).expect("connect loopback"));
    let start = Instant::now();
    let mut queued = 0u64;
    for seq in 0..n {
        let packet = Packet::data(1, seq, 16, body.clone());
        packet.encode_into(fs.queue_buffer());
        queued += 1;
        if queued == batch {
            fs.flush_queued().expect("flush");
            queued = 0;
        }
    }
    Packet::eos(1, n).encode_into(fs.queue_buffer());
    fs.flush_queued().expect("final flush");
    let got = reader.join().expect("reader thread");
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(got, n, "receiver must see every packet");
    n as f64 / elapsed
}

fn dist_rows(n: u64, rows: &mut Vec<Row>) {
    // Headline end-to-end number at a realistic payload size.
    let coalesced_1k = loopback_pps(n, 1024, 32);
    rows.push(Row {
        bench: "dist_loopback_coalesced_1KiB".into(),
        value: coalesced_1k,
        unit: "packets/s",
    });
    // Coalescing comparison at a small payload, where per-frame write
    // syscalls dominate the cost and batching actually has room to win;
    // at 1 KiB the loopback memcpy hides the syscall savings.
    let coalesced = loopback_pps(n, 128, 32);
    let per_frame = loopback_pps(n, 128, 1);
    rows.push(Row {
        bench: "dist_loopback_coalesced_128B".into(),
        value: coalesced,
        unit: "packets/s",
    });
    rows.push(Row {
        bench: "dist_loopback_per_frame_flush_128B".into(),
        value: per_frame,
        unit: "packets/s",
    });
    rows.push(Row {
        bench: "dist_loopback_coalescing_speedup_128B".into(),
        value: coalesced / per_frame,
        unit: "x",
    });
}

// --- driver -----------------------------------------------------------

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("results/BENCH_PR3.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other:?} (supported: --smoke, --out <path>)");
                std::process::exit(2);
            }
        }
    }

    let window = if smoke { Duration::from_millis(30) } else { Duration::from_millis(400) };
    let crc_len = if smoke { 64 * 1024 } else { 4 * 1024 * 1024 };
    let sizes: &[usize] = if smoke { &[64, 4096] } else { &[64, 1024, 4096, 16 * 1024, 64 * 1024] };
    let loopback_n = if smoke { 5_000 } else { 200_000 };

    let mut rows = Vec::new();
    crc_rows(window, crc_len, &mut rows);
    codec_rows(window, sizes, &mut rows);
    dist_rows(loopback_n, &mut rows);

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}{sep}\n",
            r.bench, r.value, r.unit
        ));
    }
    json.push_str("]\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");

    println!("{:<44} {:>14} unit", "bench", "value");
    for r in &rows {
        println!("{:<44} {:>14.3} {}", r.bench, r.value, r.unit);
    }
    println!("\nwritten to {out}");
}

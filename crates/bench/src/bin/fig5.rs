//! Figure 5 (paper §5.2, "Benefits of Distributed Processing"):
//! centralized vs. distributed count-samps.
//!
//! Paper setup: 4 streams × 25,000 integers, 100 KB/s links to a central
//! machine, "top 10 most frequently occurring integers" query.
//! Paper result: centralized 257.5 s / 99% vs. distributed 180.8 s / 97%
//! — distributed processing is faster with a small accuracy loss.
//!
//! ```sh
//! cargo run --release -p gates-bench --bin fig5
//! # With a flight-recorder trace of both runs (JSONL):
//! cargo run --release -p gates-bench --bin fig5 -- --trace fig5.jsonl
//! ```

use gates_apps::count_samps::{CountSampsParams, Mode};
use gates_bench::{print_csv, run_count_samps_with, TraceSink};

fn main() {
    let mut trace = TraceSink::from_env();
    let base = CountSampsParams::default(); // 4 × 25k, 100 KB/s, top-10

    println!("Figure 5 — Benefits of Distributed Processing (4 sub-streams)");
    println!(
        "workload: {} sources x {} Zipf({}) integers over {} links\n",
        base.sources, base.items_per_source, base.zipf_s, base.bandwidth
    );

    let mut rows = Vec::new();
    for (label, mode) in
        [("Centralized", Mode::Centralized), ("Distributed", Mode::Distributed { k: 100.0 })]
    {
        let params = CountSampsParams { mode, ..base.clone() };
        let opts = trace.begin(label);
        let (report, handles) = run_count_samps_with(&params, opts);
        trace.end();
        let accuracy = handles.accuracy(params.top_k);
        let collector = report.stage("collector").unwrap();
        rows.push((
            label,
            report.execution_secs(),
            accuracy.score,
            collector.bytes_in as f64 / 1_000.0,
            collector.busy_time.as_secs_f64(),
        ));
    }

    println!(
        "{:<14} {:>16} {:>14} {:>14} {:>16}",
        "Processing", "Exec time (s)", "Accuracy", "WAN KB", "Central busy(s)"
    );
    for (label, secs, acc, kb, busy) in &rows {
        println!("{label:<14} {secs:>16.1} {acc:>14.1} {kb:>14.1} {busy:>16.1}");
    }
    let speedup = rows[0].1 / rows[1].1;
    let acc_loss = rows[0].2 - rows[1].2;
    println!("\ndistributed speedup: {speedup:.2}x, accuracy cost: {acc_loss:.1} points");
    println!("paper reported:      1.42x (257.5 s -> 180.8 s), 2 points (99 -> 97)");

    print_csv(
        "fig5",
        &["mode", "exec_s", "accuracy", "wan_kb", "central_busy_s"],
        &rows
            .iter()
            .enumerate()
            .map(|(i, r)| vec![i as f64, r.1, r.2, r.3, r.4])
            .collect::<Vec<_>>(),
    );
    trace.finish();
}

//! Chaos soak: the distributed runtime under deterministic fault
//! injection, machine-readable.
//!
//! Each drill runs the counting-samples pipeline on an in-process
//! coordinator plus three worker subprocesses (re-exec of this binary,
//! same pattern as the failover bench) with a seeded [`FaultPlan`]
//! active on every data and control link. Four regimes:
//!
//! * **loss** — 2% frame drop plus 1% duplication;
//! * **corrupt** — 0.5% single-bit flips (CRC skips and, for
//!   length-prefix hits, stream poison followed by reconnect);
//! * **partition** — worker `wc` cut off for 800 ms mid-run;
//! * **kitchen** — all of the above plus injected delays and
//!   connection resets at once.
//!
//! A drill passes when the run terminates under the hard per-drill
//! timeout either clean or *correctly* partial (every shortfall is
//! named in `lost_workers`). A run that outlives the timeout counts as
//! a hang — the headline robustness number, expected to be zero.
//!
//! On top of the per-regime drills the bench replays the loss regime
//! with the same seed and compares the two runs' `fault_injected`
//! event sets: the chaos plane promises identical casualties for
//! identical seeds, and `chaos_determinism_ok` records whether it
//! kept that promise. Recovery latency (each `reconnecting` →
//! `reconnected` pair across all drills) is reported as p50/p95.
//!
//! Output is JSON (default `results/BENCH_PR5.json`) in the PR 3
//! schema: one `{"bench": ..., "value": ..., "unit": ...}` row per
//! measurement. Flags: `--smoke` runs 3 drills per regime instead of
//! 10; `--out <path>` overrides the output file.

use std::collections::HashMap;
use std::io::Write as _;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use gates_apps as apps;
use gates_core::trace::{FlightRecorder, LinkEventKind, TraceEvent};
use gates_engine::{DistConfig, DistEngine, DistWorker, RunOptions};
use gates_grid::ApplicationRepository;
use gates_net::{FaultPlan, RetryPolicy};

/// A ~3 s counting-samples stream: long enough for mid-run faults
/// (and the partition window) to land while keeping a full 4×10-drill
/// soak under a few minutes. `flush_every=50` pushes ~120 summary
/// frames per remote link so even the 2% regimes inject several
/// faults per drill instead of rounding down to none.
const APP_XML: &str = r#"<application name="chaos-drill" repository="count-samps">
  <param name="sources" value="2"/>
  <param name="items_per_source" value="6000"/>
  <param name="rate" value="2000"/>
  <param name="mode" value="distributed"/>
  <param name="k" value="40"/>
  <param name="flush_every" value="50"/>
  <param name="bandwidth_kb" value="1000"/>
  <param name="seed" value="7"/>
</application>
"#;

/// Hard per-drill ceiling. A healthy drill ends in ~4-8 s even with a
/// partition; anything still running after this is wedged.
const DRILL_TIMEOUT: Duration = Duration::from_secs(60);

struct Row {
    bench: String,
    value: f64,
    unit: &'static str,
}

/// One fault regime of the soak matrix.
struct Regime {
    name: &'static str,
    spec: &'static str,
}

const REGIMES: [Regime; 4] = [
    Regime { name: "loss", spec: "seed=7,drop=0.02,dup=0.01" },
    Regime { name: "corrupt", spec: "seed=7,corrupt=0.005" },
    Regime { name: "partition", spec: "seed=7,partition=wc@1s+800ms" },
    Regime {
        name: "kitchen",
        spec: "seed=7,drop=0.02,corrupt=0.005,delay=5ms..40ms,dup=0.01,reset=0.002",
    },
];

/// What one drill produced.
enum DrillOutcome {
    /// The run finished under the timeout.
    Finished {
        clean: bool,
        faults: u64,
        /// `(node, link, detail)` of every `fault_injected` event.
        fault_events: Vec<(String, String, String)>,
        /// `reconnecting -> reconnected` latencies, milliseconds.
        recoveries_ms: Vec<f64>,
        /// Frames lost past repair. Asserted zero on clean drills: the
        /// at-least-once layer must absorb every injected drop.
        packets_lost: u64,
        /// Frames re-transmitted to repair injected faults.
        packets_replayed: u64,
        /// Duplicate frames discarded by receiver dedup.
        packets_deduped: u64,
        /// Microseconds senders spent stalled on a full credit window.
        backpressure_us: u64,
    },
    /// The coordinator was still running at the hard timeout.
    Hang,
}

fn spawn_worker(exe: &std::path::Path, name: &str, site: &str, addr: &str) -> Child {
    Command::new(exe)
        .args(["--worker", name, site, addr])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker subprocess")
}

/// Child-process entry (re-exec): one worker of the drill pipeline.
fn worker_main(name: &str, site: &str, coordinator: &str) -> ! {
    let mut repo = ApplicationRepository::new();
    apps::publish_all(&mut repo);
    let worker = DistWorker::new(name, coordinator).site(site);
    match worker.run(&repo) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker {name}: {e}");
            std::process::exit(1);
        }
    }
}

/// Run one drill under `plan`, enforcing the hard timeout.
fn run_drill(exe: &std::path::Path, plan: &FaultPlan) -> DrillOutcome {
    let mut repo = ApplicationRepository::new();
    apps::publish_all(&mut repo);

    let recorder = Arc::new(FlightRecorder::default());
    let opts = RunOptions::default().recorder(Arc::clone(&recorder) as _);
    let config = DistConfig::default()
        .drain_window(Duration::from_millis(1_000))
        .retry(RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(50),
            ..Default::default()
        })
        .checkpoint_every(8)
        .fault(plan.clone());
    let engine =
        DistEngine::bind(APP_XML, "127.0.0.1:0", 3, opts, config).expect("bind coordinator");
    let addr = engine.local_addr().expect("coordinator address").to_string();

    let mut workers = vec![
        spawn_worker(exe, "w0", "site-0", &addr),
        spawn_worker(exe, "w1", "site-1", &addr),
        spawn_worker(exe, "wc", "central", &addr),
    ];

    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let _ = tx.send(engine.run(&repo));
    });

    let result = rx.recv_timeout(DRILL_TIMEOUT);
    for w in &mut workers {
        match result {
            Ok(_) => {
                let _ = w.wait();
            }
            Err(_) => {
                // Wedged drill: reap the workers so the leaked
                // coordinator thread cannot keep the next drill's
                // subprocesses alive.
                let _ = w.kill();
                let _ = w.wait();
            }
        }
    }
    let report = match result {
        Ok(Ok(report)) => report,
        Ok(Err(e)) => panic!("coordinator run failed outright: {e}"),
        Err(_) => return DrillOutcome::Hang,
    };

    let events = recorder.snapshot();
    let mut fault_events = Vec::new();
    // Open `reconnecting` per (node, link), closed by the next
    // `reconnected` on the same link.
    let mut open: HashMap<(String, String), f64> = HashMap::new();
    let mut recoveries_ms = Vec::new();
    for e in &events {
        let TraceEvent::Link(l) = e else { continue };
        match l.kind {
            LinkEventKind::FaultInjected => {
                fault_events.push((l.node.clone(), l.link.clone(), l.detail.clone()));
            }
            LinkEventKind::Reconnecting => {
                open.entry((l.node.clone(), l.link.clone())).or_insert(l.t);
            }
            LinkEventKind::Reconnected => {
                if let Some(t0) = open.remove(&(l.node.clone(), l.link.clone())) {
                    recoveries_ms.push((l.t - t0).max(0.0) * 1e3);
                }
            }
            _ => {}
        }
    }

    let clean = report.lost_workers.is_empty();
    if clean {
        // No worker was given up on, so every injected drop and dup
        // must have been repaired by replay + dedup.
        assert_eq!(
            report.packets_lost, 0,
            "clean chaos drill lost {} packets; replay must repair injected drops",
            report.packets_lost
        );
    }

    DrillOutcome::Finished {
        clean,
        faults: report.faults_injected,
        fault_events,
        recoveries_ms,
        packets_lost: report.packets_lost,
        packets_replayed: report.packets_replayed,
        packets_deduped: report.packets_deduped,
        backpressure_us: report.backpressure_us,
    }
}

/// Percentile over a sorted-ascending slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--worker") {
        let [name, site, addr] = &args[1..] else {
            eprintln!("usage (internal): chaos --worker <name> <site> <coordinator>");
            std::process::exit(2);
        };
        worker_main(name, site, addr);
    }

    let mut smoke = false;
    let mut out = String::from("results/BENCH_PR5.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other:?} (supported: --smoke, --out <path>)");
                std::process::exit(2);
            }
        }
    }

    let exe = std::env::current_exe().expect("own executable path");
    let drills = if smoke { 3 } else { 10 };

    let mut rows: Vec<Row> = Vec::new();
    let mut all_recoveries: Vec<f64> = Vec::new();
    let mut determinism_traces: Vec<Vec<(String, String, String)>> = Vec::new();
    for regime in &REGIMES {
        let plan = FaultPlan::parse(regime.spec).expect("regime spec parses");
        let (mut clean, mut partial, mut hangs) = (0u32, 0u32, 0u32);
        let mut faults_total = 0u64;
        let (mut lost_total, mut replayed_total) = (0u64, 0u64);
        let (mut deduped_total, mut stalled_total) = (0u64, 0u64);
        for i in 0..drills {
            match run_drill(&exe, &plan) {
                DrillOutcome::Finished {
                    clean: ok,
                    faults,
                    fault_events,
                    recoveries_ms,
                    packets_lost,
                    packets_replayed,
                    packets_deduped,
                    backpressure_us,
                } => {
                    if ok {
                        clean += 1;
                    } else {
                        partial += 1;
                    }
                    faults_total += faults;
                    lost_total += packets_lost;
                    replayed_total += packets_replayed;
                    deduped_total += packets_deduped;
                    stalled_total += backpressure_us;
                    all_recoveries.extend(recoveries_ms);
                    // The first two loss drills double as the
                    // determinism pair: same seed, same casualties.
                    if regime.name == "loss" && determinism_traces.len() < 2 {
                        determinism_traces.push(fault_events);
                    }
                    eprintln!(
                        "{} drill {}/{}: {} ({} faults, {} lost / {} replayed / {} deduped)",
                        regime.name,
                        i + 1,
                        drills,
                        if ok { "clean" } else { "partial" },
                        faults,
                        packets_lost,
                        packets_replayed,
                        packets_deduped
                    );
                }
                DrillOutcome::Hang => {
                    hangs += 1;
                    eprintln!("{} drill {}/{}: HANG (timeout)", regime.name, i + 1, drills);
                }
            }
        }
        rows.push(Row {
            bench: format!("chaos_{}_clean", regime.name),
            value: clean as f64,
            unit: "runs",
        });
        rows.push(Row {
            bench: format!("chaos_{}_partial", regime.name),
            value: partial as f64,
            unit: "runs",
        });
        rows.push(Row {
            bench: format!("chaos_{}_hangs", regime.name),
            value: hangs as f64,
            unit: "runs",
        });
        rows.push(Row {
            bench: format!("chaos_{}_faults_mean", regime.name),
            value: faults_total as f64 / drills as f64,
            unit: "faults",
        });
        rows.push(Row {
            bench: format!("chaos_{}_packets_lost_total", regime.name),
            value: lost_total as f64,
            unit: "packets",
        });
        rows.push(Row {
            bench: format!("chaos_{}_replayed_mean", regime.name),
            value: replayed_total as f64 / drills as f64,
            unit: "packets",
        });
        rows.push(Row {
            bench: format!("chaos_{}_deduped_mean", regime.name),
            value: deduped_total as f64 / drills as f64,
            unit: "packets",
        });
        rows.push(Row {
            bench: format!("chaos_{}_backpressure_us_mean", regime.name),
            value: stalled_total as f64 / drills as f64,
            unit: "us",
        });
    }

    let determinism_ok = match determinism_traces.as_mut_slice() {
        [a, b] => {
            a.sort();
            b.sort();
            if a == b {
                1.0
            } else {
                eprintln!(
                    "determinism check FAILED: {} vs {} fault events (or differing sets)",
                    a.len(),
                    b.len()
                );
                0.0
            }
        }
        _ => 0.0, // a hang ate one of the pair runs
    };

    all_recoveries.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    rows.push(Row {
        bench: "chaos_recovery_ms_p50".into(),
        value: percentile(&all_recoveries, 50.0),
        unit: "ms",
    });
    rows.push(Row {
        bench: "chaos_recovery_ms_p95".into(),
        value: percentile(&all_recoveries, 95.0),
        unit: "ms",
    });
    rows.push(Row { bench: "chaos_determinism_ok".into(), value: determinism_ok, unit: "bool" });
    rows.push(Row { bench: "chaos_drills_per_regime".into(), value: drills as f64, unit: "runs" });

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}{sep}\n",
            r.bench, r.value, r.unit
        ));
    }
    json.push_str("]\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");

    println!("{:<36} {:>12} unit", "bench", "value");
    for r in &rows {
        println!("{:<36} {:>12.3} {}", r.bench, r.value, r.unit);
    }
    println!("\nwritten to {out}");
}

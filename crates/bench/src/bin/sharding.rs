//! Sharded-stage scaling benchmark, machine-readable.
//!
//! Exercises PR7's stage replication end-to-end and emits the numbers
//! as JSON (default `results/BENCH_PR7.json`) in the same stable
//! one-row-per-measurement schema as the earlier bench files:
//!
//! * **Replica scaling** — a keyed source feeds a hot aggregation stage
//!   (2 ms of modeled service per packet, plus real sketch inserts)
//!   replicated 1, 2 and 4 ways. Upstream hash-routing spreads packets
//!   over the replicas, each of which burns its service on its own pool
//!   worker, so packets/s must rise with the replica count. The
//!   `shard_scaling_4v1` row is the headline (target ≥ 2.5×).
//! * **Merge accuracy** — every replica ships its count-min, hyperloglog,
//!   misra-gries and P² summaries to a merger stage at end-of-stream.
//!   The merged result is compared against a single unsharded instance
//!   that saw the whole stream: count-min and hyperloglog must match
//!   exactly, misra-gries within its advertised bound, P² within a
//!   quantile band.
//! * **Live split drill** — 2 replicas start from a deliberately
//!   concentrated shard map (replica 0 owns almost the whole key
//!   space); mid-run the key range is split live via the group's shared
//!   router. The run must deliver every packet (no drops) and replica 1
//!   must see traffic after the split.
//!
//! Flags: `--smoke` shrinks every measurement for CI (~2 s total);
//! `--out <path>` overrides the output file.

use std::io::Write as _;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use gates_core::{
    shard_key, CostModel, Packet, ShardMap, SourceStatus, StageApi, StageBuilder, StreamProcessor,
    Topology,
};
use gates_engine::{RunOptions, ThreadedEngine};
use gates_grid::{Deployer, ResourceRegistry};
use gates_net::{Bandwidth, LinkSpec};
use gates_sim::rng::seeded;
use gates_sim::{SimDuration, SimTime};
use gates_streams::{CountMinSketch, HyperLogLog, MisraGries, P2Quantile, ZipfGenerator};

/// One emitted measurement row.
struct Row {
    bench: String,
    value: f64,
    unit: &'static str,
}

/// Sketch dimensions shared by every shard and the unsharded reference
/// (identical dimensions make count-min merges bit-exact).
const CM_WIDTH: usize = 256;
const CM_DEPTH: usize = 4;
const HLL_B: u32 = 10;
const MG_K: usize = 32;

fn fresh_sketches() -> (CountMinSketch, HyperLogLog, MisraGries, P2Quantile) {
    (
        CountMinSketch::new(CM_WIDTH, CM_DEPTH),
        HyperLogLog::new(HLL_B),
        MisraGries::new(MG_K),
        P2Quantile::new(0.5),
    )
}

/// Length-prefix each sketch's bytes into one summary payload.
fn encode_summary(
    cm: &CountMinSketch,
    hll: &HyperLogLog,
    mg: &MisraGries,
    p2: &P2Quantile,
) -> Vec<u8> {
    let mut out = Vec::new();
    for section in
        [cm.to_bytes(), hll.registers().to_vec(), mg.to_bytes(), p2.to_bytes()].into_iter()
    {
        out.extend_from_slice(&(section.len() as u32).to_le_bytes());
        out.extend_from_slice(&section);
    }
    out
}

fn split_sections(bytes: &[u8]) -> Vec<&[u8]> {
    let mut sections = Vec::new();
    let mut at = 0;
    while at + 4 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        at += 4;
        sections.push(&bytes[at..at + len]);
        at += len;
    }
    sections
}

/// Source: emits pre-generated keyed packets (32 little-endian u64
/// values each), then ends the stream. Throughput runs emit as fast as
/// backpressure allows; the split drill paces emission at the service
/// rate so packets are still upstream (and re-routable) when the live
/// split fires — hash-routing happens at send time, so a packet already
/// queued on a replica stays there.
struct KeyedSource {
    data: Arc<Vec<u64>>,
    values_per_packet: usize,
    seq: u64,
    total: u64,
    batch: u64,
    poll_every: SimDuration,
}
impl StreamProcessor for KeyedSource {
    fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
        let batch = self.batch.min(self.total - self.seq);
        for _ in 0..batch {
            let start = self.seq as usize * self.values_per_packet;
            let mut payload = Vec::with_capacity(8 * self.values_per_packet);
            for v in &self.data[start..start + self.values_per_packet] {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            api.emit(
                Packet::data(0, self.seq, self.values_per_packet as u32, Bytes::from(payload))
                    .with_key(shard_key(&self.seq.to_le_bytes())),
            );
            self.seq += 1;
        }
        if self.seq == self.total {
            SourceStatus::Done
        } else {
            SourceStatus::Continue { next_poll: self.poll_every }
        }
    }
}

/// The hot aggregation stage: sketches every value it sees, then ships
/// one summary packet downstream at end-of-stream.
struct ShardAgg {
    cm: CountMinSketch,
    hll: HyperLogLog,
    mg: MisraGries,
    p2: P2Quantile,
}
impl ShardAgg {
    fn new() -> Self {
        let (cm, hll, mg, p2) = fresh_sketches();
        ShardAgg { cm, hll, mg, p2 }
    }
}
impl StreamProcessor for ShardAgg {
    fn process(&mut self, p: Packet, _a: &mut StageApi) {
        for chunk in p.payload.chunks_exact(8) {
            let v = u64::from_le_bytes(chunk.try_into().unwrap());
            self.cm.insert(v);
            self.hll.insert(v);
            self.mg.insert(v);
            self.p2.insert(v as f64);
        }
    }
    fn on_eos(&mut self, api: &mut StageApi) {
        let summary = encode_summary(&self.cm, &self.hll, &self.mg, &self.p2);
        api.emit(Packet::data(1, 0, 1, Bytes::from(summary)));
    }
}

/// What the merger accumulated by end-of-run.
#[derive(Default)]
struct Merged {
    cm: Option<CountMinSketch>,
    hll: Option<HyperLogLog>,
    mg: Option<MisraGries>,
    p2: Option<P2Quantile>,
    summaries: u32,
}

/// The downstream merger: folds every replica's summary into one, using
/// the sketches' natural merge operations.
struct Merger(Arc<Mutex<Merged>>);
impl StreamProcessor for Merger {
    fn process(&mut self, p: Packet, _a: &mut StageApi) {
        let sections = split_sections(&p.payload);
        assert_eq!(sections.len(), 4, "summary packet must carry four sketches");
        let cm = CountMinSketch::from_bytes(sections[0]).expect("count-min decodes");
        let hll = HyperLogLog::from_registers(sections[1].to_vec()).expect("hll decodes");
        let mg = MisraGries::from_bytes(sections[2]).expect("misra-gries decodes");
        let p2 = P2Quantile::from_bytes(sections[3]).expect("quantile decodes");
        let mut m = self.0.lock().unwrap();
        m.summaries += 1;
        match &mut m.cm {
            Some(mine) => mine.merge(&cm).expect("same-shape merge"),
            None => m.cm = Some(cm),
        }
        match &mut m.hll {
            Some(mine) => mine.merge(&hll).expect("same-size merge"),
            None => m.hll = Some(hll),
        }
        match &mut m.mg {
            Some(mine) => mine.merge(&mg),
            None => m.mg = Some(mg),
        }
        match &mut m.p2 {
            Some(mine) => mine.merge(&p2).expect("same-quantile merge"),
            None => m.p2 = Some(p2),
        }
    }
}

/// Source → agg ×`replicas` (modeled `service_s` per packet) → merger.
/// Returns the topology and the merger's shared accumulator.
fn build(
    data: &Arc<Vec<u64>>,
    packets: u64,
    values_per_packet: usize,
    replicas: usize,
    service_s: f64,
    pace: Option<SimDuration>,
) -> (Topology, Arc<Mutex<Merged>>) {
    let merged = Arc::new(Mutex::new(Merged::default()));
    let mut t = Topology::new();
    let data = Arc::clone(data);
    let (batch, poll_every) = match pace {
        Some(every) => (1, every),
        None => (16, SimDuration::from_micros(100)),
    };
    let src = t
        .add_stage_raw(
            StageBuilder::new("src")
                .processor(move || KeyedSource {
                    data: Arc::clone(&data),
                    values_per_packet,
                    seq: 0,
                    total: packets,
                    batch,
                    poll_every,
                })
                .no_adaptation(),
        )
        .expect("add src");
    let agg = t
        .add_stage(
            StageBuilder::new("agg")
                .processor(ShardAgg::new)
                .cost(CostModel::per_packet(service_s))
                .queue_capacity(64)
                .no_adaptation(),
        )
        .expect("add agg");
    let sink_state = Arc::clone(&merged);
    let sink = t
        .add_stage(
            StageBuilder::new("merge")
                .processor(move || Merger(Arc::clone(&sink_state)))
                .no_adaptation(),
        )
        .expect("add merge");
    let fast = || LinkSpec::with_bandwidth(Bandwidth::mb_per_sec(1000.0)).blocking();
    t.connect(src, agg, fast());
    t.connect(agg, sink, fast());
    t.replicate("agg", replicas).expect("replicate agg");
    (t, merged)
}

fn deploy_and_opts(t: &Topology, replicas: usize) -> (gates_grid::DeploymentPlan, RunOptions) {
    let sites: Vec<String> = (0..t.stages().len()).map(|i| format!("s{i}")).collect();
    let site_refs: Vec<&str> = sites.iter().map(String::as_str).collect();
    let registry = ResourceRegistry::uniform_cluster(&site_refs);
    let plan = Deployer::new().deploy(t, &registry).expect("deploy");
    let opts = RunOptions::default().max_time(SimTime::from_secs_f64(120.0)).cores(replicas + 2);
    (plan, opts)
}

/// Packets a replica group processed, summed over its members.
fn group_packets_in(report: &gates_core::report::RunReport, replicas: usize) -> u64 {
    if replicas == 1 {
        return report.stage("agg").map(|s| s.packets_in).unwrap_or(0);
    }
    (0..replicas)
        .map(|i| report.stage(&format!("agg#{i}")).map(|s| s.packets_in).unwrap_or(0))
        .sum()
}

/// One throughput measurement: returns (packets/s, merged summaries).
fn run_shard(
    data: &Arc<Vec<u64>>,
    packets: u64,
    values_per_packet: usize,
    replicas: usize,
    service_s: f64,
) -> (f64, Merged) {
    let (t, merged) = build(data, packets, values_per_packet, replicas, service_s, None);
    let (plan, opts) = deploy_and_opts(&t, replicas);
    let begin = Instant::now();
    let report = ThreadedEngine::new(t, &plan, opts).expect("engine").run().expect("run");
    let wall = begin.elapsed().as_secs_f64();
    let seen = group_packets_in(&report, replicas);
    assert_eq!(seen, packets, "replica group must see every packet");
    assert_eq!(report.total_dropped(), 0, "blocking links must not drop");
    let m = std::mem::take(&mut *merged.lock().unwrap());
    assert_eq!(m.summaries as usize, replicas, "one summary per replica");
    (packets as f64 / wall, m)
}

/// The live split drill: 2 replicas, concentrated map, split mid-run.
/// Returns (delivered fraction, packets replica 1 saw).
fn run_split_drill(
    data: &Arc<Vec<u64>>,
    packets: u64,
    values_per_packet: usize,
    service_s: f64,
    split_after: Duration,
) -> (f64, u64) {
    // Pace emission at the service rate so the stream outlives the
    // split trigger and post-split packets route to the new owner.
    let pace = SimDuration::from_secs_f64(service_s);
    let (t, merged) = build(data, packets, values_per_packet, 2, service_s, Some(pace));
    // Start from a deliberately lopsided partition: replica 0 owns all
    // but a sliver of the key space, so the run begins hot on one
    // member — the situation the adaptation loop's split exists for.
    let router = Arc::clone(&t.groups()[0].router);
    let (epoch, _) = router.snapshot();
    assert!(router.install(epoch + 1, ShardMap::concentrated(2)), "install concentrated map");
    let (plan, opts) = deploy_and_opts(&t, 2);
    let engine = ThreadedEngine::new(t, &plan, opts).expect("engine");
    let splitter = {
        let router = Arc::clone(&router);
        std::thread::spawn(move || {
            std::thread::sleep(split_after);
            router.split_hot(0).expect("live split")
        })
    };
    let report = engine.run().expect("run");
    let change = splitter.join().expect("splitter thread");
    assert_eq!(change.from, 0, "split moves keys away from the hot replica");
    let seen = group_packets_in(&report, 2);
    let m = merged.lock().unwrap();
    assert_eq!(m.summaries, 2, "both replicas summarize");
    assert_eq!(report.total_dropped(), 0, "live split must not drop packets");
    let post_split = report.stage(&format!("agg#{}", change.to)).map(|s| s.packets_in).unwrap_or(0);
    (seen as f64 / packets as f64, post_split)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("results/BENCH_PR7.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other:?} (supported: --smoke, --out <path>)");
                std::process::exit(2);
            }
        }
    }

    // A Zipf-skewed value stream, generated once so every run (and the
    // unsharded reference) sees byte-identical data.
    let values_per_packet = 32;
    let (packets, service_s) = if smoke { (80u64, 1e-3) } else { (400u64, 2e-3) };
    let mut rng = seeded(7);
    let zipf = ZipfGenerator::new(500, 1.1);
    let data: Arc<Vec<u64>> = Arc::new(
        (0..packets as usize * values_per_packet).map(|_| zipf.sample(&mut rng)).collect(),
    );

    // The unsharded reference: one instance that saw the whole stream.
    let (mut ref_cm, mut ref_hll, mut ref_mg, mut ref_p2) = fresh_sketches();
    for &v in data.iter() {
        ref_cm.insert(v);
        ref_hll.insert(v);
        ref_mg.insert(v);
        ref_p2.insert(v as f64);
    }
    let mut sorted: Vec<u64> = data.to_vec();
    sorted.sort_unstable();
    let exact_median = sorted[sorted.len() / 2] as f64;

    let mut rows = Vec::new();
    let mut by_replicas = Vec::new();
    let mut merged4: Option<Merged> = None;
    for replicas in [1usize, 2, 4] {
        let (pps, m) = run_shard(&data, packets, values_per_packet, replicas, service_s);
        by_replicas.push(pps);
        rows.push(Row { bench: format!("shard_pps_replicas{replicas}"), value: pps, unit: "pps" });
        if replicas == 4 {
            merged4 = Some(m);
        }
    }
    rows.push(Row {
        bench: "shard_scaling_4v1".into(),
        value: by_replicas[2] / by_replicas[0],
        unit: "x",
    });

    // Merge accuracy of the 4-way sharded run against the reference.
    let m = merged4.expect("4-replica merge captured");
    let cm = m.cm.expect("merged count-min");
    let max_cm_err =
        (0..500u64).map(|v| cm.estimate(v).abs_diff(ref_cm.estimate(v))).max().unwrap_or(0);
    assert_eq!(max_cm_err, 0, "sharded count-min must match the unsharded sketch exactly");
    let hll = m.hll.expect("merged hll");
    assert_eq!(hll, ref_hll, "sharded hyperloglog union must reconstruct the unsharded state");
    let mg = m.mg.expect("merged misra-gries");
    for (v, _) in ref_mg.top_k(5) {
        let truth = data.iter().filter(|&&x| x == v).count() as u64;
        assert!(mg.count(v) <= truth, "merged misra-gries overcounts {v}");
        assert!(
            truth - mg.count(v) <= mg.error_bound(),
            "merged misra-gries beyond its bound for {v}"
        );
    }
    let p2 = m.p2.expect("merged quantile");
    let median = p2.value().expect("merged median");
    let band = sorted[sorted.len() / 4] as f64..=sorted[3 * sorted.len() / 4] as f64;
    assert!(band.contains(&median), "merged median {median} outside the interquartile band");
    rows.push(Row { bench: "shard_cm_max_abs_err_vs_unsharded".into(), value: 0.0, unit: "count" });
    rows.push(Row { bench: "shard_hll_state_matches_unsharded".into(), value: 1.0, unit: "bool" });
    rows.push(Row {
        bench: "shard_p2_median_abs_err".into(),
        value: (median - exact_median).abs(),
        unit: "value",
    });

    // Live split drill.
    let split_after = if smoke { Duration::from_millis(40) } else { Duration::from_millis(250) };
    let (delivered, post_split) =
        run_split_drill(&data, packets, values_per_packet, service_s, split_after);
    assert!((delivered - 1.0).abs() < f64::EPSILON, "split drill delivered fraction {delivered}");
    assert!(post_split > 0, "the split target must see traffic after the live split");
    rows.push(Row {
        bench: "live_split_delivered_fraction".into(),
        value: delivered,
        unit: "frac",
    });
    rows.push(Row {
        bench: "live_split_target_packets_in".into(),
        value: post_split as f64,
        unit: "packets",
    });

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}{sep}\n",
            r.bench, r.value, r.unit
        ));
    }
    json.push_str("]\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");

    println!("{:<44} {:>14} unit", "bench", "value");
    for r in &rows {
        println!("{:<44} {:>14.3} {}", r.bench, r.value, r.unit);
    }
    println!("\nwritten to {out}");
}

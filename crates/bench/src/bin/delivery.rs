//! Delivery-semantics bench: at-least-once accounting under fire,
//! machine-readable.
//!
//! Three measurements back the PR10 acceptance criteria:
//!
//! * **SIGKILL drills** — the PR4 failover scenario (kill the worker
//!   hosting the collector mid-run) repeated N times. Each drill runs
//!   the counting-samples pipeline on an in-process coordinator plus
//!   three re-exec'd worker subprocesses, extracts the detect /
//!   reassign / resume segments from the flight recorder, and asserts
//!   `packets_lost == 0`: every frame unacked at the kill must be
//!   replayed to the adopted stage.
//! * **Chaos drills** — the PR5 loss regime (`drop=0.02,dup=0.01`,
//!   seeded) repeated N times. Each drill asserts `packets_lost == 0`,
//!   demands dedup actually fired, and checks exact conservation from
//!   the run report's stage counters: the collector's `packets_in`
//!   must equal the summarizers' combined `packets_out` — injected
//!   duplicates must not inflate the count by even one frame.
//! * **Acked loopback throughput** — 1 KiB packets pumped over
//!   loopback TCP through the full PR10 send path: link sequence
//!   stamped per frame ([`Packet::encode_into_with_seq`]), the encoded
//!   frame retained in an [`AckWindow`] until the receiver's
//!   cumulative ack confirms it, and the sender stalling whenever the
//!   credit window fills. The PR8 raw-transport number
//!   (`dist_loopback_reactor_1KiB`, recorded in `BENCH_PR8.json`) is
//!   carried forward so the cost of at-least-once delivery is a ratio
//!   inside one file; acceptance wants it within 15%.
//!
//! Output: JSON rows (default `results/BENCH_PR10.json`) in the PR3
//! `{"bench", "value", "unit"}` schema. Flags: `--smoke` shrinks drill
//! counts and the throughput run for CI; `--out <path>` overrides the
//! output file.

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bytes::Bytes;
use gates_apps as apps;
use gates_core::trace::{FlightRecorder, LinkEventKind, TraceEvent};
use gates_core::Packet;
use gates_engine::{DistConfig, DistEngine, DistWorker, RunOptions};
use gates_grid::ApplicationRepository;
use gates_net::{AckWindow, FaultPlan, Frame, FrameKind, FrameStream, RetryPolicy};

/// A ~4 s counting-samples stream: the 1.2 s kill lands mid-run with
/// plenty of traffic still to move, and `flush_every=50` keeps enough
/// summary frames in flight that the loss regime's 2% drop rate hits
/// several frames per drill.
const APP_XML: &str = r#"<application name="delivery-drill" repository="count-samps">
  <param name="sources" value="2"/>
  <param name="items_per_source" value="8000"/>
  <param name="rate" value="2000"/>
  <param name="mode" value="distributed"/>
  <param name="k" value="40"/>
  <param name="flush_every" value="50"/>
  <param name="bandwidth_kb" value="1000"/>
  <param name="seed" value="7"/>
</application>
"#;

/// The PR5 regime the replay/dedup machinery exists for: pure frame
/// loss plus duplication, no corruption (which forces reconnects and
/// is measured separately by the chaos bench).
const LOSS_SPEC: &str = "seed=7,drop=0.02,dup=0.01";

/// PR8's recorded raw-transport loopback throughput at 1 KiB
/// (`dist_loopback_reactor_1KiB` in `BENCH_PR8.json`) — the pre-PR10
/// baseline the acked path is compared against.
const PRE_PR10_1KIB_PPS: f64 = 443_745.900;

/// Sender-side credit window / replay retention, matching the
/// `DistConfig` defaults the real data plane runs with.
const ACK_WINDOW: usize = 256;
const REPLAY_RETAIN: usize = 1024;

struct Row {
    bench: String,
    value: f64,
    unit: &'static str,
}

// --- drill harness (re-exec worker pattern, as failover/chaos) --------

fn spawn_worker(exe: &std::path::Path, name: &str, site: &str, addr: &str) -> Child {
    Command::new(exe)
        .args(["--worker", name, site, addr])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker subprocess")
}

/// Child-process entry (re-exec): one worker of the drill pipeline.
fn worker_main(name: &str, site: &str, coordinator: &str) -> ! {
    let mut repo = ApplicationRepository::new();
    apps::publish_all(&mut repo);
    let worker = DistWorker::new(name, coordinator).site(site);
    match worker.run(&repo) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker {name}: {e}");
            std::process::exit(1);
        }
    }
}

/// First link event of the given kind observed by `node` (empty = any).
fn event_t(events: &[TraceEvent], kind: LinkEventKind, node: &str) -> Option<f64> {
    events.iter().find_map(|e| match e {
        TraceEvent::Link(l) if l.kind == kind && (node.is_empty() || l.node == node) => Some(l.t),
        _ => None,
    })
}

fn drill_config() -> DistConfig {
    DistConfig::default()
        .drain_window(Duration::from_millis(1_000))
        .retry(RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(50),
            ..Default::default()
        })
        .checkpoint_every(8)
}

struct KillDrill {
    recovery_ms: f64,
    packets_replayed: u64,
    backpressure_us: u64,
}

/// SIGKILL the collector's worker 1.2 s in; the run must still finish
/// with zero packets lost, the replayed frames covering the gap.
fn run_kill_drill(exe: &std::path::Path) -> KillDrill {
    let mut repo = ApplicationRepository::new();
    apps::publish_all(&mut repo);

    let recorder = Arc::new(FlightRecorder::default());
    let opts = RunOptions::default().recorder(Arc::clone(&recorder) as _);
    let engine = DistEngine::bind(APP_XML, "127.0.0.1:0", 3, opts, drill_config())
        .expect("bind coordinator");
    let addr = engine.local_addr().expect("coordinator address").to_string();

    let mut survivors =
        vec![spawn_worker(exe, "w0", "site-0", &addr), spawn_worker(exe, "w1", "site-1", &addr)];
    let mut victim = spawn_worker(exe, "wc", "central", &addr);

    let run_started = Instant::now();
    let run = std::thread::spawn(move || engine.run(&repo));

    std::thread::sleep(Duration::from_millis(1_200));
    let kill_at = run_started.elapsed().as_secs_f64();
    victim.kill().expect("SIGKILL victim worker");
    let _ = victim.wait();

    let report = run.join().expect("coordinator thread").expect("coordinator run");
    for w in &mut survivors {
        let _ = w.wait();
    }

    assert!(
        report.lost_workers.iter().any(|l| l.worker == "wc"),
        "drill must report the killed worker; got {:?}",
        report.lost_workers
    );
    assert_eq!(
        report.packets_lost, 0,
        "SIGKILL drill lost {} packets; at-least-once delivery must replay them",
        report.packets_lost
    );

    let events = recorder.snapshot();
    // Recovery = kill -> the adopting survivor's `resumed` event. The
    // adopter stamps resumed on its own clock, which shares the
    // coordinator's run-start anchor to within spawn overhead.
    let t_resumed = event_t(&events, LinkEventKind::Resumed, "").expect("resumed event recorded");

    KillDrill {
        recovery_ms: (t_resumed - kill_at).max(0.0) * 1e3,
        packets_replayed: report.packets_replayed,
        backpressure_us: report.backpressure_us,
    }
}

struct ChaosDrill {
    packets_replayed: u64,
    packets_deduped: u64,
    backpressure_us: u64,
    /// Summarizers' combined `packets_out` and the collector's
    /// `packets_in`; conservation demands they match exactly.
    emitted: u64,
    arrived: u64,
}

impl ChaosDrill {
    fn conserved(&self) -> bool {
        self.emitted == self.arrived
    }
}

/// One loss-regime drill: seeded drop+dup on every link, no kills.
/// Must finish clean with zero loss and an exactly conserved count.
fn run_chaos_drill(exe: &std::path::Path, plan: &FaultPlan) -> ChaosDrill {
    let mut repo = ApplicationRepository::new();
    apps::publish_all(&mut repo);

    let opts = RunOptions::default();
    let config = drill_config().fault(plan.clone());
    let engine =
        DistEngine::bind(APP_XML, "127.0.0.1:0", 3, opts, config).expect("bind coordinator");
    let addr = engine.local_addr().expect("coordinator address").to_string();

    let mut workers = vec![
        spawn_worker(exe, "w0", "site-0", &addr),
        spawn_worker(exe, "w1", "site-1", &addr),
        spawn_worker(exe, "wc", "central", &addr),
    ];

    let report = engine.run(&repo).expect("coordinator run");
    for w in &mut workers {
        let _ = w.wait();
    }

    assert!(
        report.lost_workers.is_empty(),
        "loss-regime drill must not lose workers; got {:?}",
        report.lost_workers
    );
    assert_eq!(
        report.packets_lost, 0,
        "loss-regime drill lost {} packets; replay must repair injected drops",
        report.packets_lost
    );

    // Exact conservation from the report's own stage counters: the
    // summarizers' only out-edges are the remote links into the
    // collector, so every emitted frame must arrive exactly once —
    // injected duplicates must not inflate the count.
    let stage = |name: &str| {
        report
            .stages
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("stage {name} in report"))
    };
    let emitted = stage("summarizer-0").packets_out + stage("summarizer-1").packets_out;
    let arrived = stage("collector").packets_in;

    ChaosDrill {
        packets_replayed: report.packets_replayed,
        packets_deduped: report.packets_deduped,
        backpressure_us: report.backpressure_us,
        emitted,
        arrived,
    }
}

// --- acked loopback throughput ----------------------------------------

fn payload(len: usize) -> Bytes {
    let mut v = Vec::with_capacity(len);
    let mut x = 0x9E37_79B9u32;
    for _ in 0..len {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        v.push((x >> 24) as u8);
    }
    Bytes::from(v)
}

/// Pump `n` 1 KiB packets over loopback. With `acked` the full PR10
/// send path runs: per-frame link seq, frame retained in the ack
/// window, cumulative acks flowing back on the same socket, sender
/// stalling on a full credit window. Without it the pre-PR10 shape
/// runs — same encode, batch, and socket, no retention and no acks —
/// so the two numbers isolate the at-least-once overhead on the same
/// machine in the same process. Returns (packets/s, stall seconds).
fn loopback_pps(n: u64, payload_len: usize, acked: bool) -> (f64, f64) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let sender_sock = TcpStream::connect(addr).expect("connect loopback");
    let (server_sock, _) = listener.accept().expect("accept");

    let done = Arc::new(AtomicBool::new(false));
    let received = Arc::new(AtomicU64::new(0));

    // Receiver: deliver in seq order, ack cumulatively every 64 frames
    // (the sweep-batched cadence the real exchange uses).
    let rx_done = Arc::clone(&done);
    let rx_count = Arc::clone(&received);
    let ack_writer_sock = server_sock.try_clone().expect("clone server socket");
    let receiver = std::thread::spawn(move || {
        let mut fs = FrameStream::new(server_sock);
        let mut ack_fs = FrameStream::new(ack_writer_sock);
        let mut cursor = 0u64;
        while let Ok(Some(frame)) = fs.read_frame() {
            match frame.kind {
                FrameKind::Eos => {
                    if acked {
                        let ack = Frame {
                            kind: FrameKind::Ack,
                            stream_id: 0,
                            seq: cursor,
                            payload: Bytes::new(),
                        };
                        let _ = ack_fs.send(&ack);
                    }
                    rx_done.store(true, Ordering::Release);
                    break;
                }
                _ => {
                    if acked {
                        // Loopback TCP: no loss, so in-order arrival
                        // is an invariant, not a hope.
                        assert_eq!(frame.seq, cursor + 1, "loopback delivered out of order");
                        cursor = frame.seq;
                    }
                    rx_count.fetch_add(1, Ordering::Relaxed);
                    if acked && cursor.is_multiple_of(64) {
                        let ack = Frame {
                            kind: FrameKind::Ack,
                            stream_id: 0,
                            seq: cursor,
                            payload: Bytes::new(),
                        };
                        let _ = ack_fs.send(&ack);
                    }
                }
            }
        }
    });

    // Ack reader: drain cumulative acks into the shared window so the
    // sender's credit keeps opening.
    let window = Arc::new(Mutex::new(AckWindow::new(ACK_WINDOW, REPLAY_RETAIN)));
    let ack_window = Arc::clone(&window);
    let ack_reader_sock = sender_sock.try_clone().expect("clone sender socket");
    let ack_done = Arc::clone(&done);
    let ack_reader = std::thread::spawn(move || {
        let mut fs = FrameStream::new(ack_reader_sock);
        fs.set_read_timeout(Some(Duration::from_millis(50))).expect("read timeout");
        loop {
            match fs.read_frame() {
                Ok(Some(f)) if f.kind == FrameKind::Ack => {
                    ack_window.lock().expect("ack window").ack_delivered(f.seq);
                }
                Ok(Some(_)) => {}
                Ok(None) => break,
                Err(_) => {
                    if ack_done.load(Ordering::Acquire) {
                        break;
                    }
                }
            }
        }
    });

    let mut fs = FrameStream::new(sender_sock);
    let body = payload(payload_len);
    const BATCH: u64 = 32;
    let mut stalled = Duration::ZERO;
    let mut sent = 0u64;
    let started = Instant::now();
    while sent < n {
        let full = if acked {
            // One window lock per coalesced batch, exactly as the real
            // sender's ingest sweep does.
            let mut win = window.lock().expect("window");
            let mut batch = 0u64;
            while sent < n && batch < BATCH && !win.is_full() {
                let packet = Packet::data(1, sent, 16, body.clone());
                let seq = win.next_seq();
                let buf = fs.queue_buffer();
                let start = buf.len();
                packet.encode_into_with_seq(seq, buf);
                win.push(Bytes::from(buf[start..].to_vec()));
                sent += 1;
                batch += 1;
            }
            win.is_full()
        } else {
            let mut batch = 0u64;
            while sent < n && batch < BATCH {
                let packet = Packet::data(1, sent, 16, body.clone());
                packet.encode_into(fs.queue_buffer());
                sent += 1;
                batch += 1;
            }
            false
        };
        fs.flush_queued().expect("flush");
        if full && sent < n {
            // Credit exhausted: the queued bytes are already flushed,
            // so stall until the receiver's cumulative ack reopens it.
            let t0 = Instant::now();
            std::thread::sleep(Duration::from_micros(100));
            stalled += t0.elapsed();
        }
    }
    Packet::eos(1, n).encode_into(fs.queue_buffer());
    fs.flush_queued().expect("final flush");

    while !done.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(1));
    }
    let elapsed = started.elapsed().as_secs_f64();
    receiver.join().expect("receiver thread");
    ack_reader.join().expect("ack reader thread");
    assert_eq!(received.load(Ordering::Relaxed), n, "receiver must see every packet");

    (n as f64 / elapsed, stalled.as_secs_f64())
}

/// Percentile over a sorted-ascending slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--worker") {
        let [name, site, addr] = &args[1..] else {
            eprintln!("usage (internal): delivery --worker <name> <site> <coordinator>");
            std::process::exit(2);
        };
        worker_main(name, site, addr);
    }

    let mut smoke = false;
    let mut out = String::from("results/BENCH_PR10.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other:?} (supported: --smoke, --out <path>)");
                std::process::exit(2);
            }
        }
    }

    let exe = std::env::current_exe().expect("own executable path");
    let drills = if smoke { 2 } else { 6 };

    let mut rows: Vec<Row> = Vec::new();

    // SIGKILL drills: zero loss across a real failover.
    let mut recoveries: Vec<f64> = Vec::new();
    let (mut kill_replayed, mut kill_stalled) = (0u64, 0u64);
    for i in 0..drills {
        let d = run_kill_drill(&exe);
        eprintln!(
            "kill drill {}/{}: 0 lost, {} replayed, recovery {:.1} ms",
            i + 1,
            drills,
            d.packets_replayed,
            d.recovery_ms
        );
        recoveries.push(d.recovery_ms);
        kill_replayed += d.packets_replayed;
        kill_stalled += d.backpressure_us;
    }
    recoveries.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    rows.push(Row {
        bench: "delivery_failover_packets_lost_total".into(),
        value: 0.0, // asserted per drill; a loss panics the bench
        unit: "packets",
    });
    rows.push(Row {
        bench: "delivery_failover_replayed_mean".into(),
        value: kill_replayed as f64 / drills as f64,
        unit: "packets",
    });
    rows.push(Row {
        bench: "delivery_failover_recovery_ms_p50".into(),
        value: percentile(&recoveries, 50.0),
        unit: "ms",
    });
    rows.push(Row {
        bench: "delivery_failover_recovery_ms_p95".into(),
        value: percentile(&recoveries, 95.0),
        unit: "ms",
    });
    rows.push(Row {
        bench: "delivery_failover_backpressure_us_mean".into(),
        value: kill_stalled as f64 / drills as f64,
        unit: "us",
    });
    rows.push(Row { bench: "delivery_failover_drills".into(), value: drills as f64, unit: "runs" });

    // Loss-regime chaos drills: zero loss, dedup fired, count conserved.
    let plan = FaultPlan::parse(LOSS_SPEC).expect("loss spec parses");
    let (mut replayed, mut deduped, mut stalled) = (0u64, 0u64, 0u64);
    let mut conserved_all = true;
    for i in 0..drills {
        let d = run_chaos_drill(&exe, &plan);
        eprintln!(
            "chaos drill {}/{}: 0 lost, {} replayed, {} deduped, {} emitted -> {} arrived",
            i + 1,
            drills,
            d.packets_replayed,
            d.packets_deduped,
            d.emitted,
            d.arrived
        );
        replayed += d.packets_replayed;
        deduped += d.packets_deduped;
        stalled += d.backpressure_us;
        conserved_all &= d.conserved();
    }
    assert!(conserved_all, "chaos drills must conserve the packet count exactly");
    rows.push(Row {
        bench: "delivery_chaos_packets_lost_total".into(),
        value: 0.0, // asserted per drill
        unit: "packets",
    });
    rows.push(Row {
        bench: "delivery_chaos_replayed_mean".into(),
        value: replayed as f64 / drills as f64,
        unit: "packets",
    });
    rows.push(Row {
        bench: "delivery_chaos_deduped_mean".into(),
        value: deduped as f64 / drills as f64,
        unit: "packets",
    });
    rows.push(Row {
        bench: "delivery_chaos_backpressure_us_mean".into(),
        value: stalled as f64 / drills as f64,
        unit: "us",
    });
    rows.push(Row {
        bench: "delivery_chaos_conservation_ok".into(),
        value: if conserved_all { 1.0 } else { 0.0 },
        unit: "bool",
    });
    rows.push(Row { bench: "delivery_chaos_drills".into(), value: drills as f64, unit: "runs" });

    // Acked vs raw 1 KiB loopback throughput, measured back to back in
    // this process so the ratio isolates the ack-path overhead from
    // machine drift; the PR8 recorded number rides along for reference.
    let n: u64 = if smoke { 20_000 } else { 200_000 };
    let (raw_pps, _) = loopback_pps(n, 1024, false);
    let (pps, stall_s) = loopback_pps(n, 1024, true);
    eprintln!(
        "loopback: {pps:.0} acked vs {raw_pps:.0} raw packets/s \
         ({stall_s:.3} s stalled on credit)"
    );
    rows.push(Row { bench: "delivery_loopback_acked_1KiB".into(), value: pps, unit: "packets/s" });
    rows.push(Row {
        bench: "delivery_loopback_raw_1KiB".into(),
        value: raw_pps,
        unit: "packets/s",
    });
    rows.push(Row {
        bench: "delivery_loopback_acked_vs_raw".into(),
        value: pps / raw_pps,
        unit: "x",
    });
    rows.push(Row { bench: "delivery_loopback_stall_s_1KiB".into(), value: stall_s, unit: "s" });
    rows.push(Row {
        bench: "delivery_loopback_1KiB_pr8_recorded".into(),
        value: PRE_PR10_1KIB_PPS,
        unit: "packets/s",
    });
    rows.push(Row {
        bench: "delivery_loopback_acked_vs_pr8_recorded".into(),
        value: pps / PRE_PR10_1KIB_PPS,
        unit: "x",
    });

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}{sep}\n",
            r.bench, r.value, r.unit
        ));
    }
    json.push_str("]\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");

    println!("{:<44} {:>12} unit", "bench", "value");
    for r in &rows {
        println!("{:<44} {:>12.3} {}", r.bench, r.value, r.unit);
    }
    println!("\nwritten to {out}");
}

//! Extension experiment (beyond the paper's figures): self-adaptation
//! when conditions change *mid-run* — the scenario the paper's claim
//! "self-adaptation can help choose a balance between performance and
//! accuracy, even as resource availability is varied widely" implies
//! but never plots.
//!
//! comp-steer under a network constraint (10 KB/s link): the simulation
//! generates 20 KB/s for the first 200 s (sustainable sampling 0.5),
//! then bursts to 80 KB/s (sustainable 0.125), then falls back to
//! 5 KB/s (unconstrained ⇒ 1.0). The middleware must track all three
//! equilibria from a single run with no reconfiguration.
//!
//! ```sh
//! cargo run --release -p gates-bench --bin midrun
//! ```

use gates_apps::comp_steer::CompSteerParams;
use gates_bench::{print_csv, run_comp_steer, sampling_trajectory};

fn main() {
    let mut params = CompSteerParams::figure9(20.0);
    params.rate_schedule = vec![(200.0, 80_000.0), (400.0, 5_000.0)];
    let phases = [
        (0.0, 200.0, 0.5, "20 KB/s over 10 KB/s"),
        (200.0, 400.0, 0.125, "80 KB/s over 10 KB/s"),
        (400.0, 600.0, 1.0, "5 KB/s over 10 KB/s"),
    ];

    println!("Mid-run load change — one run, three generation rates\n");
    let report = run_comp_steer(&params, 600);
    let trajectory = sampling_trajectory(&report);

    println!("sampling factor over time (phase boundaries at 200s and 400s):");
    println!("{:>8} {:>10}", "t (s)", "p");
    for window in trajectory.chunks(20) {
        let (t, _) = window[0];
        let mean: f64 = window.iter().map(|&(_, v)| v).sum::<f64>() / window.len() as f64;
        let bar = "#".repeat((mean * 40.0).round() as usize);
        println!("{t:>8.0} {mean:>10.3}  {bar}");
    }

    println!("\nper-phase equilibria (mean of each phase's last 25%):");
    println!("{:>26} {:>10} {:>10}", "phase", "settled", "theory");
    let mut csv = Vec::new();
    for &(from, to, theory, label) in &phases {
        let tail_start = to - (to - from) * 0.25;
        let tail: Vec<f64> = trajectory
            .iter()
            .filter(|&&(t, _)| t >= tail_start && t < to)
            .map(|&(_, v)| v)
            .collect();
        let mean = tail.iter().sum::<f64>() / tail.len().max(1) as f64;
        println!("{label:>26} {mean:>10.3} {theory:>10.3}");
        csv.push(vec![from, to, mean, theory]);
    }
    println!("\nthe middleware re-converges after every change with no operator action —");
    println!("the paper's 'varied widely' claim, demonstrated in a single trajectory.");

    print_csv("midrun", &["phase_from_s", "phase_to_s", "settled", "theory"], &csv);
}

//! Figure 8 (paper §5.4, "Self-Adaptation For Processing Constraint"):
//! the sampling factor chosen by the middleware over time, for five
//! comp-steer versions whose post-processing cost is 1, 5, 8, 10 and
//! 20 ms/byte against a ≈160 B/s stream (initial sampling 0.13).
//!
//! Paper result: the first two versions converge to 1 (processing is not
//! a constraint); the other three converge to ≈0.65, ≈0.55 and ≈0.31 —
//! "the middleware is automatically able to choose the highest sampling
//! rate which still meets the real-time constraint on processing."
//!
//! ```sh
//! cargo run --release -p gates-bench --bin fig8
//! # With a flight-recorder trace of every run (JSONL):
//! cargo run --release -p gates-bench --bin fig8 -- --trace fig8.jsonl
//! ```

use gates_apps::comp_steer::CompSteerParams;
use gates_bench::{
    convergence_summary, print_csv, run_comp_steer_with, sampling_trajectory, TraceSink,
};

/// One version's run: (parameter value, trajectory, theoretical target).
type VersionRun = (f64, Vec<(f64, f64)>, f64);

fn main() {
    let mut trace = TraceSink::from_env();
    let costs_ms = [1.0, 5.0, 8.0, 10.0, 20.0];
    let paper_converged = [1.0, 1.0, 0.65, 0.55, 0.31];
    let horizon_secs = 400;

    println!("Figure 8 — Self-adaptation under a processing constraint");
    println!("generation ≈160 B/s, initial sampling 0.13, horizon {horizon_secs}s\n");

    let mut all: Vec<VersionRun> = Vec::new();
    for &c in &costs_ms {
        let params = CompSteerParams::figure8(c);
        let expected = params.expected_convergence();
        let opts = trace.begin(&format!("{c} ms/B"));
        let report = run_comp_steer_with(&params, horizon_secs, opts);
        trace.end();
        let trajectory = sampling_trajectory(&report);
        all.push((c, trajectory, expected));
    }

    // Trajectory table: one row per 25 s, one column per version.
    println!("sampling factor over time:");
    print!("{:>8}", "t (s)");
    for &c in &costs_ms {
        print!("{:>10}", format!("{c} ms/B"));
    }
    println!();
    let steps = all[0].1.len();
    for row in (0..steps).step_by(25) {
        print!("{:>8.0}", all[0].1[row].0);
        for (_, trajectory, _) in &all {
            print!("{:>10.3}", trajectory[row.min(trajectory.len() - 1)].1);
        }
        println!();
    }

    println!("\nconvergence summary:");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "cost", "converged", "tail std", "theory", "converge t(s)", "paper"
    );
    let mut csv = Vec::new();
    for (i, (c, trajectory, expected)) in all.iter().enumerate() {
        let (mean, std, at) = convergence_summary(trajectory, 50, 0.08);
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>12.3} {:>14.0} {:>12.2}",
            format!("{c} ms/B"),
            mean,
            std,
            expected,
            at,
            paper_converged[i]
        );
        csv.push(vec![*c, mean, std, *expected, at]);
    }
    println!("\n(theory = bottleneck capacity / generation rate; the paper's testbed");
    println!(" converged slightly below theory, ours slightly above — same ordering.)");

    print_csv(
        "fig8",
        &["cost_ms_per_byte", "converged", "tail_std", "theory", "converged_at_s"],
        &csv,
    );
    trace.finish();
}

//! Executor scaling benchmark, machine-readable.
//!
//! Exercises the work-stealing stage executor two ways and emits the
//! numbers as JSON (default `results/BENCH_PR6.json`) in the same
//! stable one-row-per-measurement schema as the PR3 throughput file:
//!
//! * **Wide pipeline scaling** — a 16-stage relay chain whose stages
//!   each burn 2 ms of modeled service time per packet, run on executor
//!   pools of 1, 2 and 4 cores. Service time occupies a pool worker by
//!   design, so end-to-end packets/s must rise with the core count
//!   (pipeline parallelism: with N cores, N stages burn service
//!   concurrently). The `pipeline16_scaling_4v1` row is the headline.
//! * **Two-stage overhead check** — a zero-service source→sink pair run
//!   once on the executor and once in `thread_per_stage` mode (the
//!   pre-executor scheduler, unchanged state machine). The ratio row
//!   shows the executor does not tax short pipelines that have no
//!   parallelism to win.
//!
//! Flags: `--smoke` shrinks every measurement for CI (~2 s total);
//! `--out <path>` overrides the output file.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use gates_core::{
    CostModel, Packet, SourceStatus, StageApi, StageBuilder, StreamProcessor, Topology,
};
use gates_engine::{RunOptions, ThreadedEngine};
use gates_grid::{Deployer, ResourceRegistry};
use gates_sim::{SimDuration, SimTime};

/// One emitted measurement row.
struct Row {
    bench: String,
    value: f64,
    unit: &'static str,
}

/// Source: emits `left` fixed-size packets as fast as the pipeline's
/// backpressure allows, then ends the stream.
struct Firehose {
    left: u64,
    batch: u64,
}
impl StreamProcessor for Firehose {
    fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
        if self.left == 0 {
            return SourceStatus::Done;
        }
        let n = self.batch.min(self.left);
        self.left -= n;
        for i in 0..n {
            api.emit(Packet::data(0, i, 1, Bytes::from_static(&[0u8; 64])));
        }
        if self.left == 0 {
            SourceStatus::Done
        } else {
            SourceStatus::Continue { next_poll: SimDuration::from_micros(100) }
        }
    }
}

/// Relay: forwards every packet; its service cost comes from the stage's
/// [`CostModel`], not from code here.
struct Relay;
impl StreamProcessor for Relay {
    fn process(&mut self, p: Packet, api: &mut StageApi) {
        api.emit(p);
    }
}

struct CountingSink(Arc<AtomicU64>);
impl StreamProcessor for CountingSink {
    fn process(&mut self, _p: Packet, _a: &mut StageApi) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// Source → `relays` relay stages (each `service_s` of modeled service
/// per packet) → counting sink, all on blocking high-bandwidth links.
fn build(packets: u64, relays: usize, service_s: f64) -> (Topology, Arc<AtomicU64>) {
    use gates_net::{Bandwidth, LinkSpec};
    let delivered = Arc::new(AtomicU64::new(0));
    let mut t = Topology::new();
    let src = t
        .add_stage_raw(
            StageBuilder::new("src")
                .processor(move || Firehose { left: packets, batch: 16 })
                .no_adaptation(),
        )
        .expect("add src");
    let mut prev = src;
    for i in 0..relays {
        let stage = t
            .add_stage(
                StageBuilder::new(format!("relay-{i}"))
                    .processor(|| Relay)
                    .cost(CostModel::per_packet(service_s))
                    .queue_capacity(32)
                    .no_adaptation(),
            )
            .expect("add relay");
        t.connect(prev, stage, LinkSpec::with_bandwidth(Bandwidth::mb_per_sec(1000.0)).blocking());
        prev = stage;
    }
    let sink_count = Arc::clone(&delivered);
    let sink = t
        .add_stage(
            StageBuilder::new("sink")
                .processor(move || CountingSink(Arc::clone(&sink_count)))
                .no_adaptation(),
        )
        .expect("add sink");
    t.connect(prev, sink, LinkSpec::with_bandwidth(Bandwidth::mb_per_sec(1000.0)).blocking());
    (t, delivered)
}

/// Run the pipeline on a given scheduler configuration and return
/// delivered packets per wall-clock second.
fn run_pps(packets: u64, relays: usize, service_s: f64, cores: usize, per_thread: bool) -> f64 {
    let (t, delivered) = build(packets, relays, service_s);
    let sites: Vec<String> = (0..t.stages().len()).map(|i| format!("s{i}")).collect();
    let site_refs: Vec<&str> = sites.iter().map(String::as_str).collect();
    let registry = ResourceRegistry::uniform_cluster(&site_refs);
    let plan = Deployer::new().deploy(&t, &registry).expect("deploy");
    let opts = RunOptions::default()
        .max_time(SimTime::from_secs_f64(120.0))
        .cores(cores)
        .thread_per_stage(per_thread);
    let begin = Instant::now();
    let report = ThreadedEngine::new(t, &plan, opts).expect("engine").run().expect("run");
    let wall = begin.elapsed().as_secs_f64();
    let got = delivered.load(Ordering::Relaxed);
    assert_eq!(got, packets, "sink must see every packet (dropped {:?})", report.total_dropped());
    got as f64 / wall
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("results/BENCH_PR6.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other:?} (supported: --smoke, --out <path>)");
                std::process::exit(2);
            }
        }
    }

    // 16 relay stages at 2 ms of modeled service each: 32 ms of serial
    // work per packet, so a 1-core pool is hard-capped near 31 pps and
    // every added core lifts the ceiling. Smoke keeps the shape but
    // shrinks the packet count and the service time.
    let relays = 16;
    let (wide_packets, service_s) = if smoke { (40, 1e-3) } else { (120, 2e-3) };
    let mut rows = Vec::new();
    let mut by_cores = Vec::new();
    for cores in [1usize, 2, 4] {
        let pps = run_pps(wide_packets, relays, service_s, cores, false);
        by_cores.push(pps);
        rows.push(Row { bench: format!("pipeline16_pps_cores{cores}"), value: pps, unit: "pps" });
    }
    rows.push(Row {
        bench: "pipeline16_scaling_4v1".into(),
        value: by_cores[2] / by_cores[0],
        unit: "x",
    });

    // Zero-service two-stage pair: scheduler overhead head-to-head
    // against the pre-executor thread-per-stage baseline.
    let short_packets = if smoke { 30_000 } else { 200_000 };
    let exec = run_pps(short_packets, 0, 0.0, 0, false);
    let baseline = run_pps(short_packets, 0, 0.0, 0, true);
    rows.push(Row { bench: "twostage_pps_executor".into(), value: exec, unit: "pps" });
    rows.push(Row {
        bench: "twostage_pps_thread_per_stage_baseline".into(),
        value: baseline,
        unit: "pps",
    });
    rows.push(Row {
        bench: "twostage_executor_vs_baseline".into(),
        value: exec / baseline,
        unit: "x",
    });

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}{sep}\n",
            r.bench, r.value, r.unit
        ));
    }
    json.push_str("]\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");

    println!("{:<44} {:>14} unit", "bench", "value");
    for r in &rows {
        println!("{:<44} {:>14.3} {}", r.bench, r.value, r.unit);
    }
    println!("\nwritten to {out}");
}

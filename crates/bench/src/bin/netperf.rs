//! Reactor data-plane benchmark: throughput, latency, and allocations.
//!
//! Pumps packets through the distributed runtime's transport stack over
//! loopback TCP and measures the PR8 receive path — nonblocking socket
//! driven by a [`Reactor`], frames cut out of recycling pool buffers by
//! a [`PooledReader`] — against the pre-PR8 blocking
//! [`FrameStream::read_frame`] path, which allocates a fresh payload
//! per frame.
//!
//! Three claims are measured, not asserted:
//!
//! * **Throughput** — end-to-end packets/s at 1 KiB and 128 B payloads,
//!   with the PR3-recorded coalesced number carried forward so the
//!   speedup is diffable inside one file.
//! * **Latency** — every packet carries its send time in the packet
//!   trailer (`created_at`); the receiver buckets the end-to-end delay
//!   into a log2-microsecond histogram, from which p50/p95/p99 rows are
//!   extracted. The histogram is fixed-size atomics, so recording it
//!   costs no allocations.
//! * **Allocations** — a counting `#[global_allocator]` snapshots the
//!   process-wide allocation count after warmup and at EOS; the
//!   steady-state rows report allocations per packet across the whole
//!   data plane (sender + reactor + receiver). The pooled path's row is
//!   the zero-alloc claim.
//!
//! Output: JSON rows (default `results/BENCH_PR8.json`) in the same
//! stable `{"bench", "value", "unit"}` schema as the PR3 baseline.
//! Flags: `--smoke` shrinks the run for CI; `--out <path>` overrides
//! the output file.

use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use gates_core::Packet;
use gates_net::{BufferPool, Directive, FrameStream, PooledReader, Reactor, Ready, Source};
use gates_sim::SimTime;

// --- counting allocator -----------------------------------------------

/// Global allocation counter: every `alloc`/`realloc` anywhere in the
/// process bumps it. Deallocations are free passes — the claim under
/// test is "no new allocations per packet", not "no frees".
static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: defers to `System` for every operation; the counter is a
// relaxed atomic side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// --- log2 latency histogram -------------------------------------------

const BUCKETS: usize = 48;

/// Fixed-size log2 histogram of microsecond latencies. Bucket `i` holds
/// samples in `[2^(i-1), 2^i)` µs (bucket 0 is `0..1` µs). Recording is
/// one atomic increment — no allocation, no locking.
struct Hist {
    buckets: [AtomicU64; BUCKETS],
}

impl Hist {
    fn new() -> Hist {
        Hist { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    fn record(&self, us: u64) {
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Approximate percentile: the upper bound (in µs) of the bucket
    /// holding the p-th sample.
    fn percentile(&self, p: f64) -> f64 {
        let total: u64 = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0.0;
        }
        let rank = (total as f64 * p).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 1.0 } else { (1u64 << i) as f64 };
            }
        }
        (1u64 << (BUCKETS - 1)) as f64
    }
}

// --- shared measurement state -----------------------------------------

/// Counters the receiver publishes while the run is in flight. The
/// warmup boundary snapshot (allocations + clock) is taken inside the
/// receive path the moment the warmup-th packet lands.
struct RunState {
    hist: Hist,
    got: AtomicU64,
    warmup: u64,
    allocs_at_warmup: AtomicU64,
    start_ns: AtomicU64,
    allocs_at_eos: AtomicU64,
    end_ns: AtomicU64,
    done: AtomicBool,
    epoch: Instant,
}

impl RunState {
    fn new(warmup: u64) -> RunState {
        RunState {
            hist: Hist::new(),
            got: AtomicU64::new(0),
            warmup,
            allocs_at_warmup: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            allocs_at_eos: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
            done: AtomicBool::new(false),
            epoch: Instant::now(),
        }
    }

    fn on_packet(&self, p: &Packet) {
        let now_us = self.epoch.elapsed().as_micros() as u64;
        self.hist.record(now_us.saturating_sub(p.created_at.as_micros()));
        let got = self.got.fetch_add(1, Ordering::Relaxed) + 1;
        if got == self.warmup {
            self.allocs_at_warmup.store(ALLOCS.load(Ordering::Relaxed), Ordering::Relaxed);
            self.start_ns.store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    fn on_eos(&self) {
        self.allocs_at_eos.store(ALLOCS.load(Ordering::Relaxed), Ordering::Relaxed);
        self.end_ns.store(self.epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
        self.done.store(true, Ordering::Relaxed);
    }

    /// (packets/s, allocations/packet) over the post-warmup window.
    fn results(&self, n: u64) -> (f64, f64) {
        let measured = n.saturating_sub(self.warmup).max(1);
        let secs = self
            .end_ns
            .load(Ordering::Relaxed)
            .saturating_sub(self.start_ns.load(Ordering::Relaxed)) as f64
            / 1e9;
        let allocs = self
            .allocs_at_eos
            .load(Ordering::Relaxed)
            .saturating_sub(self.allocs_at_warmup.load(Ordering::Relaxed));
        (measured as f64 / secs.max(1e-9), allocs as f64 / measured as f64)
    }
}

// --- the PR8 receive path: reactor + pooled reader --------------------

/// Reactor source mirroring the worker data plane's in-edge: fill pool
/// buffers from the socket on readiness, cut frames out as zero-copy
/// views, decode to packets.
struct RecvSource {
    stream: TcpStream,
    reader: PooledReader,
    state: Arc<RunState>,
}

impl Source for RecvSource {
    fn fd(&self) -> RawFd {
        self.stream.as_raw_fd()
    }

    fn service(&mut self, ready: Ready, _now: Instant) -> Directive {
        if !(ready.readable || ready.notified) {
            return Directive::read();
        }
        loop {
            match self.reader.next_frame() {
                Ok(Some(frame)) => {
                    let p = Packet::from_frame(&frame).expect("decode packet");
                    if p.is_eos() {
                        self.state.on_eos();
                        return Directive::close();
                    }
                    std::hint::black_box(p.records);
                    self.state.on_packet(&p);
                    continue;
                }
                Ok(None) => {}
                Err(e) => panic!("poisoned stream: {e}"),
            }
            match self.reader.fill(&mut (&self.stream)) {
                Ok(0) => {
                    self.state.on_eos();
                    return Directive::close();
                }
                Ok(_) => {}
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) => panic!("read: {e}"),
            }
        }
        Directive::read()
    }
}

// --- driver shared by both paths --------------------------------------

/// Deterministic pseudo-random payload (no RNG dependency needed).
fn payload(len: usize) -> Bytes {
    let mut v = Vec::with_capacity(len);
    let mut x = 0x9E37_79B9u32;
    for _ in 0..len {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        v.push((x >> 24) as u8);
    }
    Bytes::from(v)
}

/// Send `n` stamped packets (batch-coalesced, as the dist sender loop
/// does) and an EOS over a fresh loopback connection. The receiver is
/// chosen by `reactor`: the PR8 pooled path or the pre-PR8 blocking
/// path. Returns (packets/s, allocs/packet, p50, p95, p99).
fn loopback_run(n: u64, payload_len: usize, reactor_path: bool) -> (f64, f64, f64, f64, f64) {
    let warmup = n / 10;
    let state = Arc::new(RunState::new(warmup));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");

    // Connect the sender first so the accept below cannot block.
    let sender_sock = TcpStream::connect(addr).expect("connect loopback");
    let (server_sock, _) = listener.accept().expect("accept");

    let (reactor, reader_thread) = if reactor_path {
        let r = Reactor::spawn("netperf").expect("spawn reactor");
        r.register(Box::new(RecvSource {
            stream: server_sock,
            reader: PooledReader::new(BufferPool::default()),
            state: Arc::clone(&state),
        }));
        (Some(r), None)
    } else {
        let st = Arc::clone(&state);
        let t = std::thread::spawn(move || {
            let mut fs = FrameStream::new(server_sock);
            while let Ok(Some(frame)) = fs.read_frame() {
                let p = Packet::from_frame(&frame).expect("decode packet");
                if p.is_eos() {
                    st.on_eos();
                    break;
                }
                std::hint::black_box(p.records);
                st.on_packet(&p);
            }
        });
        (None, Some(t))
    };
    let mut sender_fs = FrameStream::new(sender_sock);

    let body = payload(payload_len);
    const BATCH: u64 = 32;
    let mut queued = 0u64;
    for seq in 0..n {
        let stamp = SimTime::from_micros(state.epoch.elapsed().as_micros() as u64);
        let packet = Packet::data(1, seq, 16, body.clone()).at(stamp);
        packet.encode_into(sender_fs.queue_buffer());
        queued += 1;
        if queued == BATCH {
            sender_fs.flush_queued().expect("flush");
            queued = 0;
        }
    }
    Packet::eos(1, n).encode_into(sender_fs.queue_buffer());
    sender_fs.flush_queued().expect("final flush");

    while !state.done.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(1));
    }
    if let Some(t) = reader_thread {
        t.join().expect("reader thread");
    }
    if let Some(r) = reactor {
        r.shutdown();
    }
    assert_eq!(state.got.load(Ordering::Relaxed), n, "receiver must see every packet");
    let (pps, allocs) = state.results(n);
    (
        pps,
        allocs,
        state.hist.percentile(0.50),
        state.hist.percentile(0.95),
        state.hist.percentile(0.99),
    )
}

// --- output -----------------------------------------------------------

struct Row {
    bench: String,
    value: f64,
    unit: &'static str,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("results/BENCH_PR8.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other:?} (supported: --smoke, --out <path>)");
                std::process::exit(2);
            }
        }
    }

    let n: u64 = if smoke { 10_000 } else { 200_000 };
    // PR3's recorded coalesced 1 KiB loopback number (results/
    // BENCH_PR3.json), carried forward so the acceptance ratio lives in
    // this file.
    const PR3_1KIB_PPS: f64 = 68_017.523;

    let mut rows: Vec<Row> = Vec::new();
    for &(size, label) in &[(1024usize, "1KiB"), (128usize, "128B")] {
        let (pps, allocs, p50, p95, p99) = loopback_run(n, size, true);
        let (base_pps, base_allocs, ..) = loopback_run(n, size, false);
        rows.push(Row {
            bench: format!("dist_loopback_reactor_{label}"),
            value: pps,
            unit: "packets/s",
        });
        rows.push(Row {
            bench: format!("dist_loopback_reactor_p50_{label}"),
            value: p50,
            unit: "us",
        });
        rows.push(Row {
            bench: format!("dist_loopback_reactor_p95_{label}"),
            value: p95,
            unit: "us",
        });
        rows.push(Row {
            bench: format!("dist_loopback_reactor_p99_{label}"),
            value: p99,
            unit: "us",
        });
        rows.push(Row {
            bench: format!("dist_loopback_reactor_allocs_per_packet_{label}"),
            value: allocs,
            unit: "allocs",
        });
        rows.push(Row {
            bench: format!("dist_loopback_blocking_{label}"),
            value: base_pps,
            unit: "packets/s",
        });
        rows.push(Row {
            bench: format!("dist_loopback_blocking_allocs_per_packet_{label}"),
            value: base_allocs,
            unit: "allocs",
        });
        rows.push(Row {
            bench: format!("dist_loopback_reactor_speedup_vs_blocking_{label}"),
            value: pps / base_pps,
            unit: "x",
        });
        if label == "1KiB" {
            rows.push(Row {
                bench: "dist_loopback_coalesced_1KiB_pr3_recorded".into(),
                value: PR3_1KIB_PPS,
                unit: "packets/s",
            });
            rows.push(Row {
                bench: "dist_loopback_reactor_speedup_vs_pr3_1KiB".into(),
                value: pps / PR3_1KIB_PPS,
                unit: "x",
            });
        }
    }

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}{sep}\n",
            r.bench, r.value, r.unit
        ));
    }
    json.push_str("]\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");

    println!("{:<52} {:>14} unit", "bench", "value");
    for r in &rows {
        println!("{:<52} {:>14.3} {}", r.bench, r.value, r.unit);
    }
    println!("\nwritten to {out}");
}

//! Extension experiment: heterogeneous compute resources.
//!
//! Paper §1 (goal 3): "the system monitors … the available computing
//! resources … and automatically adjusts the accuracy of the analysis."
//! The paper never varies node speed; this harness does. The same
//! comp-steer application (10 ms/byte analysis against a 160 B/s
//! stream) is deployed onto analysis nodes of speed ×0.5, ×1, ×2 and
//! ×4 — the middleware should discover a sustainable sampling factor
//! proportional to the node's speed, saturating at 1.0.
//!
//! This exercises the full grid path: the Deployer reads each node's
//! CPU factor from the resource directory, the engine divides service
//! times by it, and adaptation finds the new equilibrium — no
//! application change whatsoever.
//!
//! ```sh
//! cargo run --release -p gates-bench --bin hetero
//! ```

use gates_apps::comp_steer::{self, CompSteerParams};
use gates_bench::{convergence_summary, print_csv, sampling_trajectory};
use gates_engine::{DesEngine, RunOptions};
use gates_grid::{Deployer, NodeSpec, ResourceRegistry};
use gates_sim::SimDuration;

fn main() {
    let speeds = [0.5, 1.0, 2.0, 4.0];
    // 10 ms/byte at speed 1 ⇒ capacity 100 B/s against 160 B/s.
    let params = CompSteerParams::figure8(10.0);
    let base_capacity = 1.0 / params.cost_per_byte;

    println!("Heterogeneous analysis nodes — same app, four machine speeds\n");
    println!(
        "analysis cost {} ms/byte, generation {} B/s",
        params.cost_per_byte * 1_000.0,
        params.generation_rate
    );

    let mut csv = Vec::new();
    println!(
        "\n{:>10} {:>14} {:>12} {:>12} {:>12}",
        "speed", "capacity B/s", "theory", "settled", "tail std"
    );
    for &speed in &speeds {
        let (topology, _) = comp_steer::build(&params);
        let mut registry = ResourceRegistry::new();
        registry.register(NodeSpec::new("hpc-0", "hpc"));
        registry.register(NodeSpec::new("analysis-0", "analysis").speed(speed));
        let plan = Deployer::new().deploy(&topology, &registry).expect("placement");
        let mut engine = DesEngine::new(topology, &plan, RunOptions::default()).expect("engine");
        let report = engine.run_for(SimDuration::from_secs(400));

        let trajectory = sampling_trajectory(&report);
        let (settled, std, _) = convergence_summary(&trajectory, 50, 0.08);
        let capacity = base_capacity * speed;
        let theory = (capacity / params.generation_rate).min(1.0);
        println!("{speed:>10} {capacity:>14.0} {theory:>12.3} {settled:>12.3} {std:>12.3}");
        csv.push(vec![speed, capacity, theory, settled, std]);
    }

    println!("\nthe sustainable sampling factor scales with the node the Deployer picked —");
    println!("resource discovery and self-adaptation composing, with zero app changes.");
    print_csv("hetero", &["speed", "capacity_bps", "theory", "settled", "tail_std"], &csv);
}

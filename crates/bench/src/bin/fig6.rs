//! Figure 6 (paper §5.3, "Impact of Self Adaptation"): execution time of
//! five count-samps versions across four network configurations.
//!
//! Paper setup: 4 sources, final results at a central node. Versions:
//! fixed summary sizes k ∈ {40, 80, 120, 160} plus a self-adapting
//! version free to choose k ∈ [10, 240]. Bandwidths: 1 KB/s, 10 KB/s,
//! 100 KB/s, 1 MB/s.
//!
//! Expected shape (paper): execution time grows with k and shrinks with
//! bandwidth; the adaptive version "never had very high execution times".
//!
//! ```sh
//! cargo run --release -p gates-bench --bin fig6
//! # With a flight-recorder trace of all 20 runs (JSONL):
//! cargo run --release -p gates-bench --bin fig6 -- --trace fig6.jsonl
//! ```

use gates_apps::count_samps::{CountSampsParams, Mode};
use gates_bench::{print_csv, render_table, run_count_samps_with, TraceSink};
use gates_net::Bandwidth;

fn main() {
    let mut trace = TraceSink::from_env();
    let bandwidths = [1.0, 10.0, 100.0, 1_000.0];
    let versions: Vec<(String, Mode)> = [40.0, 80.0, 120.0, 160.0]
        .iter()
        .map(|&k| (format!("fixed k={k}"), Mode::Distributed { k }))
        .chain(std::iter::once((
            "adaptive k in [10,240]".to_string(),
            Mode::Adaptive { init: 100.0, min: 10.0, max: 240.0 },
        )))
        .collect();

    println!("Figure 6 — Execution time vs bandwidth, five versions\n");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, mode) in &versions {
        let mut cells = Vec::new();
        for &kb in &bandwidths {
            let params = CountSampsParams {
                mode: *mode,
                bandwidth: Bandwidth::kb_per_sec(kb),
                flush_every: 250,
                ..Default::default()
            };
            let opts = trace.begin(&format!("{label} @ {kb} KB/s"));
            let (report, _) = run_count_samps_with(&params, opts);
            trace.end();
            cells.push(report.execution_secs());
            csv.push(vec![
                match mode {
                    Mode::Distributed { k } => *k,
                    _ => -1.0,
                },
                kb,
                report.execution_secs(),
            ]);
        }
        rows.push((label.clone(), cells));
    }

    let cols: Vec<String> = bandwidths.iter().map(|kb| format!("{kb} KB/s")).collect();
    println!("{}", render_table("execution time (s)", &cols, &rows, "seconds"));

    println!("paper shape check:");
    println!(
        "  - time grows with k at low bandwidth (1 KB/s column, top to bottom of the fixed rows)"
    );
    println!("  - all versions converge at high bandwidth (1 MB/s column)");
    println!("  - the adaptive row avoids the worst case of the largest fixed k");

    print_csv("fig6", &["k", "bandwidth_kb", "exec_s"], &csv);
    trace.finish();
}

//! Figure 9 (paper §5.5, "Self-Adaptation for a Network Constraint"):
//! the sampling factor over time when the sampled stream crosses a
//! 10 KB/s link, for generation rates of 5, 10, 20, 40 and 80 KB/s
//! (initial sampling factor 0.01).
//!
//! Expected: the factor rises until the link saturates — toward 1.0 for
//! 5 and 10 KB/s, and toward ≈0.5, ≈0.25, ≈0.125 for 20, 40, 80 KB/s —
//! "the middleware is able to self-adapt effectively, and achieve
//! highest accuracy possible while maintaining the real-time processing
//! constraint."
//!
//! ```sh
//! cargo run --release -p gates-bench --bin fig9
//! # With a flight-recorder trace of every run (JSONL):
//! cargo run --release -p gates-bench --bin fig9 -- --trace fig9.jsonl
//! ```

use gates_apps::comp_steer::CompSteerParams;
use gates_bench::{
    convergence_summary, print_csv, run_comp_steer_with, sampling_trajectory, TraceSink,
};

/// One version's run: (parameter value, trajectory, theoretical target).
type VersionRun = (f64, Vec<(f64, f64)>, f64);

fn main() {
    let mut trace = TraceSink::from_env();
    let rates_kb = [5.0, 10.0, 20.0, 40.0, 80.0];
    let horizon_secs = 400;

    println!("Figure 9 — Self-adaptation under a network constraint");
    println!("10 KB/s link, initial sampling 0.01, horizon {horizon_secs}s\n");

    let mut all: Vec<VersionRun> = Vec::new();
    for &rate in &rates_kb {
        let params = CompSteerParams::figure9(rate);
        let expected = params.expected_convergence();
        let opts = trace.begin(&format!("{rate} KB/s"));
        let report = run_comp_steer_with(&params, horizon_secs, opts);
        trace.end();
        let trajectory = sampling_trajectory(&report);
        all.push((rate, trajectory, expected));
    }

    println!("sampling factor over time:");
    print!("{:>8}", "t (s)");
    for &r in &rates_kb {
        print!("{:>10}", format!("{r} KB/s"));
    }
    println!();
    let steps = all.iter().map(|(_, t, _)| t.len()).min().unwrap_or(0);
    for row in (0..steps).step_by(25) {
        print!("{:>8.0}", all[0].1[row].0);
        for (_, trajectory, _) in &all {
            print!("{:>10.3}", trajectory[row].1);
        }
        println!();
    }

    println!("\nconvergence summary:");
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>14}",
        "gen rate", "converged", "tail std", "theory", "converge t(s)"
    );
    let mut csv = Vec::new();
    for (rate, trajectory, expected) in &all {
        let (mean, std, at) = convergence_summary(trajectory, 50, 0.08);
        println!(
            "{:>10} {:>12.3} {:>12.3} {:>12.3} {:>14.0}",
            format!("{rate} KB/s"),
            mean,
            std,
            expected,
            at
        );
        csv.push(vec![*rate, mean, std, *expected, at]);
    }
    println!("\n(theory = link bandwidth / generation rate, capped at 1;");
    println!(" the paper's converged values were 1, 1, ≈0.5, ≈0.25, ≈0.125.)");

    print_csv("fig9", &["rate_kb", "converged", "tail_std", "theory", "converged_at_s"], &csv);
    trace.finish();
}

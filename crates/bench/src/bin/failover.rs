//! Failover recovery-time drill, machine-readable.
//!
//! Runs the distributed runtime's kill-a-worker drill repeatedly and
//! measures how long each recovery step takes, emitting the numbers as
//! JSON (default `results/BENCH_PR4.json`) in the same stable schema as
//! the PR 3 throughput baseline — one `{"bench": ..., "value": ...,
//! "unit": ...}` row per measurement.
//!
//! Each drill is the integration test's scenario made quantitative: an
//! in-process coordinator plus three worker *subprocesses* (re-exec of
//! this binary) run the counting-samples pipeline over loopback; the
//! worker hosting the collector is SIGKILLed mid-run; the flight
//! recorder then yields the step timings:
//!
//! * **detect** — kill to the coordinator's `worker_lost` event;
//! * **reassign** — `worker_lost` to the `reassigned` event (matchmaker
//!   re-placement plus `Reassign` broadcast);
//! * **resume** — the adopting worker's `restored` event to its
//!   `resumed` event (first data packet into the adopted stage).
//!
//! The headline `failover_recovery_ms` rows are p50/p95 of the per-drill
//! sum detect + reassign + resume. The sum is an approximation of
//! end-to-end recovery: detect and reassign share the coordinator's
//! clock and resume the adopting worker's, so the coordinator→worker
//! ship time of the `Reassign` frame (sub-millisecond on loopback) is
//! not counted.
//!
//! Flags: `--smoke` runs 3 drills instead of 10 for CI; `--out <path>`
//! overrides the output file.

use std::io::Write as _;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gates_apps as apps;
use gates_core::trace::{FlightRecorder, LinkEventKind, TraceEvent};
use gates_engine::{DistConfig, DistEngine, DistWorker, RunOptions};
use gates_grid::ApplicationRepository;
use gates_net::RetryPolicy;

/// A ~4 s counting-samples stream: long enough that the kill lands
/// mid-run and the survivors still have data to push through the
/// adopted collector afterwards.
const APP_XML: &str = r#"<application name="failover-drill" repository="count-samps">
  <param name="sources" value="2"/>
  <param name="items_per_source" value="8000"/>
  <param name="rate" value="2000"/>
  <param name="mode" value="distributed"/>
  <param name="k" value="40"/>
  <param name="bandwidth_kb" value="1000"/>
  <param name="seed" value="7"/>
</application>
"#;

struct Row {
    bench: String,
    value: f64,
    unit: &'static str,
}

/// Step timings of one successful drill, all in milliseconds, plus the
/// run's delivery-layer accounting.
struct Drill {
    detect_ms: f64,
    reassign_ms: f64,
    resume_ms: f64,
    /// Frames lost past repair — the at-least-once layer's headline,
    /// asserted zero for every drill.
    packets_lost: u64,
    /// Frames re-transmitted to repair the kill.
    packets_replayed: u64,
    /// Microseconds senders spent stalled on a full credit window.
    backpressure_us: u64,
}

impl Drill {
    fn recovery_ms(&self) -> f64 {
        self.detect_ms + self.reassign_ms + self.resume_ms
    }
}

fn spawn_worker(exe: &std::path::Path, name: &str, site: &str, addr: &str) -> Child {
    Command::new(exe)
        .args(["--worker", name, site, addr])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker subprocess")
}

/// Child-process entry: one `gates-cli worker` equivalent, in this
/// binary so the drill needs no other executable on disk.
fn worker_main(name: &str, site: &str, coordinator: &str) -> ! {
    let mut repo = ApplicationRepository::new();
    apps::publish_all(&mut repo);
    let worker = DistWorker::new(name, coordinator).site(site);
    match worker.run(&repo) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("worker {name}: {e}");
            std::process::exit(1);
        }
    }
}

/// First link event of the given kind observed by `node` (empty = any).
fn event_t(events: &[TraceEvent], kind: LinkEventKind, node: &str) -> Option<f64> {
    events.iter().find_map(|e| match e {
        TraceEvent::Link(l) if l.kind == kind && (node.is_empty() || l.node == node) => Some(l.t),
        _ => None,
    })
}

/// Run one kill drill and extract the step timings.
fn run_drill(exe: &std::path::Path, kill_after: Duration) -> Drill {
    let mut repo = ApplicationRepository::new();
    apps::publish_all(&mut repo);

    let recorder = Arc::new(FlightRecorder::default());
    let opts = RunOptions::default().recorder(Arc::clone(&recorder) as _);
    let config = DistConfig::default()
        .drain_window(Duration::from_millis(1_000))
        .retry(RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(50),
            ..Default::default()
        })
        .checkpoint_every(8);
    let engine =
        DistEngine::bind(APP_XML, "127.0.0.1:0", 3, opts, config).expect("bind coordinator");
    let addr = engine.local_addr().expect("coordinator address").to_string();

    let mut survivors =
        vec![spawn_worker(exe, "w0", "site-0", &addr), spawn_worker(exe, "w1", "site-1", &addr)];
    let mut victim = spawn_worker(exe, "wc", "central", &addr);

    // `run` captures its own start instant immediately, so this anchor
    // shares (within spawn overhead) the coordinator event clock.
    let run_started = Instant::now();
    let run = std::thread::spawn(move || engine.run(&repo));

    std::thread::sleep(kill_after);
    let kill_at = run_started.elapsed().as_secs_f64();
    victim.kill().expect("SIGKILL victim worker");
    let _ = victim.wait();

    let report = run.join().expect("coordinator thread").expect("coordinator run");
    for w in &mut survivors {
        let _ = w.wait();
    }

    assert!(
        report.lost_workers.iter().any(|l| l.worker == "wc"),
        "drill must report the killed worker; got {:?}",
        report.lost_workers
    );
    let lost_at = report.lost_workers.iter().find(|l| l.worker == "wc").expect("lost record").at;

    let events = recorder.snapshot();
    let t_lost = event_t(&events, LinkEventKind::WorkerLost, "coordinator")
        .expect("worker_lost event recorded");
    let t_reassigned = event_t(&events, LinkEventKind::Reassigned, "coordinator")
        .expect("reassigned event recorded");
    // Restored/resumed are stamped by the adopting worker; whichever
    // survivor adopted, both events share its clock.
    let adopter = events
        .iter()
        .find_map(|e| match e {
            TraceEvent::Link(l) if l.kind == LinkEventKind::Restored => Some(l.node.clone()),
            _ => None,
        })
        .expect("restored event recorded");
    let t_restored = event_t(&events, LinkEventKind::Restored, &adopter).expect("restored t");
    let t_resumed =
        event_t(&events, LinkEventKind::Resumed, &adopter).expect("resumed event recorded");

    // The delivery layer must repair the kill completely: unacked frames
    // replay to the adopted stage, so nothing is lost.
    assert_eq!(
        report.packets_lost, 0,
        "SIGKILL drill lost {} packets; at-least-once delivery must replay them",
        report.packets_lost
    );

    Drill {
        detect_ms: (lost_at - kill_at).max(0.0) * 1e3,
        reassign_ms: (t_reassigned - t_lost).max(0.0) * 1e3,
        resume_ms: (t_resumed - t_restored).max(0.0) * 1e3,
        packets_lost: report.packets_lost,
        packets_replayed: report.packets_replayed,
        backpressure_us: report.backpressure_us,
    }
}

/// Percentile over a sorted-ascending slice (nearest-rank).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--worker") {
        let [name, site, addr] = &args[1..] else {
            eprintln!("usage (internal): failover --worker <name> <site> <coordinator>");
            std::process::exit(2);
        };
        worker_main(name, site, addr);
    }

    let mut smoke = false;
    let mut out = String::from("results/BENCH_PR4.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other:?} (supported: --smoke, --out <path>)");
                std::process::exit(2);
            }
        }
    }

    let exe = std::env::current_exe().expect("own executable path");
    let drills = if smoke { 3 } else { 10 };
    let kill_after = Duration::from_millis(1_200);

    let mut runs: Vec<Drill> = Vec::with_capacity(drills);
    for i in 0..drills {
        let d = run_drill(&exe, kill_after);
        eprintln!(
            "drill {}/{}: detect {:.1} ms, reassign {:.1} ms, resume {:.1} ms (recovery {:.1} ms), \
             {} lost / {} replayed, {} us stalled",
            i + 1,
            drills,
            d.detect_ms,
            d.reassign_ms,
            d.resume_ms,
            d.recovery_ms(),
            d.packets_lost,
            d.packets_replayed,
            d.backpressure_us
        );
        runs.push(d);
    }

    let mut recovery: Vec<f64> = runs.iter().map(Drill::recovery_ms).collect();
    recovery.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mean = |f: fn(&Drill) -> f64| runs.iter().map(f).sum::<f64>() / runs.len() as f64;

    let rows = vec![
        Row {
            bench: "failover_recovery_ms_p50".into(),
            value: percentile(&recovery, 50.0),
            unit: "ms",
        },
        Row {
            bench: "failover_recovery_ms_p95".into(),
            value: percentile(&recovery, 95.0),
            unit: "ms",
        },
        Row { bench: "failover_detect_ms_mean".into(), value: mean(|d| d.detect_ms), unit: "ms" },
        Row {
            bench: "failover_reassign_ms_mean".into(),
            value: mean(|d| d.reassign_ms),
            unit: "ms",
        },
        Row { bench: "failover_resume_ms_mean".into(), value: mean(|d| d.resume_ms), unit: "ms" },
        Row {
            bench: "failover_packets_lost_total".into(),
            value: runs.iter().map(|d| d.packets_lost as f64).sum(),
            unit: "packets",
        },
        Row {
            bench: "failover_packets_replayed_mean".into(),
            value: mean(|d| d.packets_replayed as f64),
            unit: "packets",
        },
        Row {
            bench: "failover_backpressure_us_mean".into(),
            value: mean(|d| d.backpressure_us as f64),
            unit: "us",
        },
        Row { bench: "failover_drills".into(), value: drills as f64, unit: "runs" },
    ];

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}{sep}\n",
            r.bench, r.value, r.unit
        ));
    }
    json.push_str("]\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    let mut f = std::fs::File::create(&out).expect("create output file");
    f.write_all(json.as_bytes()).expect("write output");

    println!("{:<36} {:>12} unit", "bench", "value");
    for r in &rows {
        println!("{:<36} {:>12.3} {}", r.bench, r.value, r.unit);
    }
    println!("\nwritten to {out}");
}

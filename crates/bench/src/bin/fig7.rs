//! Figure 7 (paper §5.3): accuracy of the same five count-samps versions
//! across the same four network configurations as Figure 6.
//!
//! Expected shape (paper): accuracy grows with k; "the accuracy can be
//! quite low if a very small value of the adjustment parameters is
//! chosen"; the self-adapting version "never had very low accuracy".
//!
//! ```sh
//! cargo run --release -p gates-bench --bin fig7
//! # With a flight-recorder trace of all 20 runs (JSONL):
//! cargo run --release -p gates-bench --bin fig7 -- --trace fig7.jsonl
//! ```

use gates_apps::count_samps::{CountSampsParams, Mode};
use gates_bench::{print_csv, render_table, run_count_samps_with, TraceSink};
use gates_net::Bandwidth;

fn main() {
    let mut trace = TraceSink::from_env();
    let bandwidths = [1.0, 10.0, 100.0, 1_000.0];
    let versions: Vec<(String, Mode)> = [40.0, 80.0, 120.0, 160.0]
        .iter()
        .map(|&k| (format!("fixed k={k}"), Mode::Distributed { k }))
        .chain(std::iter::once((
            "adaptive k in [10,240]".to_string(),
            Mode::Adaptive { init: 100.0, min: 10.0, max: 240.0 },
        )))
        .collect();

    println!("Figure 7 — Accuracy vs bandwidth, five versions\n");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (label, mode) in &versions {
        let mut cells = Vec::new();
        for &kb in &bandwidths {
            let params = CountSampsParams {
                mode: *mode,
                bandwidth: Bandwidth::kb_per_sec(kb),
                flush_every: 250,
                ..Default::default()
            };
            let opts = trace.begin(&format!("{label} @ {kb} KB/s"));
            let (_, handles) = run_count_samps_with(&params, opts);
            trace.end();
            let acc = handles.accuracy(params.top_k);
            cells.push(acc.score);
            csv.push(vec![
                match mode {
                    Mode::Distributed { k } => *k,
                    _ => -1.0,
                },
                kb,
                acc.score,
                acc.recall,
                acc.fidelity,
            ]);
        }
        rows.push((label.clone(), cells));
    }

    let cols: Vec<String> = bandwidths.iter().map(|kb| format!("{kb} KB/s")).collect();
    println!("{}", render_table("accuracy (0-100)", &cols, &rows, "accuracy points"));

    println!("paper shape check:");
    println!("  - accuracy grows with k (read the fixed rows top to bottom)");
    println!("  - the adaptive row is never the worst in a column");

    print_csv("fig7", &["k", "bandwidth_kb", "accuracy", "recall", "fidelity"], &csv);
    trace.finish();
}

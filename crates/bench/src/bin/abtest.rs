//! A-B comparison of adaptation policies on one recorded scenario.
//!
//! Runs the comp-steer processing-constraint scenario (Figure 8,
//! c = 10 ms/byte ⇒ theoretical sustainable sampling 0.625) once per
//! [`PolicyKind`] — the paper's φ-blend, AIMD, and PID — with everything
//! else held fixed: same seeds, same topology, same virtual-time
//! engine, same observation cadence. Because the runs differ *only* in
//! the policy (the record/replay harness makes the same guarantee for
//! `gates-cli replay --policy`), every delta in the table is the
//! policy's doing.
//!
//! Reported per policy:
//! * **settled at** / **accuracy err** — tail mean of the sampling
//!   factor and its absolute error against the theoretical 0.625. An
//!   overshoot (≫ theory) means the policy ships data the downstream
//!   stage cannot process in real time.
//! * **converge t** — rise time: the first instant the trajectory
//!   reaches its own tail mean (it starts at p = 0.13, below every
//!   policy's equilibrium). The trajectories keep oscillating around
//!   the equilibrium — so does the paper's Figure 8 — which makes
//!   "stays inside a band forever" vacuous; time-to-first-reach is the
//!   probing-speed number that survives the oscillation.
//! * **tail std** — oscillation amplitude at equilibrium.
//! * **latency avg** — mean end-to-end packet latency at the analyzer
//!   (microseconds; local virtual-time links, so small by design).
//! * **adapt rounds** — rounds the stage's controller actually ran.
//!
//! Output: JSON rows (default `results/BENCH_PR9.json`) in the PR 3
//! schema; `--smoke` shrinks the run for CI.
//!
//! ```sh
//! cargo run --release -p gates-bench --bin abtest -- [--smoke] [--out <path>]
//! ```

use std::sync::Arc;

use gates_apps::comp_steer::CompSteerParams;
use gates_bench::{convergence_summary, run_comp_steer_with, sampling_trajectory};
use gates_core::adapt::{AdaptationConfig, PolicyKind};
use gates_core::trace::{FlightRecorder, TraceEvent};
use gates_engine::RunOptions;

struct Row {
    bench: String,
    value: f64,
    unit: &'static str,
}

struct Outcome {
    policy: PolicyKind,
    settled: f64,
    accuracy_err: f64,
    tail_std: f64,
    converge_s: f64,
    latency_avg_s: f64,
    adapt_rounds: u64,
}

fn run_policy(policy: PolicyKind, secs: u64, tail: usize) -> Outcome {
    let cfg = AdaptationConfig { policy, ..AdaptationConfig::with_capacity(100.0) };
    let params =
        CompSteerParams { adaptation_override: Some(cfg), ..CompSteerParams::figure8(10.0) };
    let expected = params.expected_convergence();
    let recorder = Arc::new(FlightRecorder::lossless());
    let opts = RunOptions::default().recorder(Arc::clone(&recorder) as _);
    let report = run_comp_steer_with(&params, secs, opts);
    let trajectory = sampling_trajectory(&report);
    let (mean, std, _) = convergence_summary(&trajectory, tail, 0.2);
    // Rise time: first instant the trajectory reaches its tail mean.
    let at = trajectory
        .iter()
        .find(|&&(_, v)| v >= mean)
        .map(|&(t, _)| t)
        .unwrap_or_else(|| trajectory.last().map(|&(t, _)| t).unwrap_or(0.0));
    let analyzer = report
        .stages
        .iter()
        .find(|s| s.name == "analyzer")
        .expect("comp-steer has an analyzer stage");
    let latency = if analyzer.latency.count() > 0 { analyzer.latency.mean() } else { 0.0 };
    let adapt_rounds = recorder
        .snapshot()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Adapt(a) if a.policy == policy.as_str()))
        .count() as u64;
    Outcome {
        policy,
        settled: mean,
        accuracy_err: (mean - expected).abs(),
        tail_std: std,
        converge_s: at,
        latency_avg_s: latency,
        adapt_rounds,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("results/BENCH_PR9.json");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => match it.next() {
                Some(path) => out = path.clone(),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag {other:?} (supported: --smoke, --out <path>)");
                std::process::exit(2);
            }
        }
    }

    let (secs, tail) = if smoke { (150u64, 30usize) } else { (400, 50) };
    println!(
        "Adaptation policy A-B — comp-steer, 10 ms/byte, {secs}s (theory: settle near 0.625)\n"
    );

    let outcomes: Vec<Outcome> =
        PolicyKind::all().iter().map(|&p| run_policy(p, secs, tail)).collect();

    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>12} {:>13} {:>12}",
        "policy",
        "settled",
        "accuracy err",
        "tail std",
        "converge t",
        "lat avg (us)",
        "adapt rounds"
    );
    for o in &outcomes {
        println!(
            "{:<10} {:>10.3} {:>12.3} {:>10.3} {:>12.0} {:>13.2} {:>12}",
            o.policy.as_str(),
            o.settled,
            o.accuracy_err,
            o.tail_std,
            o.converge_s,
            o.latency_avg_s * 1e6,
            o.adapt_rounds
        );
    }
    println!("\nreading guide:");
    println!("  settled      — tail mean of the sampling factor (ideal = 0.625, never >>)");
    println!("  accuracy err — |settled - theory|; the policy's steady-state accuracy");
    println!("  converge t   — rise time: first instant the series reaches its tail mean");
    println!("  latency avg  — mean end-to-end packet latency at the analyzer (us)");

    let mut rows: Vec<Row> = Vec::new();
    for o in &outcomes {
        let p = o.policy.as_str();
        rows.push(Row {
            bench: format!("abtest_comp_steer_{p}_settled"),
            value: o.settled,
            unit: "sampling",
        });
        rows.push(Row {
            bench: format!("abtest_comp_steer_{p}_accuracy_err"),
            value: o.accuracy_err,
            unit: "sampling",
        });
        rows.push(Row {
            bench: format!("abtest_comp_steer_{p}_tail_std"),
            value: o.tail_std,
            unit: "sampling",
        });
        rows.push(Row {
            bench: format!("abtest_comp_steer_{p}_converge_s"),
            value: o.converge_s,
            unit: "s",
        });
        rows.push(Row {
            bench: format!("abtest_comp_steer_{p}_latency_avg"),
            value: o.latency_avg_s * 1e6,
            unit: "us",
        });
        rows.push(Row {
            bench: format!("abtest_comp_steer_{p}_adapt_rounds"),
            value: o.adapt_rounds as f64,
            unit: "rounds",
        });
    }
    rows.push(Row {
        bench: "abtest_policies_compared".into(),
        value: outcomes.len() as f64,
        unit: "policies",
    });

    let mut json = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        json.push_str(&format!(
            "  {{\"bench\": \"{}\", \"value\": {:.3}, \"unit\": \"{}\"}}{sep}\n",
            r.bench, r.value, r.unit
        ));
    }
    json.push_str("]\n");

    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out}");
}

//! Criterion micro-benchmarks of the data-plane hot path: CRC-32,
//! frame encode/decode, and the segmented packet encoder.
//!
//! The machine-readable trajectory numbers live in
//! `results/BENCH_PR3.json` (produced by the `throughput` binary); these
//! benches are the interactive view of the same hot path.

use bytes::{Bytes, BytesMut};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gates_core::Packet;
use gates_net::{
    crc32, decode_frame, encode_frame_into, Crc32, Frame, FrameKind, FRAME_HEADER_LEN,
};

fn payload(len: usize) -> Bytes {
    let mut v = Vec::with_capacity(len);
    let mut x = 0x9E37_79B9u32;
    for _ in 0..len {
        x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
        v.push((x >> 24) as u8);
    }
    Bytes::from(v)
}

fn bench_crc(c: &mut Criterion) {
    let data = payload(64 * 1024);
    let mut g = c.benchmark_group("crc32");
    g.throughput(Throughput::Bytes(data.len() as u64));
    g.bench_function("one_shot_64KiB", |b| b.iter(|| black_box(crc32(black_box(&data)))));
    g.bench_function("incremental_4KiB_chunks", |b| {
        b.iter(|| {
            let mut h = Crc32::new();
            for chunk in data.chunks(4096) {
                h.update(chunk);
            }
            black_box(h.finalize())
        })
    });
    g.finish();
}

fn bench_frame_codec(c: &mut Criterion) {
    for size in [1024usize, 64 * 1024] {
        let frame = Frame { kind: FrameKind::Data, stream_id: 7, seq: 42, payload: payload(size) };
        let wire = (FRAME_HEADER_LEN + size) as u64;
        let mut g = c.benchmark_group(format!("frame_codec_{size}B"));
        g.throughput(Throughput::Bytes(wire));

        let mut out = BytesMut::with_capacity(wire as usize);
        g.bench_function("encode_into_reused_buffer", |b| {
            b.iter(|| {
                out.clear();
                encode_frame_into(black_box(&frame), &mut out);
                black_box(out.len())
            })
        });

        let mut encoded = BytesMut::new();
        encode_frame_into(&frame, &mut encoded);
        let mut inbuf = BytesMut::with_capacity(encoded.len());
        g.bench_function("decode", |b| {
            b.iter(|| {
                inbuf.clear();
                inbuf.extend_from_slice(&encoded);
                black_box(decode_frame(&mut inbuf).expect("decode"))
            })
        });
        g.finish();
    }
}

fn bench_packet_codec(c: &mut Criterion) {
    let packet = Packet::data(1, 9, 16, payload(1024));
    let mut g = c.benchmark_group("packet_codec");
    g.throughput(Throughput::Bytes(packet.wire_len()));
    let mut out = BytesMut::with_capacity(packet.wire_len() as usize);
    g.bench_function("encode_into_1KiB", |b| {
        b.iter(|| {
            out.clear();
            packet.encode_into(&mut out);
            black_box(out.len())
        })
    });
    g.bench_function("to_frame_then_encode_1KiB", |b| {
        b.iter(|| {
            out.clear();
            encode_frame_into(&black_box(&packet).to_frame(), &mut out);
            black_box(out.len())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_crc, bench_frame_codec, bench_packet_codec);
criterion_main!(benches);

//! Criterion micro-benchmarks of the stream-summary data structures:
//! per-item ingest cost of counting samples vs. Misra–Gries vs.
//! Count-Min, plus merge and top-k costs. These dominate the per-record
//! CPU budget of the source-side stages.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use gates_sim::rng::seeded;
use gates_streams::{CountMinSketch, CountingSamples, MisraGries, ZipfGenerator};

const N: usize = 10_000;

fn zipf_stream(seed: u64) -> Vec<u64> {
    let zipf = ZipfGenerator::new(2_000, 1.4);
    let mut rng = seeded(seed);
    (0..N).map(|_| zipf.sample(&mut rng)).collect()
}

fn bench_ingest(c: &mut Criterion) {
    let stream = zipf_stream(1);
    let mut group = c.benchmark_group("summary_ingest");
    group.throughput(Throughput::Elements(N as u64));

    group.bench_function("counting_samples_k100", |b| {
        b.iter_batched(
            || (CountingSamples::new(100), seeded(2)),
            |(mut cs, mut rng)| {
                for &v in &stream {
                    cs.insert(black_box(v), &mut rng);
                }
                cs
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("misra_gries_k100", |b| {
        b.iter_batched(
            || MisraGries::new(100),
            |mut mg| {
                for &v in &stream {
                    mg.insert(black_box(v));
                }
                mg
            },
            BatchSize::SmallInput,
        );
    });

    group.bench_function("count_min_1pc", |b| {
        b.iter_batched(
            || CountMinSketch::with_error(0.01, 0.01),
            |mut cm| {
                for &v in &stream {
                    cm.insert(black_box(v));
                }
                cm
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_query_and_merge(c: &mut Criterion) {
    let stream = zipf_stream(3);
    let mut group = c.benchmark_group("summary_query");

    let mut cs = CountingSamples::new(100);
    let mut rng = seeded(4);
    for &v in &stream {
        cs.insert(v, &mut rng);
    }
    group.bench_function("counting_samples_top10", |b| {
        b.iter(|| black_box(&cs).top_k(10));
    });

    let mut a = CountingSamples::new(100);
    let mut b2 = CountingSamples::new(100);
    let mut rng = seeded(5);
    for (i, &v) in stream.iter().enumerate() {
        if i % 2 == 0 {
            a.insert(v, &mut rng);
        } else {
            b2.insert(v, &mut rng);
        }
    }
    group.bench_function("counting_samples_merge", |b| {
        b.iter_batched(
            || a.clone(),
            |mut merged| {
                merged.merge(black_box(&b2));
                merged
            },
            BatchSize::SmallInput,
        );
    });

    let mut cm1 = CountMinSketch::with_error(0.01, 0.01);
    let mut cm2 = CountMinSketch::with_error(0.01, 0.01);
    for &v in &stream {
        cm1.insert(v);
        cm2.insert(v ^ 0x5555);
    }
    group.bench_function("count_min_merge", |b| {
        b.iter_batched(
            || cm1.clone(),
            |mut merged| {
                merged.merge(black_box(&cm2)).unwrap();
                merged
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_ingest, bench_query_and_merge);
criterion_main!(benches);

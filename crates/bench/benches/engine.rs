//! Criterion benchmarks of the virtual-time engine itself: end-to-end
//! events/second for a representative pipeline, and the cost of building
//! and deploying a topology. The engine's speed is what makes the figure
//! harnesses (hundreds of virtual seconds each) finish in milliseconds.

use bytes::Bytes;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use gates_core::{
    CostModel, Packet, SourceStatus, StageApi, StageBuilder, StreamProcessor, Topology,
};
use gates_engine::{DesEngine, RunOptions};
use gates_grid::{Deployer, ResourceRegistry};
use gates_net::{Bandwidth, LinkSpec};
use gates_sim::SimDuration;

struct Burst {
    left: u32,
}
impl StreamProcessor for Burst {
    fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
        if self.left == 0 {
            return SourceStatus::Done;
        }
        self.left -= 1;
        api.emit(Packet::data(0, self.left as u64, 1, Bytes::from_static(&[0u8; 64])));
        SourceStatus::Continue { next_poll: SimDuration::from_millis(1) }
    }
}

struct Forward;
impl StreamProcessor for Forward {
    fn process(&mut self, p: Packet, api: &mut StageApi) {
        api.emit(p);
    }
}

struct Sink;
impl StreamProcessor for Sink {
    fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
}

fn build_pipeline(packets: u32) -> (Topology, ResourceRegistry) {
    let mut t = Topology::new();
    let s = t
        .add_stage_raw(StageBuilder::new("src").processor(move || Burst { left: packets }))
        .unwrap();
    let f = t
        .add_stage(
            StageBuilder::new("fwd").cost(CostModel::per_packet(0.0001)).processor(|| Forward),
        )
        .unwrap();
    let k = t.add_stage(StageBuilder::new("sink").processor(|| Sink)).unwrap();
    t.connect(s, f, LinkSpec::with_bandwidth(Bandwidth::mb_per_sec(1.0)));
    t.connect(f, k, LinkSpec::with_bandwidth(Bandwidth::mb_per_sec(1.0)));
    let registry = ResourceRegistry::uniform_cluster(&["src", "fwd", "sink"]);
    (t, registry)
}

fn bench_engine_throughput(c: &mut Criterion) {
    let packets = 2_000u32;
    let mut group = c.benchmark_group("des_engine");
    group.throughput(Throughput::Elements(packets as u64));
    group.bench_function("three_stage_pipeline_2k_packets", |b| {
        b.iter(|| {
            let (t, registry) = build_pipeline(packets);
            let plan = Deployer::new().deploy(&t, &registry).unwrap();
            let mut engine = DesEngine::new(t, &plan, RunOptions::default()).unwrap();
            black_box(engine.run_to_completion())
        });
    });
    group.finish();
}

fn bench_deploy(c: &mut Criterion) {
    let mut group = c.benchmark_group("deployment");
    group.bench_function("build_and_place_three_stages", |b| {
        b.iter(|| {
            let (t, registry) = build_pipeline(1);
            black_box(Deployer::new().deploy(&t, &registry).unwrap())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_engine_throughput, bench_deploy);
criterion_main!(benches);

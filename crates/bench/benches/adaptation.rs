//! Criterion micro-benchmarks of the self-adaptation hot path: the
//! per-observation cost of the load tracker and the per-round cost of
//! the parameter controller. These run on every queue observation
//! (default every 100 ms of virtual time per stage), so they must be
//! cheap enough to disappear next to packet processing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use gates_core::adapt::{AdaptationConfig, LoadException, LoadTracker, ParamController};
use gates_core::{AdjustmentParameter, Direction};

fn bench_load_tracker(c: &mut Criterion) {
    let mut group = c.benchmark_group("load_tracker");
    group.bench_function("observe_steady", |b| {
        let mut tracker = LoadTracker::new(AdaptationConfig::default());
        b.iter(|| tracker.observe(black_box(20.0)));
    });
    group.bench_function("observe_oscillating", |b| {
        let mut tracker = LoadTracker::new(AdaptationConfig::default());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let d = if i.is_multiple_of(2) { 95.0 } else { 2.0 };
            tracker.observe(black_box(d))
        });
    });
    group.finish();
}

fn bench_controller(c: &mut Criterion) {
    let mut group = c.benchmark_group("param_controller");
    let spec =
        AdjustmentParameter::new("p", 0.5, 0.01, 1.0, 0.01, Direction::IncreaseSlowsDown).unwrap();
    group.bench_function("adapt_round", |b| {
        let mut ctl = ParamController::new(AdaptationConfig::default(), spec.clone());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            if i.is_multiple_of(3) {
                ctl.on_exception(LoadException::Overload);
            }
            ctl.adapt(black_box((i % 200) as f64 - 100.0))
        });
    });
    group.bench_function("exception_ingest", |b| {
        let mut ctl = ParamController::new(AdaptationConfig::default(), spec.clone());
        b.iter(|| ctl.on_exception(black_box(LoadException::Underload)));
    });
    group.finish();
}

criterion_group!(benches, bench_load_tracker, bench_controller);
criterion_main!(benches);

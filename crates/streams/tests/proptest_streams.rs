//! Property tests for the stream-summary data structures: the formal
//! guarantees each algorithm advertises, checked on arbitrary inputs.

use std::collections::{HashMap, HashSet};

use gates_sim::rng::seeded;
use gates_streams::{
    BloomFilter, CountMinSketch, CountingSamples, Dgim, HyperLogLog, MisraGries, P2Quantile,
    Reservoir, SlidingWindowSum, TumblingWindow,
};
use proptest::prelude::*;

fn exact(stream: &[u64]) -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    for &v in stream {
        *m.entry(v).or_insert(0) += 1;
    }
    m
}

proptest! {
    // ---- Misra–Gries -----------------------------------------------------

    #[test]
    fn misra_gries_never_overcounts_and_bounds_undercount(
        stream in proptest::collection::vec(0u64..50, 1..2_000),
        k in 1usize..20,
    ) {
        let mut mg = MisraGries::new(k);
        for &v in &stream {
            mg.insert(v);
        }
        let truth = exact(&stream);
        let bound = stream.len() as u64 / (k as u64 + 1);
        for (&v, &true_count) in &truth {
            let reported = mg.count(v);
            prop_assert!(reported <= true_count, "overcount for {v}");
            prop_assert!(
                true_count - reported <= bound + 1,
                "undercount beyond n/(k+1): {true_count} vs {reported} (bound {bound})"
            );
        }
    }

    #[test]
    fn misra_gries_heavy_hitters_always_present(
        noise in proptest::collection::vec(100u64..10_000, 0..400),
        k in 3usize..12,
    ) {
        // A value with strictly more than n/(k+1) occurrences must be live.
        let mut stream = noise.clone();
        let heavy_count = stream.len() / k + 2;
        stream.extend(std::iter::repeat_n(7u64, heavy_count));
        let mut mg = MisraGries::new(k);
        for &v in &stream {
            mg.insert(v);
        }
        prop_assert!(mg.count(7) > 0, "heavy hitter evicted");
    }

    // ---- Count-Min --------------------------------------------------------

    #[test]
    fn count_min_never_undercounts(
        stream in proptest::collection::vec(0u64..200, 1..1_500),
        width in 8usize..128,
        depth in 1usize..6,
    ) {
        let mut cm = CountMinSketch::new(width, depth);
        for &v in &stream {
            cm.insert(v);
        }
        for (&v, &true_count) in &exact(&stream) {
            prop_assert!(cm.estimate(v) >= true_count, "undercount for {v}");
        }
    }

    #[test]
    fn count_min_merge_equals_union_ingest(
        a in proptest::collection::vec(0u64..100, 0..500),
        b in proptest::collection::vec(0u64..100, 0..500),
    ) {
        let mut separate = CountMinSketch::new(64, 4);
        let mut merged_a = CountMinSketch::new(64, 4);
        let mut merged_b = CountMinSketch::new(64, 4);
        for &v in a.iter().chain(&b) {
            separate.insert(v);
        }
        for &v in &a {
            merged_a.insert(v);
        }
        for &v in &b {
            merged_b.insert(v);
        }
        merged_a.merge(&merged_b).unwrap();
        for v in 0..100u64 {
            prop_assert_eq!(separate.estimate(v), merged_a.estimate(v));
        }
    }

    // ---- Counting samples -------------------------------------------------

    #[test]
    fn counting_samples_footprint_and_estimate_sanity(
        stream in proptest::collection::vec(0u64..300, 1..2_000),
        footprint in 1usize..40,
        seed in 0u64..32,
    ) {
        let mut cs = CountingSamples::new(footprint);
        let mut rng = seeded(seed);
        for &v in &stream {
            cs.insert(v, &mut rng);
        }
        prop_assert!(cs.len() <= footprint);
        let truth = exact(&stream);
        for entry in cs.top_k(footprint) {
            // The exact-since-admission count can never exceed the truth.
            let true_count = truth[&entry.value];
            prop_assert!(
                cs.exact_count(entry.value).unwrap() <= true_count,
                "exact count exceeds truth for {}",
                entry.value
            );
            prop_assert!(entry.estimate >= entry.count as f64 - 1e-9);
        }
    }

    #[test]
    fn counting_samples_exact_below_footprint(
        stream in proptest::collection::vec(0u64..20, 1..500),
        seed in 0u64..16,
    ) {
        // ≤20 distinct values, footprint 32: never evicts, always exact.
        let mut cs = CountingSamples::new(32);
        let mut rng = seeded(seed);
        for &v in &stream {
            cs.insert(v, &mut rng);
        }
        prop_assert_eq!(cs.tau(), 1.0);
        for (&v, &c) in &exact(&stream) {
            prop_assert_eq!(cs.count(v), Some(c));
        }
    }

    // ---- HyperLogLog ------------------------------------------------------

    #[test]
    fn hyperloglog_insensitive_to_duplicates(
        distinct in proptest::collection::hash_set(any::<u64>(), 1..300),
        repeats in 1usize..5,
    ) {
        let mut once = HyperLogLog::new(10);
        let mut many = HyperLogLog::new(10);
        for &v in &distinct {
            once.insert(v);
            for _ in 0..repeats {
                many.insert(v);
            }
        }
        prop_assert_eq!(once.estimate(), many.estimate());
    }

    #[test]
    fn hyperloglog_merge_commutes(
        a in proptest::collection::vec(any::<u64>(), 0..300),
        b in proptest::collection::vec(any::<u64>(), 0..300),
    ) {
        let build = |items: &[u64]| {
            let mut h = HyperLogLog::new(8);
            for &v in items {
                h.insert(v);
            }
            h
        };
        let mut ab = build(&a);
        ab.merge(&build(&b)).unwrap();
        let mut ba = build(&b);
        ba.merge(&build(&a)).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn hyperloglog_reasonably_accurate(
        distinct in proptest::collection::hash_set(any::<u64>(), 10..2_000),
    ) {
        let mut h = HyperLogLog::new(12);
        for &v in &distinct {
            h.insert(v);
        }
        let n = distinct.len() as f64;
        let rel = (h.estimate() - n).abs() / n;
        prop_assert!(rel < 0.25, "relative error {rel} for n={n}");
    }

    // ---- Bloom filter -----------------------------------------------------

    #[test]
    fn bloom_has_no_false_negatives(
        keys in proptest::collection::hash_set(any::<u64>(), 1..500),
    ) {
        let mut bf = BloomFilter::new(keys.len(), 0.01);
        for &k in &keys {
            bf.insert(k);
        }
        for &k in &keys {
            prop_assert!(bf.contains(k));
        }
    }

    #[test]
    fn bloom_union_superset_of_parts(
        a in proptest::collection::hash_set(any::<u64>(), 1..200),
        b in proptest::collection::hash_set(any::<u64>(), 1..200),
    ) {
        let mut fa = BloomFilter::new(512, 0.01);
        let mut fb = BloomFilter::new(512, 0.01);
        for &k in &a {
            fa.insert(k);
        }
        for &k in &b {
            fb.insert(k);
        }
        fa.union(&fb).unwrap();
        for &k in a.union(&b) {
            prop_assert!(fa.contains(k));
        }
    }

    // ---- DGIM ---------------------------------------------------------------

    #[test]
    fn dgim_estimate_within_factor_bound(
        bits in proptest::collection::vec(any::<bool>(), 1..3_000),
        window in 16u64..512,
    ) {
        let mut d = Dgim::new(window);
        for &b in &bits {
            d.insert(b);
        }
        let start = bits.len().saturating_sub(window as usize);
        let true_count = bits[start..].iter().filter(|&&b| b).count() as f64;
        let est = d.estimate() as f64;
        // DGIM guarantee: at most 50% relative error (plus one for edge
        // rounding on tiny counts).
        prop_assert!(
            (est - true_count).abs() <= 0.5 * true_count + 1.0,
            "estimate {est} vs true {true_count} (window {window})"
        );
    }

    // ---- P² quantiles -------------------------------------------------------

    #[test]
    fn p2_median_brackets_true_median(
        mut values in proptest::collection::vec(-1e6f64..1e6, 30..2_000),
    ) {
        let mut p = P2Quantile::new(0.5);
        for &v in &values {
            p.insert(v);
        }
        let est = p.value().unwrap();
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // The estimate must lie within the data range and within a loose
        // quantile band (P² is approximate but monotone-bounded).
        let lo = values[(values.len() as f64 * 0.20) as usize];
        let hi = values[((values.len() as f64 * 0.80) as usize).min(values.len() - 1)];
        prop_assert!(est >= values[0] && est <= values[values.len() - 1]);
        prop_assert!(est >= lo && est <= hi, "median estimate {est} outside [{lo}, {hi}]");
    }

    // ---- Reservoir / windows ------------------------------------------------

    #[test]
    fn reservoir_contents_are_always_from_the_stream(
        stream in proptest::collection::vec(any::<u64>(), 1..500),
        capacity in 1usize..64,
        seed in 0u64..16,
    ) {
        let mut r = Reservoir::new(capacity);
        let mut rng = seeded(seed);
        for &v in &stream {
            r.insert(v, &mut rng);
        }
        let universe: HashSet<u64> = stream.iter().copied().collect();
        prop_assert_eq!(r.len(), capacity.min(stream.len()));
        for item in r.items() {
            prop_assert!(universe.contains(item));
        }
    }

    #[test]
    fn tumbling_windows_partition_the_stream(
        stream in proptest::collection::vec(any::<u32>(), 0..300),
        size in 1usize..20,
    ) {
        let mut w = TumblingWindow::new(size);
        let mut reassembled = Vec::new();
        for &v in &stream {
            if let Some(batch) = w.insert(v) {
                prop_assert_eq!(batch.len(), size);
                reassembled.extend(batch);
            }
        }
        reassembled.extend(w.flush());
        prop_assert_eq!(reassembled, stream);
    }

    // ---- Sharded merge laws -------------------------------------------------
    //
    // When a replicated stage partitions a stream by key, the downstream
    // aggregator merges per-shard summaries. These properties pin down
    // what that relies on: merge is commutative/associative where the
    // structure is lossless, and the merged result matches (or bounds)
    // a single unsharded instance that saw the whole stream.

    #[test]
    fn count_min_merge_commutes_and_associates(
        a in proptest::collection::vec(0u64..100, 0..300),
        b in proptest::collection::vec(0u64..100, 0..300),
        c in proptest::collection::vec(0u64..100, 0..300),
    ) {
        let build = |items: &[u64]| {
            let mut cm = CountMinSketch::new(64, 4);
            for &v in items {
                cm.insert(v);
            }
            cm
        };
        // (a ∪ b) ∪ c == a ∪ (b ∪ c) and a ∪ b == b ∪ a, checked on
        // every estimate.
        let mut ab_c = build(&a);
        ab_c.merge(&build(&b)).unwrap();
        ab_c.merge(&build(&c)).unwrap();
        let mut bc = build(&b);
        bc.merge(&build(&c)).unwrap();
        let mut a_bc = build(&a);
        a_bc.merge(&bc).unwrap();
        let mut ba = build(&b);
        ba.merge(&build(&a)).unwrap();
        let mut ab = build(&a);
        ab.merge(&build(&b)).unwrap();
        for v in 0..100u64 {
            prop_assert_eq!(ab_c.estimate(v), a_bc.estimate(v), "associativity at {}", v);
            prop_assert_eq!(ab.estimate(v), ba.estimate(v), "commutativity at {}", v);
        }
        prop_assert_eq!(ab_c.total(), a_bc.total());
    }

    #[test]
    fn hyperloglog_merge_associates(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
        c in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let build = |items: &[u64]| {
            let mut h = HyperLogLog::new(8);
            for &v in items {
                h.insert(v);
            }
            h
        };
        let mut ab_c = build(&a);
        ab_c.merge(&build(&b)).unwrap();
        ab_c.merge(&build(&c)).unwrap();
        let mut bc = build(&b);
        bc.merge(&build(&c)).unwrap();
        let mut a_bc = build(&a);
        a_bc.merge(&bc).unwrap();
        prop_assert_eq!(ab_c, a_bc);
    }

    #[test]
    fn sharded_count_min_matches_unsharded(
        stream in proptest::collection::vec(0u64..200, 1..1_000),
        shards in 2usize..5,
    ) {
        // Partition by key (as a replica group's router would), sketch
        // each shard separately, merge — identical to the whole-stream
        // sketch because addition is exact.
        let mut whole = CountMinSketch::new(64, 4);
        let mut parts = vec![CountMinSketch::new(64, 4); shards];
        for &v in &stream {
            whole.insert(v);
            parts[(v as usize) % shards].insert(v);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p).unwrap();
        }
        for v in 0..200u64 {
            prop_assert_eq!(merged.estimate(v), whole.estimate(v));
        }
        prop_assert_eq!(merged.total(), whole.total());
    }

    #[test]
    fn sharded_misra_gries_respects_combined_error_bound(
        stream in proptest::collection::vec(0u64..60, 1..1_200),
        shards in 2usize..5,
        k in 4usize..16,
    ) {
        let mut parts = vec![MisraGries::new(k); shards];
        for &v in &stream {
            parts[(v as usize) % shards].insert(v);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.items_processed(), stream.len() as u64);
        prop_assert!(merged.len() <= k, "counter budget violated after merge");
        // Merged counts never overcount, and undercount at most the
        // summary's own advertised bound.
        for (&v, &true_count) in &exact(&stream) {
            let reported = merged.count(v);
            prop_assert!(reported <= true_count, "overcount for {v}");
            prop_assert!(
                true_count - reported <= merged.error_bound(),
                "undercount beyond the advertised bound for {v}"
            );
        }
    }

    #[test]
    fn sharded_quantile_merge_stays_in_range(
        stream in proptest::collection::vec(-1e6f64..1e6, 20..1_500),
        shards in 2usize..5,
    ) {
        let mut parts = vec![P2Quantile::new(0.5); shards];
        for (i, &v) in stream.iter().enumerate() {
            parts[i % shards].insert(v);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p).unwrap();
        }
        prop_assert_eq!(merged.count(), stream.len());
        let est = merged.value().unwrap();
        let lo = stream.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = stream.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(est >= lo && est <= hi, "merged estimate {est} outside [{lo}, {hi}]");
    }

    #[test]
    fn sliding_sum_matches_direct_computation(
        stream in proptest::collection::vec(-1e3f64..1e3, 1..500),
        size in 1usize..32,
    ) {
        let mut s = SlidingWindowSum::new(size);
        for (i, &v) in stream.iter().enumerate() {
            let got = s.insert(v);
            let start = (i + 1).saturating_sub(size);
            let want: f64 = stream[start..=i].iter().sum();
            prop_assert!((got - want).abs() < 1e-6, "at {i}: {got} vs {want}");
        }
    }
}

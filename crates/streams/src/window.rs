//! Windowed aggregates: tumbling windows (disjoint batches) and a
//! sliding-window sum. Stages use these to turn unbounded streams into
//! periodic summaries — e.g. the intrusion template counts connection
//! events per tumbling interval.

use std::collections::VecDeque;

/// A tumbling (non-overlapping) window of fixed length that emits a
/// closed batch every `size` insertions.
#[derive(Debug, Clone)]
pub struct TumblingWindow<T> {
    size: usize,
    current: Vec<T>,
}

impl<T> TumblingWindow<T> {
    /// Window of `size ≥ 1` items.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "window size must be at least 1");
        TumblingWindow { size, current: Vec::with_capacity(size) }
    }

    /// Add an item; returns the completed window when it fills.
    pub fn insert(&mut self, item: T) -> Option<Vec<T>> {
        self.current.push(item);
        if self.current.len() == self.size {
            Some(std::mem::replace(&mut self.current, Vec::with_capacity(self.size)))
        } else {
            None
        }
    }

    /// Items in the open (incomplete) window.
    pub fn pending(&self) -> &[T] {
        &self.current
    }

    /// Close the open window early, returning its items (possibly empty).
    pub fn flush(&mut self) -> Vec<T> {
        std::mem::take(&mut self.current)
    }

    /// Configured window size.
    pub fn size(&self) -> usize {
        self.size
    }
}

/// A sliding-window sum over the last `size` numeric observations.
#[derive(Debug, Clone)]
pub struct SlidingWindowSum {
    size: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl SlidingWindowSum {
    /// Window of `size ≥ 1` observations.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1, "window size must be at least 1");
        SlidingWindowSum { size, buf: VecDeque::with_capacity(size), sum: 0.0 }
    }

    /// Add an observation; evicts the oldest when full. Returns the
    /// current sum.
    pub fn insert(&mut self, x: f64) -> f64 {
        self.buf.push_back(x);
        self.sum += x;
        if self.buf.len() > self.size {
            if let Some(old) = self.buf.pop_front() {
                self.sum -= old;
            }
        }
        self.sum
    }

    /// Current sum over the window.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Current mean over the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            0.0
        } else {
            self.sum / self.buf.len() as f64
        }
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no observations are present.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tumbling_emits_on_fill() {
        let mut w = TumblingWindow::new(3);
        assert_eq!(w.insert(1), None);
        assert_eq!(w.insert(2), None);
        assert_eq!(w.insert(3), Some(vec![1, 2, 3]));
        assert_eq!(w.insert(4), None);
        assert_eq!(w.pending(), &[4]);
    }

    #[test]
    fn tumbling_flush_closes_early() {
        let mut w = TumblingWindow::new(5);
        w.insert("a");
        w.insert("b");
        assert_eq!(w.flush(), vec!["a", "b"]);
        assert!(w.pending().is_empty());
        assert!(w.flush().is_empty());
    }

    #[test]
    fn tumbling_windows_are_disjoint() {
        let mut w = TumblingWindow::new(2);
        let mut batches = Vec::new();
        for i in 0..6 {
            if let Some(batch) = w.insert(i) {
                batches.push(batch);
            }
        }
        assert_eq!(batches, vec![vec![0, 1], vec![2, 3], vec![4, 5]]);
    }

    #[test]
    fn sliding_sum_tracks_window() {
        let mut s = SlidingWindowSum::new(3);
        assert_eq!(s.insert(1.0), 1.0);
        assert_eq!(s.insert(2.0), 3.0);
        assert_eq!(s.insert(3.0), 6.0);
        assert_eq!(s.insert(4.0), 9.0, "1.0 evicted");
        assert_eq!(s.len(), 3);
        assert!((s.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sliding_sum_empty_mean_is_zero() {
        let s = SlidingWindowSum::new(4);
        assert_eq!(s.mean(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn sliding_sum_no_drift_over_many_evictions() {
        let mut s = SlidingWindowSum::new(10);
        for i in 0..100_000 {
            s.insert((i % 7) as f64 * 0.1);
        }
        // Recompute exactly from the final window contents.
        let exact: f64 = (99_990..100_000).map(|i| (i % 7) as f64 * 0.1).sum();
        assert!((s.sum() - exact).abs() < 1e-6, "drift: {} vs {}", s.sum(), exact);
    }

    #[test]
    #[should_panic(expected = "window size must be at least 1")]
    fn zero_tumbling_panics() {
        let _ = TumblingWindow::<u8>::new(0);
    }

    #[test]
    #[should_panic(expected = "window size must be at least 1")]
    fn zero_sliding_panics() {
        let _ = SlidingWindowSum::new(0);
    }
}

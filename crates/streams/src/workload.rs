//! Workload generators for the experiments.
//!
//! The paper's count-samps experiment feeds each source "25,000 integers"
//! with enough skew that a top-10 query is meaningful. We generate
//! Zipf-distributed integers (the standard skewed model for frequency
//! queries) with an explicit seed per source so runs are repeatable, plus
//! a uniform generator as the unskewed baseline.

use rand::Rng;

/// Zipf(s) sampler over values `0..n` via inverse-CDF table lookup.
///
/// Value `v` has probability proportional to `1/(v+1)^s`. `s = 0` is
/// uniform; `s ≈ 1` is the classic heavy-tail.
#[derive(Debug, Clone)]
pub struct ZipfGenerator {
    /// Cumulative distribution, cdf[v] = P(value ≤ v).
    cdf: Vec<f64>,
}

impl ZipfGenerator {
    /// Zipf over `n ≥ 1` values with exponent `s ≥ 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "need at least one value");
        assert!(s >= 0.0 && s.is_finite(), "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for v in 0..n {
            acc += 1.0 / ((v + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfGenerator { cdf }
    }

    /// Draw one value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // First index with cdf ≥ u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i as u64,
            Err(i) => i.min(self.cdf.len() - 1) as u64,
        }
    }

    /// Number of distinct values.
    pub fn support(&self) -> usize {
        self.cdf.len()
    }

    /// Exact probability of value `v`.
    pub fn probability(&self, v: usize) -> f64 {
        if v >= self.cdf.len() {
            return 0.0;
        }
        if v == 0 {
            self.cdf[0]
        } else {
            self.cdf[v] - self.cdf[v - 1]
        }
    }
}

/// Uniform sampler over `0..n`.
#[derive(Debug, Clone, Copy)]
pub struct UniformGenerator {
    n: u64,
}

impl UniformGenerator {
    /// Uniform over `n ≥ 1` values.
    pub fn new(n: u64) -> Self {
        assert!(n >= 1, "need at least one value");
        UniformGenerator { n }
    }

    /// Draw one value.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        rng.gen_range(0..self.n)
    }

    /// Number of distinct values.
    pub fn support(&self) -> u64 {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates_sim::rng::seeded;

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = ZipfGenerator::new(100, 1.0);
        let total: f64 = (0..100).map(|v| z.probability(v)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.probability(100), 0.0);
    }

    #[test]
    fn zipf_is_skewed_toward_small_values() {
        let z = ZipfGenerator::new(1000, 1.0);
        assert!(z.probability(0) > 10.0 * z.probability(99));
        let mut rng = seeded(1);
        let mut low = 0u32;
        for _ in 0..10_000 {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // Zipf(1) over 1000 values puts ~39% of mass on the first 10.
        assert!(low > 3_000, "skew missing: only {low} of 10000 in the head");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = ZipfGenerator::new(10, 0.0);
        for v in 0..10 {
            assert!((z.probability(v) - 0.1).abs() < 1e-9);
        }
    }

    #[test]
    fn zipf_empirical_matches_theoretical() {
        let z = ZipfGenerator::new(50, 1.2);
        let mut rng = seeded(2);
        let n = 200_000;
        let mut counts = [0u32; 50];
        for _ in 0..n {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for v in [0usize, 1, 5, 20] {
            let expected = z.probability(v) * n as f64;
            let got = counts[v] as f64;
            assert!(
                (got - expected).abs() < 5.0 * expected.sqrt().max(10.0),
                "value {v}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn zipf_samples_in_range() {
        let z = ZipfGenerator::new(7, 1.0);
        let mut rng = seeded(3);
        for _ in 0..1_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn uniform_covers_support() {
        let u = UniformGenerator::new(5);
        let mut rng = seeded(4);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[u.sample(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(u.support(), 5);
    }

    #[test]
    fn generators_are_deterministic() {
        let z = ZipfGenerator::new(100, 1.0);
        let draw = |seed| {
            let mut rng = seeded(seed);
            (0..50).map(|_| z.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    #[should_panic(expected = "need at least one value")]
    fn empty_support_panics() {
        let _ = ZipfGenerator::new(0, 1.0);
    }
}

#![deny(missing_docs)]

//! # gates-streams
//!
//! Single-pass stream-analysis algorithms and workload generators — the
//! substrate beneath the GATES application templates.
//!
//! The paper's `count-samps` application "implements a distributed
//! version of the counting samples problem" using the approximate
//! one-pass method of Gibbons and Matias (its reference \[18\]); that
//! algorithm lives in [`counting_samples`]. The remaining modules supply
//! the comparison baselines and extensions exercised by the examples and
//! the intrusion-detection template:
//!
//! * [`counting_samples`] — Gibbons–Matias counting samples.
//! * [`misra_gries`] — deterministic frequent items (baseline).
//! * [`count_min`] — Count-Min sketch.
//! * [`hyperloglog`] — distinct counting (port-scan detection).
//! * [`dgim`] — sliding-window bit counting (windowed alarms).
//! * [`bloom`] — membership filters (allowlists).
//! * [`reservoir`] — uniform reservoir sampling.
//! * [`quantile`] — P² streaming quantile estimation.
//! * [`window`] — tumbling and sliding windowed aggregates.
//! * [`metrics`] — the paper's top-k accuracy metric and exact counting.
//! * [`workload`] — Zipf and uniform integer stream generators.

pub mod bloom;
pub(crate) mod codec;
pub mod count_min;
pub mod counting_samples;
pub mod dgim;
pub mod hyperloglog;
pub mod metrics;
pub mod misra_gries;
pub mod quantile;
pub mod reservoir;
pub mod window;
pub mod workload;

pub use bloom::BloomFilter;
pub use count_min::CountMinSketch;
pub use counting_samples::CountingSamples;
pub use dgim::Dgim;
pub use hyperloglog::HyperLogLog;
pub use metrics::{exact_counts, top_k_accuracy, AccuracyReport};
pub use misra_gries::MisraGries;
pub use quantile::P2Quantile;
pub use reservoir::Reservoir;
pub use window::{SlidingWindowSum, TumblingWindow};
pub use workload::{UniformGenerator, ZipfGenerator};

//! Minimal little-endian cursor shared by the sketch serializers
//! (`to_bytes`/`from_bytes`). Kept crate-private: the public surface is
//! each sketch's own codec pair.

/// A bounds-checked little-endian reader over a byte slice.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end =
            self.at.checked_add(n).filter(|&e| e <= self.bytes.len()).ok_or_else(|| {
                format!("truncated summary: wanted {n} bytes at offset {}", self.at)
            })?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Fails when trailing bytes remain (catches framing bugs early).
    pub(crate) fn done(&self) -> Result<(), String> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(format!("{} trailing bytes after summary", self.bytes.len() - self.at))
        }
    }
}

//! Misra–Gries frequent items — the deterministic counterpart to
//! counting samples, used as a comparison baseline in the examples and
//! ablation benches.
//!
//! With `k` counters, every value occurring more than `n/(k+1)` times in
//! a stream of length `n` is guaranteed to be present, and each reported
//! count underestimates the true count by at most `n/(k+1)`.

use std::collections::HashMap;

/// The Misra–Gries summary over `u64` values.
///
/// ```
/// use gates_streams::MisraGries;
///
/// let mut mg = MisraGries::new(10);
/// for i in 0..1_000u64 {
///     mg.insert(if i % 3 == 0 { 42 } else { i }); // 42 is heavy
/// }
/// assert!(mg.count(42) > 0, "heavy hitters always survive");
/// assert!(mg.count(42) <= 334, "counts never overestimate");
/// ```
#[derive(Debug, Clone)]
pub struct MisraGries {
    k: usize,
    counters: HashMap<u64, u64>,
    items_processed: u64,
    decrements: u64,
}

impl MisraGries {
    /// Summary with `k ≥ 1` counters.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "need at least one counter");
        MisraGries { k, counters: HashMap::with_capacity(k + 1), items_processed: 0, decrements: 0 }
    }

    /// Observe one value.
    pub fn insert(&mut self, value: u64) {
        self.items_processed += 1;
        if let Some(c) = self.counters.get_mut(&value) {
            *c += 1;
        } else if self.counters.len() < self.k {
            self.counters.insert(value, 1);
        } else {
            // Decrement all counters; drop the ones that reach zero.
            self.decrements += 1;
            self.counters.retain(|_, c| {
                *c -= 1;
                *c > 0
            });
        }
    }

    /// Lower-bound count for `value` (0 when absent).
    pub fn count(&self, value: u64) -> u64 {
        self.counters.get(&value).copied().unwrap_or(0)
    }

    /// Maximum possible undercount of any reported value.
    pub fn error_bound(&self) -> u64 {
        self.decrements
    }

    /// Entries with the largest counts, descending (ties by value).
    pub fn top_k(&self, k: usize) -> Vec<(u64, u64)> {
        let mut all: Vec<(u64, u64)> = self.counters.iter().map(|(&v, &c)| (v, c)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Merge another summary (counts add; then the heaviest `k` entries
    /// are kept, with the standard offset subtraction for correctness).
    ///
    /// Per-shard summaries of a key-partitioned stream merge into a
    /// valid summary of the whole stream — heavy hitters survive and the
    /// combined error bound still holds:
    ///
    /// ```
    /// use gates_streams::MisraGries;
    ///
    /// let (mut a, mut b) = (MisraGries::new(8), MisraGries::new(8));
    /// for i in 0..1_000u64 {
    ///     // 42 is heavy on shard a, 7 on shard b.
    ///     a.insert(if i % 3 == 0 { 42 } else { i });
    ///     b.insert(if i % 3 == 0 { 7 } else { 10_000 + i });
    /// }
    /// a.merge(&b);
    /// assert!(a.count(42) > 0 && a.count(7) > 0, "heavy hitters survive the merge");
    /// assert_eq!(a.items_processed(), 2_000);
    /// ```
    pub fn merge(&mut self, other: &MisraGries) {
        for (&v, &c) in &other.counters {
            *self.counters.entry(v).or_insert(0) += c;
        }
        self.items_processed += other.items_processed;
        self.decrements += other.decrements;
        if self.counters.len() > self.k {
            let mut all: Vec<(u64, u64)> = self.counters.drain().collect();
            all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            // Subtract the (k+1)-th weight from survivors, the canonical
            // Misra–Gries merge (Agarwal et al.), preserving the error
            // bound.
            let cut = all[self.k].1;
            self.decrements += cut;
            all.truncate(self.k);
            self.counters =
                all.into_iter().filter(|&(_v, c)| c > cut).map(|(v, c)| (v, c - cut)).collect();
        }
    }

    /// Number of live counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when no counters are live.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Items observed.
    pub fn items_processed(&self) -> u64 {
        self.items_processed
    }

    /// Serialize for shipping in a shard-summary packet (little-endian;
    /// see [`MisraGries::from_bytes`]). Entries are written in `top_k`
    /// order so the encoding is deterministic.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 8 + 8 + 4 + 16 * self.counters.len());
        out.extend_from_slice(&(self.k as u32).to_le_bytes());
        out.extend_from_slice(&self.items_processed.to_le_bytes());
        out.extend_from_slice(&self.decrements.to_le_bytes());
        out.extend_from_slice(&(self.counters.len() as u32).to_le_bytes());
        for (v, c) in self.top_k(self.counters.len()) {
            out.extend_from_slice(&v.to_le_bytes());
            out.extend_from_slice(&c.to_le_bytes());
        }
        out
    }

    /// Rebuild a summary serialized by [`MisraGries::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = crate::codec::Reader::new(bytes);
        let k = r.u32()? as usize;
        if k < 1 {
            return Err("need at least one counter".into());
        }
        let items_processed = r.u64()?;
        let decrements = r.u64()?;
        let len = r.u32()? as usize;
        if len > k {
            return Err(format!("{len} entries exceed the {k}-counter budget"));
        }
        let mut mg = MisraGries::new(k);
        mg.items_processed = items_processed;
        mg.decrements = decrements;
        for _ in 0..len {
            let v = r.u64()?;
            let c = r.u64()?;
            mg.counters.insert(v, c);
        }
        r.done()?;
        Ok(mg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_few_distinct_values() {
        let mut mg = MisraGries::new(10);
        for v in [1u64, 2, 1, 3, 1, 2] {
            mg.insert(v);
        }
        assert_eq!(mg.count(1), 3);
        assert_eq!(mg.count(2), 2);
        assert_eq!(mg.count(3), 1);
        assert_eq!(mg.error_bound(), 0);
    }

    #[test]
    fn majority_item_always_survives() {
        let mut mg = MisraGries::new(1);
        // Value 7 is a strict majority of the stream.
        for i in 0..1_000u64 {
            mg.insert(if i % 2 == 0 { 7 } else { i });
        }
        mg.insert(7);
        assert!(mg.count(7) > 0, "majority element must be present");
    }

    #[test]
    fn guarantee_heavy_hitters_present() {
        let k = 9; // threshold n/(k+1) = n/10
        let mut mg = MisraGries::new(k);
        let n = 10_000u64;
        // Value 5 occurs 20% of the time — well above n/10.
        for i in 0..n {
            mg.insert(if i % 5 == 0 { 5 } else { 1_000 + i });
        }
        assert!(mg.count(5) > 0);
        // Count error bounded by n/(k+1).
        let true_count = n / 5;
        assert!(mg.count(5) <= true_count);
        assert!(true_count - mg.count(5) <= n / (k as u64 + 1) + 1);
    }

    #[test]
    fn counter_budget_is_respected() {
        let mut mg = MisraGries::new(5);
        for i in 0..10_000u64 {
            mg.insert(i);
        }
        assert!(mg.len() <= 5);
    }

    #[test]
    fn top_k_sorted() {
        let mut mg = MisraGries::new(10);
        for (v, n) in [(1u64, 5), (2, 9), (3, 7)] {
            for _ in 0..n {
                mg.insert(v);
            }
        }
        assert_eq!(mg.top_k(3), vec![(2, 9), (3, 7), (1, 5)]);
    }

    #[test]
    fn merge_preserves_heavy_hitters() {
        let mut a = MisraGries::new(4);
        let mut b = MisraGries::new(4);
        for _ in 0..100 {
            a.insert(1);
            b.insert(2);
        }
        for i in 0..50u64 {
            a.insert(100 + i);
            b.insert(200 + i);
        }
        a.merge(&b);
        assert!(a.len() <= 4);
        assert!(a.count(1) > 0);
        assert!(a.count(2) > 0);
        assert_eq!(a.items_processed(), 300);
    }

    #[test]
    #[should_panic(expected = "need at least one counter")]
    fn zero_counters_panics() {
        let _ = MisraGries::new(0);
    }

    #[test]
    fn serialization_round_trip() {
        let mut mg = MisraGries::new(6);
        for i in 0..5_000u64 {
            mg.insert(if i % 4 == 0 { 9 } else { i });
        }
        let restored = MisraGries::from_bytes(&mg.to_bytes()).unwrap();
        assert_eq!(restored.len(), mg.len());
        assert_eq!(restored.items_processed(), mg.items_processed());
        assert_eq!(restored.error_bound(), mg.error_bound());
        assert_eq!(restored.top_k(6), mg.top_k(6));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(MisraGries::from_bytes(&[0; 3]).is_err());
        // More entries than the counter budget.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u32.to_le_bytes()); // k = 1
        bad.extend_from_slice(&2u64.to_le_bytes());
        bad.extend_from_slice(&0u64.to_le_bytes());
        bad.extend_from_slice(&2u32.to_le_bytes()); // but 2 entries
        bad.extend_from_slice(&[0; 32]);
        assert!(MisraGries::from_bytes(&bad).is_err());
    }
}

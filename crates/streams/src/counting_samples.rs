//! Gibbons–Matias *counting samples* — the approximate one-pass summary
//! behind the paper's `count-samps` application.
//!
//! A counting sample maintains a bounded set of entries under a sampling
//! threshold τ. Every arrival of a value already in the sample is counted
//! exactly; a new value enters the sample with probability 1/τ. When the
//! sample outgrows its footprint, τ is raised by a growth factor and
//! every entry is *subsampled down*: its sample count is decremented by
//! repeated coin flips until a flip at the new rate succeeds (or the
//! entry dies). Frequent values therefore survive while rare values wash
//! out — exactly the behaviour the top-k query needs.
//!
//! ## Frequency estimation
//!
//! Each entry tracks two counts:
//!
//! * `sample` — the Gibbons–Matias count, maintained under the
//!   subsampling invariant; eviction decisions use it.
//! * `exact` — the exact number of arrivals observed *since admission*.
//!
//! The only unobservable quantity is the number of arrivals missed
//! *before* admission, whose expectation is `0.418·τ_admit` (Gibbons &
//! Matias 1998), where `τ_admit` is the threshold at admission time. The
//! reported estimate is therefore `exact + 0.418·τ_admit`: near-exact
//! for heavy values admitted early (τ_admit ≈ 1), and properly
//! compensated for late-admitted values. This is markedly better
//! calibrated than the textbook `count + 0.418·τ_current`, which charges
//! every entry for the *current* threshold even when its count has been
//! exact since the stream began.

use rand::Rng;
use std::collections::BTreeMap;

/// Per-value state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    /// Gibbons–Matias sample count (governs survival).
    sample: u64,
    /// Exact arrivals since admission (governs the estimate).
    exact: u64,
    /// Threshold τ when this entry was (last) admitted.
    tau_admit: f64,
}

/// A bounded-footprint counting sample over `u64` values.
///
/// ```
/// use gates_streams::CountingSamples;
/// use gates_sim::rng::seeded;
///
/// let mut cs = CountingSamples::new(100);
/// let mut rng = seeded(1);
/// for i in 0..10_000u64 {
///     cs.insert(i % 7, &mut rng); // 7 heavy values
/// }
/// let top = cs.top_k(3);
/// assert_eq!(top.len(), 3);
/// assert!(top[0].estimate >= top[1].estimate);
/// ```
#[derive(Debug, Clone)]
pub struct CountingSamples {
    /// Maximum number of entries retained.
    footprint: usize,
    /// Current sampling threshold τ ≥ 1 (an arriving *new* value enters
    /// with probability 1/τ).
    tau: f64,
    /// Multiplier applied to τ on overflow.
    growth: f64,
    entries: BTreeMap<u64, Entry>,
    items_processed: u64,
}

/// One reported entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEntry {
    /// The value.
    pub value: u64,
    /// Raw retained sample count (underestimate).
    pub count: u64,
    /// Compensated frequency estimate (`exact + 0.418·τ_admit`).
    pub estimate: f64,
}

impl CountingSamples {
    /// A counting sample retaining at most `footprint` entries
    /// (`footprint ≥ 1`).
    pub fn new(footprint: usize) -> Self {
        assert!(footprint >= 1, "footprint must be at least 1");
        CountingSamples {
            footprint,
            tau: 1.0,
            growth: 1.3,
            entries: BTreeMap::new(),
            items_processed: 0,
        }
    }

    /// Change the overflow growth factor (default 1.3; must be > 1).
    pub fn with_growth(mut self, growth: f64) -> Self {
        assert!(growth > 1.0, "growth factor must exceed 1");
        self.growth = growth;
        self
    }

    /// Observe one value from the stream.
    pub fn insert<R: Rng>(&mut self, value: u64, rng: &mut R) {
        self.items_processed += 1;
        if let Some(e) = self.entries.get_mut(&value) {
            e.sample += 1;
            e.exact += 1;
            return;
        }
        // New value: admit with probability 1/τ.
        if self.tau <= 1.0 || rng.gen::<f64>() < 1.0 / self.tau {
            self.entries.insert(value, Entry { sample: 1, exact: 1, tau_admit: self.tau });
            if self.entries.len() > self.footprint {
                self.evict(rng);
            }
        }
    }

    /// Raise τ and subsample every entry until the footprint is honoured.
    fn evict<R: Rng>(&mut self, rng: &mut R) {
        while self.entries.len() > self.footprint {
            let old_tau = self.tau;
            self.tau *= self.growth;
            let keep_prob = old_tau / self.tau;
            let tau = self.tau;
            self.entries.retain(|_, e| {
                // Flip until a coin at the new rate succeeds; each failure
                // burns one unit of sample count (Gibbons–Matias
                // subsampling). A decremented survivor has effectively
                // been re-sampled at the new threshold.
                let before = e.sample;
                while e.sample > 0 && rng.gen::<f64>() >= keep_prob {
                    e.sample -= 1;
                }
                if e.sample == 0 {
                    return false;
                }
                if e.sample != before {
                    e.tau_admit = tau;
                }
                true
            });
        }
    }

    /// Change the footprint at runtime — this is the paper's adjustment
    /// parameter for count-samps ("the number of frequently occurring
    /// values at each sub-stream is the adjustment parameter"). Shrinking
    /// below the current size triggers subsampling eviction; growing
    /// simply allows more entries.
    pub fn resize<R: Rng>(&mut self, footprint: usize, rng: &mut R) {
        assert!(footprint >= 1, "footprint must be at least 1");
        self.footprint = footprint;
        if self.entries.len() > self.footprint {
            self.evict(rng);
        }
    }

    /// Entries with the largest estimates, descending (ties by value for
    /// determinism). `k` may exceed the sample size.
    pub fn top_k(&self, k: usize) -> Vec<SampleEntry> {
        let mut all: Vec<SampleEntry> = self
            .entries
            .iter()
            .map(|(&value, e)| SampleEntry {
                value,
                count: e.sample,
                estimate: e.exact as f64 + 0.418 * (e.tau_admit - 1.0).max(0.0),
            })
            .collect();
        all.sort_by(|a, b| {
            b.estimate.partial_cmp(&a.estimate).unwrap().then(a.value.cmp(&b.value))
        });
        all.truncate(k);
        all
    }

    /// Merge another summary into this one (distributed aggregation).
    ///
    /// Counting samples taken over *disjoint* sub-streams are combined by
    /// summing per-value counts; the threshold becomes the max of the
    /// two. This is the merge the paper's central collector performs on
    /// the summaries received from the source-side stages.
    pub fn merge(&mut self, other: &CountingSamples) {
        for (&value, e) in &other.entries {
            let slot = self.entries.entry(value).or_insert(Entry {
                sample: 0,
                exact: 0,
                tau_admit: e.tau_admit,
            });
            slot.sample += e.sample;
            slot.exact += e.exact;
            slot.tau_admit = slot.tau_admit.max(e.tau_admit);
        }
        self.tau = self.tau.max(other.tau);
        self.items_processed += other.items_processed;
        // Footprint enforcement after merge keeps only the heaviest
        // entries; deterministic (no rng) truncation keeps merge pure.
        if self.entries.len() > self.footprint {
            let mut all: Vec<(u64, Entry)> =
                std::mem::take(&mut self.entries).into_iter().collect();
            all.sort_by(|a, b| b.1.exact.cmp(&a.1.exact).then(a.0.cmp(&b.0)));
            all.truncate(self.footprint);
            self.entries = all.into_iter().collect();
        }
    }

    /// Merge from serialized `(value, count)` pairs (wire form).
    pub fn merge_entries(&mut self, entries: &[(u64, u64)], other_tau: f64) {
        for &(value, count) in entries {
            let slot =
                self.entries.entry(value).or_insert(Entry { sample: 0, exact: 0, tau_admit: 1.0 });
            slot.sample += count;
            slot.exact += count;
        }
        self.tau = self.tau.max(other_tau);
    }

    /// Current number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Current sampling threshold τ.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The configured footprint.
    pub fn footprint(&self) -> usize {
        self.footprint
    }

    /// Total items observed (including non-admitted ones).
    pub fn items_processed(&self) -> u64 {
        self.items_processed
    }

    /// Raw retained sample count for `value`, if present.
    pub fn count(&self, value: u64) -> Option<u64> {
        self.entries.get(&value).map(|e| e.sample)
    }

    /// Exact-since-admission count for `value`, if present.
    pub fn exact_count(&self, value: u64) -> Option<u64> {
        self.entries.get(&value).map(|e| e.exact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates_sim::rng::seeded;

    #[test]
    fn exact_when_under_footprint() {
        let mut cs = CountingSamples::new(100);
        let mut rng = seeded(1);
        for i in 0..50u64 {
            for _ in 0..=i % 5 {
                cs.insert(i, &mut rng);
            }
        }
        // τ never rose, so all counts are exact.
        assert_eq!(cs.tau(), 1.0);
        assert_eq!(cs.count(4), Some(5));
        assert_eq!(cs.exact_count(4), Some(5));
        assert_eq!(cs.count(0), Some(1));
    }

    #[test]
    fn footprint_is_enforced() {
        let mut cs = CountingSamples::new(10);
        let mut rng = seeded(2);
        for i in 0..10_000u64 {
            cs.insert(i % 1000, &mut rng);
        }
        assert!(cs.len() <= 10);
        assert!(cs.tau() > 1.0, "tau must have risen");
    }

    #[test]
    fn heavy_hitters_survive_subsampling() {
        let mut cs = CountingSamples::new(20);
        let mut rng = seeded(3);
        // 2 heavy values (30% each) + 4000 rare values.
        for i in 0..20_000u64 {
            let v = match i % 10 {
                0..=2 => 1,
                3..=5 => 2,
                _ => 1000 + (i % 4000),
            };
            cs.insert(v, &mut rng);
        }
        let top = cs.top_k(2);
        let top_values: Vec<u64> = top.iter().map(|e| e.value).collect();
        assert!(top_values.contains(&1), "heavy value 1 must survive: {top:?}");
        assert!(top_values.contains(&2), "heavy value 2 must survive: {top:?}");
    }

    #[test]
    fn early_admitted_heavy_values_are_nearly_exact() {
        let mut cs = CountingSamples::new(50);
        let mut rng = seeded(4);
        let heavy_count = 5_000u64;
        // Admit the heavy value first (τ = 1), then churn the sample.
        for _ in 0..heavy_count {
            cs.insert(42, &mut rng);
        }
        for i in 0..5_000u64 {
            cs.insert(100 + i, &mut rng);
        }
        let top = cs.top_k(1);
        assert_eq!(top[0].value, 42);
        let rel_err = (top[0].estimate - heavy_count as f64).abs() / heavy_count as f64;
        assert!(rel_err < 0.01, "early-admitted heavy value must be near exact, off by {rel_err}");
    }

    #[test]
    fn late_admitted_values_get_compensated() {
        let mut cs = CountingSamples::new(8);
        let mut rng = seeded(5);
        // Mild churn to raise τ above 1 without exploding it.
        for i in 0..200u64 {
            cs.insert(1_000 + (i % 40), &mut rng);
        }
        let tau_before = cs.tau();
        assert!(tau_before > 1.0, "churn must raise tau, got {tau_before}");
        // Force a late admission: insert value 7 until it sticks (each
        // attempt succeeds with probability 1/τ, so this terminates).
        let mut attempts = 0u64;
        while cs.exact_count(7).is_none() {
            cs.insert(7, &mut rng);
            attempts += 1;
            assert!(attempts < 1_000_000, "admission must eventually succeed");
        }
        // Grow its exact count a little, then check the estimator.
        for _ in 0..50 {
            cs.insert(7, &mut rng);
        }
        let exact = cs.exact_count(7).unwrap() as f64;
        let entry = *cs.top_k(cs.len()).iter().find(|e| e.value == 7).expect("value 7 present");
        assert!(entry.estimate > exact, "late admission must be compensated");
        assert!(
            entry.estimate - exact <= 0.418 * cs.tau() + 1e-9,
            "compensation bounded by the current threshold"
        );
    }

    #[test]
    fn top_k_is_sorted_and_truncated() {
        let mut cs = CountingSamples::new(100);
        let mut rng = seeded(5);
        for (v, n) in [(1u64, 10), (2, 30), (3, 20)] {
            for _ in 0..n {
                cs.insert(v, &mut rng);
            }
        }
        let top = cs.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].value, 2);
        assert_eq!(top[1].value, 3);
        assert_eq!(cs.top_k(99).len(), 3, "k beyond size returns all");
    }

    #[test]
    fn merge_sums_disjoint_substreams() {
        let mut rng = seeded(6);
        let mut a = CountingSamples::new(100);
        let mut b = CountingSamples::new(100);
        for _ in 0..50 {
            a.insert(7, &mut rng);
        }
        for _ in 0..70 {
            b.insert(7, &mut rng);
        }
        for _ in 0..10 {
            b.insert(9, &mut rng);
        }
        a.merge(&b);
        assert_eq!(a.count(7), Some(120));
        assert_eq!(a.count(9), Some(10));
        assert_eq!(a.items_processed(), 130);
    }

    #[test]
    fn merge_respects_footprint() {
        let mut rng = seeded(7);
        let mut a = CountingSamples::new(5);
        let mut b = CountingSamples::new(5);
        for v in 0..5u64 {
            for _ in 0..(v + 1) * 10 {
                a.insert(v, &mut rng);
            }
        }
        for v in 10..15u64 {
            for _ in 0..(v - 9) * 100 {
                b.insert(v, &mut rng);
            }
        }
        a.merge(&b);
        assert!(a.len() <= 5);
        // The heaviest value overall (14, count 500) must be present.
        assert!(a.count(14).is_some());
    }

    #[test]
    fn merge_entries_wire_form() {
        let mut a = CountingSamples::new(10);
        a.merge_entries(&[(1, 5), (2, 7)], 2.0);
        assert_eq!(a.count(1), Some(5));
        assert_eq!(a.tau(), 2.0);
    }

    #[test]
    fn deterministic_under_seeded_rng() {
        let run = |seed: u64| {
            let mut cs = CountingSamples::new(10);
            let mut rng = seeded(seed);
            for i in 0..5_000u64 {
                cs.insert(i % 300, &mut rng);
            }
            cs.top_k(10)
        };
        assert_eq!(run(42), run(42));
    }

    #[test]
    fn resize_shrinks_and_grows() {
        let mut cs = CountingSamples::new(50);
        let mut rng = seeded(11);
        for i in 0..5_000u64 {
            cs.insert(i % 40, &mut rng);
        }
        assert_eq!(cs.len(), 40);
        cs.resize(10, &mut rng);
        assert!(cs.len() <= 10, "shrink must evict, kept {}", cs.len());
        assert!(cs.tau() > 1.0);
        cs.resize(100, &mut rng);
        for i in 100..160u64 {
            cs.insert(i, &mut rng);
        }
        assert!(cs.len() <= 100, "grown footprint admits more entries");
        assert_eq!(cs.footprint(), 100);
    }

    #[test]
    #[should_panic(expected = "footprint must be at least 1")]
    fn zero_footprint_panics() {
        let _ = CountingSamples::new(0);
    }

    #[test]
    #[should_panic(expected = "growth factor must exceed 1")]
    fn bad_growth_panics() {
        let _ = CountingSamples::new(10).with_growth(1.0);
    }
}

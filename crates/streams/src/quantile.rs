//! P² streaming quantile estimation (Jain & Chlamtac 1985): tracks one
//! quantile with five markers and O(1) memory — used by the
//! computational-steering analysis stage to monitor field-value
//! distributions without storing the stream.

/// A single-quantile P² estimator.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimated values).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five observations, buffered before initialization.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for quantile `q ∈ (0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Observe a value.
    pub fn insert(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).unwrap());
                for (i, &v) in self.init.iter().enumerate() {
                    self.heights[i] = v;
                }
            }
            return;
        }

        // Find the cell containing x and adjust extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers with the parabolic formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + sign / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + sign) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - sign) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = (i as f64 + sign) as usize;
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate (`None` before 5 observations).
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.init.len() < 5 {
            // Exact small-sample quantile.
            let mut sorted = self.init.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((sorted.len() as f64 - 1.0) * self.q).round() as usize;
            return sorted.get(idx).copied();
        }
        Some(self.heights[2])
    }

    /// The tracked quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations so far.
    pub fn count(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates_sim::rng::seeded;
    use rand::Rng;

    #[test]
    fn small_sample_is_exact() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.value(), None);
        for x in [3.0, 1.0, 2.0] {
            p.insert(x);
        }
        assert_eq!(p.value(), Some(2.0));
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = seeded(1);
        for _ in 0..50_000 {
            p.insert(rng.gen::<f64>());
        }
        let v = p.value().unwrap();
        assert!((v - 0.5).abs() < 0.02, "median of U(0,1) ≈ 0.5, got {v}");
    }

    #[test]
    fn p90_of_uniform_converges() {
        let mut p = P2Quantile::new(0.9);
        let mut rng = seeded(2);
        for _ in 0..50_000 {
            p.insert(rng.gen::<f64>());
        }
        let v = p.value().unwrap();
        assert!((v - 0.9).abs() < 0.03, "p90 of U(0,1) ≈ 0.9, got {v}");
    }

    #[test]
    fn handles_sorted_input() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..10_000 {
            p.insert(i as f64);
        }
        let v = p.value().unwrap();
        assert!((v - 5_000.0).abs() < 500.0, "median of 0..10000 ≈ 5000, got {v}");
    }

    #[test]
    fn handles_constant_input() {
        let mut p = P2Quantile::new(0.25);
        for _ in 0..1_000 {
            p.insert(7.0);
        }
        assert_eq!(p.value(), Some(7.0));
    }

    #[test]
    fn count_tracks_observations() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..42 {
            p.insert(i as f64);
        }
        assert_eq!(p.count(), 42);
        assert_eq!(p.q(), 0.5);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn quantile_bounds_enforced() {
        let _ = P2Quantile::new(1.0);
    }
}

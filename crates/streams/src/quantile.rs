//! P² streaming quantile estimation (Jain & Chlamtac 1985): tracks one
//! quantile with five markers and O(1) memory — used by the
//! computational-steering analysis stage to monitor field-value
//! distributions without storing the stream.

/// A single-quantile P² estimator.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    q: f64,
    /// Marker heights (estimated values).
    heights: [f64; 5],
    /// Marker positions (1-based ranks).
    positions: [f64; 5],
    /// Desired marker positions.
    desired: [f64; 5],
    /// Desired position increments per observation.
    increments: [f64; 5],
    count: usize,
    /// First five observations, buffered before initialization.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Estimator for quantile `q ∈ (0, 1)`.
    pub fn new(q: f64) -> Self {
        assert!(q > 0.0 && q < 1.0, "quantile must be in (0,1)");
        P2Quantile {
            q,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0],
            increments: [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// Observe a value.
    pub fn insert(&mut self, x: f64) {
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).unwrap());
                for (i, &v) in self.init.iter().enumerate() {
                    self.heights[i] = v;
                }
            }
            return;
        }

        // Find the cell containing x and adjust extreme markers.
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut cell = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    cell = i;
                    break;
                }
            }
            cell
        };

        for p in self.positions.iter_mut().skip(k + 1) {
            *p += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments) {
            *d += inc;
        }

        // Adjust the three interior markers with the parabolic formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let right_gap = self.positions[i + 1] - self.positions[i];
            let left_gap = self.positions[i - 1] - self.positions[i];
            if (d >= 1.0 && right_gap > 1.0) || (d <= -1.0 && left_gap < -1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                self.heights[i] =
                    if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                        candidate
                    } else {
                        self.linear(i, sign)
                    };
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let p = &self.positions;
        let h = &self.heights;
        h[i] + sign / (p[i + 1] - p[i - 1])
            * ((p[i] - p[i - 1] + sign) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
                + (p[i + 1] - p[i] - sign) * (h[i] - h[i - 1]) / (p[i] - p[i - 1]))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = (i as f64 + sign) as usize;
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// The current quantile estimate (`None` before 5 observations).
    pub fn value(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.init.len() < 5 {
            // Exact small-sample quantile.
            let mut sorted = self.init.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let idx = ((sorted.len() as f64 - 1.0) * self.q).round() as usize;
            return sorted.get(idx).copied();
        }
        Some(self.heights[2])
    }

    /// Merge another estimator tracking the same quantile.
    ///
    /// P² has no exact merge (markers summarize different prefixes of
    /// different streams), so this is the standard count-weighted
    /// approximation: marker heights average weighted by observation
    /// counts, ranks add, and desired positions are recomputed for the
    /// combined count. Uninitialized sides (fewer than 5 observations)
    /// replay their buffered samples exactly. Per-shard estimates of a
    /// key-partitioned stream combine to within the estimator's normal
    /// accuracy:
    ///
    /// ```
    /// use gates_streams::P2Quantile;
    ///
    /// let (mut a, mut b) = (P2Quantile::new(0.5), P2Quantile::new(0.5));
    /// for i in 0..10_000 {
    ///     // Two shards each seeing half of 0..10000.
    ///     if i % 2 == 0 { a.insert(i as f64) } else { b.insert(i as f64) }
    /// }
    /// a.merge(&b).unwrap();
    /// assert_eq!(a.count(), 10_000);
    /// let median = a.value().unwrap();
    /// assert!((median - 5_000.0).abs() < 500.0, "merged median {median}");
    /// ```
    pub fn merge(&mut self, other: &P2Quantile) -> Result<(), String> {
        if (self.q - other.q).abs() > f64::EPSILON {
            return Err(format!("quantile mismatch: {} vs {}", self.q, other.q));
        }
        if other.count == 0 {
            return Ok(());
        }
        if other.init.len() < 5 {
            // The other side never left its exact buffer: replay it.
            for &x in &other.init {
                self.insert(x);
            }
            return Ok(());
        }
        if self.init.len() < 5 {
            // We are the small side: adopt the other's state and replay
            // our exact buffer into it.
            let mine = std::mem::take(&mut self.init);
            *self = other.clone();
            for x in mine {
                self.insert(x);
            }
            return Ok(());
        }
        let (a, b) = (self.count as f64, other.count as f64);
        for i in 0..5 {
            // Weighted averages of two sorted marker arrays stay sorted.
            self.heights[i] = (self.heights[i] * a + other.heights[i] * b) / (a + b);
            self.positions[i] += other.positions[i];
        }
        self.positions[0] = 1.0; // the combined minimum still has rank 1
        self.count += other.count;
        let n = self.count as f64;
        let q = self.q;
        let base = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0];
        for (i, b) in base.iter().enumerate() {
            self.desired[i] = b + (n - 5.0) * self.increments[i];
        }
        Ok(())
    }

    /// The tracked quantile.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Observations so far.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Serialize for shipping in a shard-summary packet (little-endian;
    /// see [`P2Quantile::from_bytes`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 + 1 + 8 * self.init.len() + 8 * 15);
        out.extend_from_slice(&self.q.to_le_bytes());
        out.extend_from_slice(&(self.count as u64).to_le_bytes());
        out.push(self.init.len() as u8);
        for &x in &self.init {
            out.extend_from_slice(&x.to_le_bytes());
        }
        for arr in [&self.heights, &self.positions, &self.desired] {
            for &x in arr.iter() {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        out
    }

    /// Rebuild an estimator serialized by [`P2Quantile::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = crate::codec::Reader::new(bytes);
        let q = r.f64()?;
        if !(q > 0.0 && q < 1.0) {
            return Err(format!("quantile {q} out of (0,1)"));
        }
        let count = r.u64()? as usize;
        let init_len = r.u8()? as usize;
        if init_len > 5 {
            return Err(format!("init buffer length {init_len} exceeds 5"));
        }
        let mut p = P2Quantile::new(q);
        p.count = count;
        for _ in 0..init_len {
            p.init.push(r.f64()?);
        }
        for arr in [&mut p.heights, &mut p.positions, &mut p.desired] {
            for x in arr.iter_mut() {
                *x = r.f64()?;
            }
        }
        r.done()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates_sim::rng::seeded;
    use rand::Rng;

    #[test]
    fn small_sample_is_exact() {
        let mut p = P2Quantile::new(0.5);
        assert_eq!(p.value(), None);
        for x in [3.0, 1.0, 2.0] {
            p.insert(x);
        }
        assert_eq!(p.value(), Some(2.0));
    }

    #[test]
    fn median_of_uniform_converges() {
        let mut p = P2Quantile::new(0.5);
        let mut rng = seeded(1);
        for _ in 0..50_000 {
            p.insert(rng.gen::<f64>());
        }
        let v = p.value().unwrap();
        assert!((v - 0.5).abs() < 0.02, "median of U(0,1) ≈ 0.5, got {v}");
    }

    #[test]
    fn p90_of_uniform_converges() {
        let mut p = P2Quantile::new(0.9);
        let mut rng = seeded(2);
        for _ in 0..50_000 {
            p.insert(rng.gen::<f64>());
        }
        let v = p.value().unwrap();
        assert!((v - 0.9).abs() < 0.03, "p90 of U(0,1) ≈ 0.9, got {v}");
    }

    #[test]
    fn handles_sorted_input() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..10_000 {
            p.insert(i as f64);
        }
        let v = p.value().unwrap();
        assert!((v - 5_000.0).abs() < 500.0, "median of 0..10000 ≈ 5000, got {v}");
    }

    #[test]
    fn handles_constant_input() {
        let mut p = P2Quantile::new(0.25);
        for _ in 0..1_000 {
            p.insert(7.0);
        }
        assert_eq!(p.value(), Some(7.0));
    }

    #[test]
    fn count_tracks_observations() {
        let mut p = P2Quantile::new(0.5);
        for i in 0..42 {
            p.insert(i as f64);
        }
        assert_eq!(p.count(), 42);
        assert_eq!(p.q(), 0.5);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1)")]
    fn quantile_bounds_enforced() {
        let _ = P2Quantile::new(1.0);
    }

    #[test]
    fn merge_tracks_unsharded_estimate() {
        let mut whole = P2Quantile::new(0.5);
        let mut shards = vec![P2Quantile::new(0.5); 4];
        let mut rng = seeded(3);
        for _ in 0..40_000 {
            let x = rng.gen::<f64>();
            whole.insert(x);
            let s = (rng.gen::<u64>() % 4) as usize;
            shards[s].insert(x);
        }
        let mut merged = shards.remove(0);
        for s in &shards {
            merged.merge(s).unwrap();
        }
        assert_eq!(merged.count(), whole.count());
        let (m, w) = (merged.value().unwrap(), whole.value().unwrap());
        assert!((m - 0.5).abs() < 0.05, "merged median {m} off from 0.5");
        assert!((m - w).abs() < 0.05, "merged {m} vs unsharded {w}");
    }

    #[test]
    fn merge_with_tiny_sides() {
        // Other side below its init buffer: replayed exactly.
        let mut a = P2Quantile::new(0.5);
        let mut b = P2Quantile::new(0.5);
        for i in 0..100 {
            a.insert(i as f64);
        }
        b.insert(1.0);
        b.insert(2.0);
        a.merge(&b).unwrap();
        assert_eq!(a.count(), 102);
        // Self below its buffer: adopts the other's state.
        let mut c = P2Quantile::new(0.5);
        c.insert(50.0);
        c.merge(&a).unwrap();
        assert_eq!(c.count(), 103);
        assert!(c.value().is_some());
    }

    #[test]
    fn merge_quantile_mismatch_is_error() {
        let mut a = P2Quantile::new(0.5);
        let b = P2Quantile::new(0.9);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn serialization_round_trip() {
        let mut p = P2Quantile::new(0.9);
        let mut rng = seeded(4);
        for _ in 0..10_000 {
            p.insert(rng.gen::<f64>());
        }
        let restored = P2Quantile::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(restored.count(), p.count());
        assert_eq!(restored.value(), p.value());
        // A tiny (pre-init) estimator round-trips its exact buffer too.
        let mut tiny = P2Quantile::new(0.5);
        tiny.insert(3.0);
        let restored = P2Quantile::from_bytes(&tiny.to_bytes()).unwrap();
        assert_eq!(restored.value(), Some(3.0));
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(P2Quantile::from_bytes(&[1, 2, 3]).is_err());
        let mut ok = P2Quantile::new(0.5);
        ok.insert(1.0);
        let mut bytes = ok.to_bytes();
        bytes.push(0); // trailing byte
        assert!(P2Quantile::from_bytes(&bytes).is_err());
    }
}

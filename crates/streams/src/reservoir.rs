//! Reservoir sampling (Vitter's Algorithm R): a uniform sample of fixed
//! size over an unbounded stream. The simplest possible "adjustment
//! parameter" summary — the sample size trades memory/transfer volume
//! against fidelity.

use rand::Rng;

/// A fixed-capacity uniform sample over items of type `T`.
#[derive(Debug, Clone)]
pub struct Reservoir<T> {
    capacity: usize,
    items: Vec<T>,
    seen: u64,
}

impl<T> Reservoir<T> {
    /// Reservoir holding up to `capacity ≥ 1` items.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "capacity must be at least 1");
        Reservoir { capacity, items: Vec::with_capacity(capacity), seen: 0 }
    }

    /// Observe one item.
    pub fn insert<R: Rng>(&mut self, item: T, rng: &mut R) {
        self.seen += 1;
        if self.items.len() < self.capacity {
            self.items.push(item);
        } else {
            // Replace a random slot with probability capacity/seen.
            let j = rng.gen_range(0..self.seen);
            if (j as usize) < self.capacity {
                self.items[j as usize] = item;
            }
        }
    }

    /// The current sample.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Items observed so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Sample capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of items currently in the sample.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates_sim::rng::seeded;

    #[test]
    fn fills_up_to_capacity_then_stays() {
        let mut r = Reservoir::new(10);
        let mut rng = seeded(1);
        for i in 0..5u64 {
            r.insert(i, &mut rng);
        }
        assert_eq!(r.len(), 5);
        for i in 5..100u64 {
            r.insert(i, &mut rng);
        }
        assert_eq!(r.len(), 10);
        assert_eq!(r.seen(), 100);
    }

    #[test]
    fn short_stream_is_kept_exactly() {
        let mut r = Reservoir::new(100);
        let mut rng = seeded(2);
        for i in 0..20u64 {
            r.insert(i, &mut rng);
        }
        let mut items = r.items().to_vec();
        items.sort_unstable();
        assert_eq!(items, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_is_approximately_uniform() {
        // Insert 0..1000 into a 100-slot reservoir many times; each value
        // should appear with probability ~0.1.
        let trials = 400;
        let mut hits = vec![0u32; 1000];
        for seed in 0..trials {
            let mut r = Reservoir::new(100);
            let mut rng = seeded(seed);
            for i in 0..1000u64 {
                r.insert(i, &mut rng);
            }
            for &v in r.items() {
                hits[v as usize] += 1;
            }
        }
        // Expected hits per value = trials * 100/1000 = 40. Check the
        // first/last deciles are not wildly biased (±50%).
        let first: u32 = hits[..100].iter().sum();
        let last: u32 = hits[900..].iter().sum();
        let expected = trials as u32 * 100 * 100 / 1000;
        for (label, sum) in [("first", first), ("last", last)] {
            assert!(
                (sum as f64) > 0.5 * expected as f64 && (sum as f64) < 1.5 * expected as f64,
                "{label} decile biased: {sum} vs expected {expected}"
            );
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let run = |seed| {
            let mut r = Reservoir::new(5);
            let mut rng = seeded(seed);
            for i in 0..1000u64 {
                r.insert(i, &mut rng);
            }
            r.items().to_vec()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_panics() {
        let _ = Reservoir::<u64>::new(0);
    }
}

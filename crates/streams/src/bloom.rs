//! Bloom filter: approximate set membership with no false negatives.
//!
//! The intrusion template uses one as a *known-benign allowlist* — a
//! site can suppress reports for addresses the operations team has
//! vetted, at a few bits per entry, and ship the filter itself to new
//! sites (it serializes to its bit array).

/// A Bloom filter over `u64` keys.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Number of bits (power of two for cheap masking).
    m: usize,
    /// Number of hash probes.
    k: u32,
    items: u64,
}

fn mix(x: u64, seed: u64) -> u64 {
    let mut z = x ^ seed.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

impl BloomFilter {
    /// Filter sized for `expected` items at the given false-positive
    /// rate (`0 < fp < 1`).
    pub fn new(expected: usize, fp: f64) -> Self {
        assert!(expected >= 1, "expected items must be positive");
        assert!(fp > 0.0 && fp < 1.0, "false-positive rate in (0,1)");
        // m = -n·ln(p)/ln(2)², k = m/n·ln(2); round m up to a power of two.
        let m_exact = -(expected as f64) * fp.ln() / std::f64::consts::LN_2.powi(2);
        let m = (m_exact.ceil() as usize).next_power_of_two().max(64);
        let k =
            ((m as f64 / expected as f64) * std::f64::consts::LN_2).round().clamp(1.0, 16.0) as u32;
        BloomFilter { bits: vec![0; m / 64], m, k, items: 0 }
    }

    fn probe(&self, key: u64, i: u32) -> usize {
        // Double hashing: h1 + i·h2, standard Kirsch–Mitzenmacher.
        let h1 = mix(key, 0x9E37_79B9_7F4A_7C15);
        let h2 = mix(key, 0x6A09_E667_F3BC_C909) | 1;
        (h1.wrapping_add((i as u64).wrapping_mul(h2)) & (self.m as u64 - 1)) as usize
    }

    /// Add a key.
    pub fn insert(&mut self, key: u64) {
        for i in 0..self.k {
            let bit = self.probe(key, i);
            self.bits[bit / 64] |= 1 << (bit % 64);
        }
        self.items += 1;
    }

    /// Membership test: `false` is definitive; `true` may be a false
    /// positive (at ≈ the configured rate).
    pub fn contains(&self, key: u64) -> bool {
        (0..self.k).all(|i| {
            let bit = self.probe(key, i);
            self.bits[bit / 64] & (1 << (bit % 64)) != 0
        })
    }

    /// Union with a same-shape filter.
    pub fn union(&mut self, other: &BloomFilter) -> Result<(), String> {
        if self.m != other.m || self.k != other.k {
            return Err(format!(
                "shape mismatch: ({}, {}) vs ({}, {})",
                self.m, self.k, other.m, other.k
            ));
        }
        for (mine, theirs) in self.bits.iter_mut().zip(&other.bits) {
            *mine |= *theirs;
        }
        self.items += other.items;
        Ok(())
    }

    /// Number of bits.
    pub fn bit_len(&self) -> usize {
        self.m
    }

    /// Hash probes per key.
    pub fn hashes(&self) -> u32 {
        self.k
    }

    /// Items inserted (upper bound; duplicates counted).
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Fraction of bits set (fill factor; ~0.5 at design load).
    pub fn fill(&self) -> f64 {
        let set: u32 = self.bits.iter().map(|w| w.count_ones()).sum();
        set as f64 / self.m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::new(1_000, 0.01);
        for i in 0..1_000u64 {
            bf.insert(i * 3);
        }
        for i in 0..1_000u64 {
            assert!(bf.contains(i * 3), "inserted key {} missing", i * 3);
        }
    }

    #[test]
    fn false_positive_rate_near_design() {
        let mut bf = BloomFilter::new(10_000, 0.01);
        for i in 0..10_000u64 {
            bf.insert(i);
        }
        let mut fp = 0u32;
        let probes = 100_000u64;
        for i in 0..probes {
            if bf.contains(1_000_000 + i) {
                fp += 1;
            }
        }
        let rate = fp as f64 / probes as f64;
        assert!(rate < 0.03, "false-positive rate {rate} far above design 0.01");
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let bf = BloomFilter::new(100, 0.01);
        for i in 0..1_000u64 {
            assert!(!bf.contains(i));
        }
        assert_eq!(bf.fill(), 0.0);
    }

    #[test]
    fn union_contains_both_sides() {
        let mut a = BloomFilter::new(1_000, 0.01);
        let mut b = BloomFilter::new(1_000, 0.01);
        for i in 0..500u64 {
            a.insert(i);
            b.insert(10_000 + i);
        }
        a.union(&b).unwrap();
        for i in 0..500u64 {
            assert!(a.contains(i));
            assert!(a.contains(10_000 + i));
        }
        assert_eq!(a.items(), 1_000);
    }

    #[test]
    fn union_shape_mismatch_is_error() {
        let mut a = BloomFilter::new(1_000, 0.01);
        let b = BloomFilter::new(10, 0.5);
        assert!(a.union(&b).is_err());
    }

    #[test]
    fn sizing_is_sane() {
        let bf = BloomFilter::new(10_000, 0.01);
        // ~9.6 bits/item, rounded to a power of two: 131072 bits.
        assert!(bf.bit_len() >= 95_851);
        assert!(bf.bit_len().is_power_of_two());
        assert!((5..=10).contains(&bf.hashes()));
    }

    #[test]
    fn fill_factor_reasonable_at_design_load() {
        let mut bf = BloomFilter::new(1_000, 0.01);
        for i in 0..1_000u64 {
            bf.insert(i);
        }
        let fill = bf.fill();
        assert!(fill > 0.2 && fill < 0.7, "fill {fill} should be near 0.5");
    }

    #[test]
    #[should_panic(expected = "false-positive rate in (0,1)")]
    fn bad_fp_rate_panics() {
        let _ = BloomFilter::new(100, 1.0);
    }
}

//! HyperLogLog distinct counting (Flajolet et al. 2007).
//!
//! Network-intrusion monitoring needs more than frequency: a port scan
//! is a source contacting many *distinct* destinations with few packets
//! each, invisible to heavy-hitter summaries. HyperLogLog estimates the
//! distinct count in O(2^b) bytes with ~1.04/√(2^b) relative error, and
//! merges losslessly — ideal for per-site sketching with central union.

/// A HyperLogLog cardinality estimator over `u64` items.
///
/// ```
/// use gates_streams::HyperLogLog;
///
/// let mut hll = HyperLogLog::new(10);
/// for i in 0..1_000u64 {
///     hll.insert(i);
///     hll.insert(i); // duplicates don't count
/// }
/// let est = hll.estimate();
/// assert!((est - 1_000.0).abs() < 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperLogLog {
    /// log2 of the register count (4 ≤ b ≤ 16).
    b: u32,
    registers: Vec<u8>,
}

fn hash64(x: u64) -> u64 {
    // SplitMix64 finalizer: good avalanche for sequential ids.
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl HyperLogLog {
    /// Estimator with `2^b` registers (`b` in `4..=16`; 2^b bytes of
    /// state; typical choice b = 10 ⇒ ~3% error).
    pub fn new(b: u32) -> Self {
        assert!((4..=16).contains(&b), "b must be in 4..=16");
        HyperLogLog { b, registers: vec![0; 1 << b] }
    }

    /// Observe an item.
    pub fn insert(&mut self, item: u64) {
        let h = hash64(item);
        let idx = (h >> (64 - self.b)) as usize;
        // Rank of the first 1-bit among the remaining 64−b bits, 1-based.
        let rest = h << self.b;
        let rank =
            if rest == 0 { (64 - self.b + 1) as u8 } else { (rest.leading_zeros() + 1) as u8 };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct items observed.
    pub fn estimate(&self) -> f64 {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / sum;

        // Small-range correction (linear counting) and the standard
        // large-range correction.
        if raw <= 2.5 * m {
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        let two64 = 2f64.powi(64);
        if raw > two64 / 30.0 {
            return -two64 * (1.0 - raw / two64).ln();
        }
        raw
    }

    /// Merge another estimator (must have the same register count).
    /// The union is exact: register-wise max.
    ///
    /// Because the union is exact, per-shard estimators of a
    /// key-partitioned stream merge into *identical* state to a single
    /// estimator that saw everything:
    ///
    /// ```
    /// use gates_streams::HyperLogLog;
    ///
    /// let mut whole = HyperLogLog::new(10);
    /// let (mut a, mut b) = (HyperLogLog::new(10), HyperLogLog::new(10));
    /// for i in 0..10_000u64 {
    ///     whole.insert(i);
    ///     if i % 2 == 0 { a.insert(i) } else { b.insert(i) } // two shards
    /// }
    /// a.merge(&b).unwrap();
    /// assert_eq!(a, whole, "register-wise max reconstructs the unsharded state");
    /// ```
    pub fn merge(&mut self, other: &HyperLogLog) -> Result<(), String> {
        if self.b != other.b {
            return Err(format!("register mismatch: 2^{} vs 2^{}", self.b, other.b));
        }
        for (mine, theirs) in self.registers.iter_mut().zip(&other.registers) {
            *mine = (*mine).max(*theirs);
        }
        Ok(())
    }

    /// Serialized register bytes (for shipping in a summary packet).
    pub fn registers(&self) -> &[u8] {
        &self.registers
    }

    /// Rebuild from serialized registers.
    pub fn from_registers(registers: Vec<u8>) -> Result<Self, String> {
        let len = registers.len();
        if !len.is_power_of_two() || !(16..=65_536).contains(&len) {
            return Err(format!("invalid register count {len}"));
        }
        Ok(HyperLogLog { b: len.trailing_zeros(), registers })
    }

    /// Expected relative standard error for this size (≈1.04/√m).
    pub fn standard_error(&self) -> f64 {
        1.04 / (self.registers.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_estimates_zero() {
        let hll = HyperLogLog::new(10);
        assert!(hll.estimate() < 1.0);
    }

    #[test]
    fn small_cardinalities_are_close() {
        let mut hll = HyperLogLog::new(10);
        for i in 0..100u64 {
            hll.insert(i);
        }
        let est = hll.estimate();
        assert!((est - 100.0).abs() < 10.0, "estimate {est} for 100 distinct");
    }

    #[test]
    fn large_cardinalities_within_error_bound() {
        let mut hll = HyperLogLog::new(12); // σ ≈ 1.6%
        let n = 100_000u64;
        for i in 0..n {
            hll.insert(i.wrapping_mul(0x1234_5678_9ABC_DEF1));
        }
        let est = hll.estimate();
        let rel = (est - n as f64).abs() / n as f64;
        assert!(rel < 5.0 * hll.standard_error(), "relative error {rel}");
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut hll = HyperLogLog::new(10);
        for _ in 0..10_000 {
            for v in 0..50u64 {
                hll.insert(v);
            }
        }
        let est = hll.estimate();
        assert!((est - 50.0).abs() < 8.0, "estimate {est} for 50 distinct");
    }

    #[test]
    fn merge_is_union() {
        let mut a = HyperLogLog::new(10);
        let mut b = HyperLogLog::new(10);
        for i in 0..1_000u64 {
            a.insert(i);
            b.insert(i + 500); // half overlapping
        }
        a.merge(&b).unwrap();
        let est = a.estimate();
        assert!((est - 1_500.0).abs() < 120.0, "union ≈ 1500, got {est}");
    }

    #[test]
    fn merge_size_mismatch_is_error() {
        let mut a = HyperLogLog::new(10);
        let b = HyperLogLog::new(11);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn serialization_round_trip() {
        let mut a = HyperLogLog::new(8);
        for i in 0..5_000u64 {
            a.insert(i * 7);
        }
        let restored = HyperLogLog::from_registers(a.registers().to_vec()).unwrap();
        assert_eq!(restored, a);
        assert_eq!(restored.estimate(), a.estimate());
    }

    #[test]
    fn from_registers_rejects_bad_sizes() {
        assert!(HyperLogLog::from_registers(vec![0; 17]).is_err());
        assert!(HyperLogLog::from_registers(vec![0; 8]).is_err());
        assert!(HyperLogLog::from_registers(vec![0; 1 << 17]).is_err());
    }

    #[test]
    #[should_panic(expected = "b must be in 4..=16")]
    fn b_bounds_enforced() {
        let _ = HyperLogLog::new(3);
    }
}

//! Accuracy metrics for the experiments.
//!
//! Paper §5.2: "The accuracy is measured by how often the top 10 most
//! frequently occurring elements were correctly reported, and how
//! correctly their frequency of occurrence was reported." We make that
//! precise as the average of two components over the true top-k:
//!
//! * **recall** — fraction of the true top-k values that appear in the
//!   reported list;
//! * **frequency fidelity** — for each correctly reported value,
//!   `max(0, 1 − |estimate − truth| / truth)`, 0 for missed values.
//!
//! `accuracy = 100 · (recall + fidelity) / 2`, so a perfect report scores
//! 100 (the paper's tables quote 97–99).

use std::collections::HashMap;

/// Exact value counts of a stream (ground truth).
pub fn exact_counts(stream: impl IntoIterator<Item = u64>) -> HashMap<u64, u64> {
    let mut counts = HashMap::new();
    for v in stream {
        *counts.entry(v).or_insert(0) += 1;
    }
    counts
}

/// True top-k `(value, count)` pairs, descending (ties by value).
pub fn true_top_k(counts: &HashMap<u64, u64>, k: usize) -> Vec<(u64, u64)> {
    let mut all: Vec<(u64, u64)> = counts.iter().map(|(&v, &c)| (v, c)).collect();
    all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    all.truncate(k);
    all
}

/// Detailed accuracy breakdown from [`top_k_accuracy`].
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Fraction of true top-k values present in the report, in [0, 1].
    pub recall: f64,
    /// Mean frequency fidelity over the true top-k, in [0, 1].
    pub fidelity: f64,
    /// Combined score on the paper's 0–100 scale.
    pub score: f64,
    /// k used.
    pub k: usize,
}

/// Score a reported top-k list `(value, estimated count)` against the
/// true counts, per the paper's §5.2 metric.
pub fn top_k_accuracy(
    reported: &[(u64, f64)],
    truth: &HashMap<u64, u64>,
    k: usize,
) -> AccuracyReport {
    let top = true_top_k(truth, k);
    if top.is_empty() {
        return AccuracyReport { recall: 1.0, fidelity: 1.0, score: 100.0, k };
    }
    let reported_map: HashMap<u64, f64> = reported.iter().copied().collect();
    let mut hits = 0usize;
    let mut fidelity_sum = 0.0;
    for &(value, true_count) in &top {
        if let Some(&est) = reported_map.get(&value) {
            hits += 1;
            let rel_err = (est - true_count as f64).abs() / true_count as f64;
            fidelity_sum += (1.0 - rel_err).max(0.0);
        }
    }
    let recall = hits as f64 / top.len() as f64;
    let fidelity = fidelity_sum / top.len() as f64;
    AccuracyReport { recall, fidelity, score: 100.0 * (recall + fidelity) / 2.0, k }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> HashMap<u64, u64> {
        exact_counts(
            [(1u64, 100u64), (2, 90), (3, 80), (4, 10), (5, 5)]
                .iter()
                .flat_map(|&(v, n)| std::iter::repeat_n(v, n as usize)),
        )
    }

    #[test]
    fn exact_counts_counts() {
        let c = exact_counts([1u64, 1, 2, 3, 3, 3]);
        assert_eq!(c[&1], 2);
        assert_eq!(c[&2], 1);
        assert_eq!(c[&3], 3);
    }

    #[test]
    fn true_top_k_orders_and_truncates() {
        let top = true_top_k(&truth(), 3);
        assert_eq!(top, vec![(1, 100), (2, 90), (3, 80)]);
        assert_eq!(true_top_k(&truth(), 100).len(), 5);
    }

    #[test]
    fn perfect_report_scores_100() {
        let reported: Vec<(u64, f64)> = vec![(1, 100.0), (2, 90.0), (3, 80.0)];
        let acc = top_k_accuracy(&reported, &truth(), 3);
        assert_eq!(acc.recall, 1.0);
        assert!((acc.score - 100.0).abs() < 1e-9);
    }

    #[test]
    fn missing_values_cost_recall_and_fidelity() {
        let reported: Vec<(u64, f64)> = vec![(1, 100.0)];
        let acc = top_k_accuracy(&reported, &truth(), 2);
        assert!((acc.recall - 0.5).abs() < 1e-12);
        assert!((acc.fidelity - 0.5).abs() < 1e-12);
        assert!((acc.score - 50.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_errors_cost_fidelity_only() {
        let reported: Vec<(u64, f64)> = vec![(1, 80.0), (2, 90.0)]; // 20% off on value 1
        let acc = top_k_accuracy(&reported, &truth(), 2);
        assert_eq!(acc.recall, 1.0);
        assert!((acc.fidelity - 0.9).abs() < 1e-9);
        assert!((acc.score - 95.0).abs() < 1e-9);
    }

    #[test]
    fn wild_estimates_floor_at_zero() {
        let reported: Vec<(u64, f64)> = vec![(1, 10_000.0)];
        let acc = top_k_accuracy(&reported, &truth(), 1);
        assert_eq!(acc.recall, 1.0);
        assert_eq!(acc.fidelity, 0.0);
        assert!((acc.score - 50.0).abs() < 1e-9);
    }

    #[test]
    fn extra_reported_values_are_harmless() {
        let reported: Vec<(u64, f64)> = vec![(1, 100.0), (2, 90.0), (999, 5000.0)];
        let acc = top_k_accuracy(&reported, &truth(), 2);
        assert!((acc.score - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_truth_is_perfect() {
        let acc = top_k_accuracy(&[], &HashMap::new(), 10);
        assert_eq!(acc.score, 100.0);
    }
}

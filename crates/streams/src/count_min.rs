//! Count-Min sketch: fixed-memory frequency estimation with one-sided
//! error. Used by the intrusion-detection application template, where
//! per-key counters (connection sources) are too numerous to keep
//! exactly.

/// A Count-Min sketch over `u64` keys with `depth` rows of `width`
/// counters. Estimates overcount by at most `ε·N` with probability
/// `1 − δ`, for `width = ⌈e/ε⌉`, `depth = ⌈ln(1/δ)⌉`.
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    rows: Vec<Vec<u64>>,
    /// Row-specific hash seeds.
    seeds: Vec<u64>,
    total: u64,
}

impl CountMinSketch {
    /// Sketch with explicit dimensions.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width >= 1 && depth >= 1, "sketch dimensions must be positive");
        let seeds =
            (0..depth as u64).map(|i| 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1)).collect();
        CountMinSketch { width, depth, rows: vec![vec![0; width]; depth], seeds, total: 0 }
    }

    /// Sketch sized for additive error `ε·N` with failure chance `δ`.
    pub fn with_error(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta in (0,1)");
        let width = (std::f64::consts::E / epsilon).ceil() as usize;
        let depth = (1.0 / delta).ln().ceil().max(1.0) as usize;
        Self::new(width, depth)
    }

    fn bucket(&self, row: usize, key: u64) -> usize {
        // SplitMix64-style mix with a per-row seed.
        let mut z = key ^ self.seeds[row];
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % self.width as u64) as usize
    }

    /// Add `count` occurrences of `key`.
    pub fn add(&mut self, key: u64, count: u64) {
        for row in 0..self.depth {
            let b = self.bucket(row, key);
            self.rows[row][b] = self.rows[row][b].saturating_add(count);
        }
        self.total = self.total.saturating_add(count);
    }

    /// Observe a single occurrence.
    pub fn insert(&mut self, key: u64) {
        self.add(key, 1);
    }

    /// Frequency estimate for `key` (never an underestimate).
    pub fn estimate(&self, key: u64) -> u64 {
        (0..self.depth).map(|row| self.rows[row][self.bucket(row, key)]).min().unwrap_or(0)
    }

    /// Merge a same-shape sketch by element-wise addition.
    ///
    /// Sketches built with identical dimensions hash identically, so the
    /// merge of per-shard sketches equals the sketch of the whole stream
    /// — a key-partitioned aggregation loses nothing:
    ///
    /// ```
    /// use gates_streams::CountMinSketch;
    ///
    /// let mut whole = CountMinSketch::new(256, 4);
    /// let (mut a, mut b) = (CountMinSketch::new(256, 4), CountMinSketch::new(256, 4));
    /// for i in 0..1_000u64 {
    ///     let key = i % 37;
    ///     whole.insert(key);
    ///     if key % 2 == 0 { a.insert(key) } else { b.insert(key) } // two shards
    /// }
    /// a.merge(&b).unwrap();
    /// for key in 0..37u64 {
    ///     assert_eq!(a.estimate(key), whole.estimate(key));
    /// }
    /// ```
    pub fn merge(&mut self, other: &CountMinSketch) -> Result<(), String> {
        if self.width != other.width || self.depth != other.depth {
            return Err(format!(
                "sketch shape mismatch: {}x{} vs {}x{}",
                self.depth, self.width, other.depth, other.width
            ));
        }
        for (mine, theirs) in self.rows.iter_mut().zip(&other.rows) {
            for (m, t) in mine.iter_mut().zip(theirs) {
                *m = m.saturating_add(*t);
            }
        }
        self.total = self.total.saturating_add(other.total);
        Ok(())
    }

    /// Total count added.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `(width, depth)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.width, self.depth)
    }

    /// Memory footprint in counters.
    pub fn counters(&self) -> usize {
        self.width * self.depth
    }

    /// Serialize for shipping in a shard-summary packet (little-endian;
    /// see [`CountMinSketch::from_bytes`]). Hash seeds are derived from
    /// `depth`, so only dimensions and counters travel.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 4 + 8 + 8 * self.counters());
        out.extend_from_slice(&(self.width as u32).to_le_bytes());
        out.extend_from_slice(&(self.depth as u32).to_le_bytes());
        out.extend_from_slice(&self.total.to_le_bytes());
        for row in &self.rows {
            for &c in row {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// Rebuild a sketch serialized by [`CountMinSketch::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut r = crate::codec::Reader::new(bytes);
        let width = r.u32()? as usize;
        let depth = r.u32()? as usize;
        if width < 1 || depth < 1 || width.saturating_mul(depth) > (1 << 28) {
            return Err(format!("implausible sketch shape {depth}x{width}"));
        }
        let total = r.u64()?;
        let mut cm = CountMinSketch::new(width, depth);
        cm.total = total;
        for row in &mut cm.rows {
            for c in row.iter_mut() {
                *c = r.u64()?;
            }
        }
        r.done()?;
        Ok(cm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_never_undercount() {
        let mut cm = CountMinSketch::new(64, 4);
        for i in 0..1_000u64 {
            cm.insert(i % 50);
        }
        for key in 0..50u64 {
            assert!(cm.estimate(key) >= 20, "key {key} undercounted");
        }
    }

    #[test]
    fn exact_for_sparse_keys() {
        let mut cm = CountMinSketch::new(1024, 4);
        cm.add(1, 10);
        cm.add(2, 20);
        assert_eq!(cm.estimate(1), 10);
        assert_eq!(cm.estimate(2), 20);
        assert_eq!(cm.estimate(3), 0);
    }

    #[test]
    fn with_error_sizes_reasonably() {
        let cm = CountMinSketch::with_error(0.01, 0.01);
        let (w, d) = cm.shape();
        assert!(w >= 271, "width for eps=0.01 is ceil(e/0.01)");
        assert!((4..=6).contains(&d));
    }

    #[test]
    fn error_bound_holds_on_zipf_like_load() {
        let mut cm = CountMinSketch::with_error(0.01, 0.01);
        let n = 100_000u64;
        for i in 0..n {
            cm.insert(i % 1000); // uniform over 1000 keys
        }
        let eps_n = (0.01 * n as f64) as u64;
        for key in (0..1000u64).step_by(97) {
            let est = cm.estimate(key);
            assert!(est >= 100);
            assert!(est <= 100 + eps_n, "estimate {est} above error bound");
        }
    }

    #[test]
    fn merge_adds() {
        let mut a = CountMinSketch::new(128, 3);
        let mut b = CountMinSketch::new(128, 3);
        a.add(7, 5);
        b.add(7, 9);
        a.merge(&b).unwrap();
        assert_eq!(a.estimate(7), 14);
        assert_eq!(a.total(), 14);
    }

    #[test]
    fn merge_shape_mismatch_is_error() {
        let mut a = CountMinSketch::new(128, 3);
        let b = CountMinSketch::new(64, 3);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = CountMinSketch::new(64, 4);
        let mut b = CountMinSketch::new(64, 4);
        for i in 0..500u64 {
            a.insert(i % 37);
            b.insert(i % 37);
        }
        for key in 0..37u64 {
            assert_eq!(a.estimate(key), b.estimate(key));
        }
    }

    #[test]
    #[should_panic(expected = "sketch dimensions must be positive")]
    fn zero_width_panics() {
        let _ = CountMinSketch::new(0, 2);
    }

    #[test]
    fn serialization_round_trip() {
        let mut cm = CountMinSketch::new(128, 4);
        for i in 0..5_000u64 {
            cm.insert(i % 97);
        }
        let restored = CountMinSketch::from_bytes(&cm.to_bytes()).unwrap();
        assert_eq!(restored.shape(), cm.shape());
        assert_eq!(restored.total(), cm.total());
        for key in 0..97u64 {
            assert_eq!(restored.estimate(key), cm.estimate(key));
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(CountMinSketch::from_bytes(&[0; 7]).is_err());
        let mut bytes = CountMinSketch::new(8, 2).to_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(CountMinSketch::from_bytes(&bytes).is_err());
        // Implausible dimensions refused before allocation.
        let mut huge = Vec::new();
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&u32::MAX.to_le_bytes());
        huge.extend_from_slice(&0u64.to_le_bytes());
        assert!(CountMinSketch::from_bytes(&huge).is_err());
    }
}

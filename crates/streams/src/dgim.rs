//! DGIM sliding-window bit counting (Datar, Gionis, Indyk, Motwani 2002).
//!
//! "How many events in the last N items?" over an unbounded stream with
//! O(log² N) memory and a multiplicative error ≤ 50% on the oldest
//! bucket (in practice far better). Used for windowed alarm conditions
//! — e.g. "more than x suspicious connections in the last N events" —
//! where a tumbling window would miss straddling bursts.

use std::collections::VecDeque;

/// One bucket: `count` ones ending at `end` (timestamp of its most
/// recent 1-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Bucket {
    end: u64,
    count: u64,
}

/// DGIM estimator of the number of 1s among the last `window` bits.
#[derive(Debug, Clone)]
pub struct Dgim {
    window: u64,
    /// Max buckets per size class before two merge (`r ≥ 2`; larger r =
    /// more memory, less error).
    r: usize,
    /// Buckets ordered oldest → newest; counts are powers of two and
    /// non-increasing toward the back... (non-decreasing toward front).
    buckets: VecDeque<Bucket>,
    /// Bits observed so far (the current timestamp).
    time: u64,
}

impl Dgim {
    /// Estimator over the last `window ≥ 1` bits with the classic `r = 2`.
    pub fn new(window: u64) -> Self {
        Self::with_precision(window, 2)
    }

    /// Estimator with `r ≥ 2` buckets allowed per size class (error
    /// shrinks roughly as `1/(2(r−1))`).
    pub fn with_precision(window: u64, r: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        assert!(r >= 2, "precision parameter must be at least 2");
        Dgim { window, r, buckets: VecDeque::new(), time: 0 }
    }

    /// Observe one bit.
    pub fn insert(&mut self, bit: bool) {
        self.time += 1;
        // Expire the oldest bucket once entirely outside the window.
        if let Some(front) = self.buckets.front() {
            if front.end + self.window <= self.time {
                self.buckets.pop_front();
            }
        }
        if !bit {
            return;
        }
        self.buckets.push_back(Bucket { end: self.time, count: 1 });
        // Merge cascades: if r+1 buckets share a size, merge the two
        // oldest of that size into one of double size.
        let mut size = 1u64;
        loop {
            let same: Vec<usize> = self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, b)| b.count == size)
                .map(|(i, _)| i)
                .collect();
            if same.len() <= self.r {
                break;
            }
            // Merge the two oldest of this size.
            let (i, j) = (same[0], same[1]);
            let merged = Bucket { end: self.buckets[j].end, count: size * 2 };
            self.buckets[j] = merged;
            self.buckets.remove(i);
            size *= 2;
        }
    }

    /// Estimated number of 1s among the last `window` bits: full buckets
    /// plus half of the oldest (straddling) one — the DGIM estimator.
    pub fn estimate(&self) -> u64 {
        let cutoff = self.time.saturating_sub(self.window);
        let mut total = 0u64;
        let mut oldest_inside: Option<u64> = None;
        for b in &self.buckets {
            if b.end > cutoff {
                total += b.count;
                if oldest_inside.is_none() {
                    oldest_inside = Some(b.count);
                }
            }
        }
        if let Some(oldest) = oldest_inside {
            total - oldest + oldest.div_ceil(2)
        } else {
            0
        }
    }

    /// Bits observed so far.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Current bucket count (memory usage indicator).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The configured window.
    pub fn window(&self) -> u64 {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let d = Dgim::new(100);
        assert_eq!(d.estimate(), 0);
    }

    #[test]
    fn exact_while_buckets_are_singletons() {
        let mut d = Dgim::new(1_000);
        for _ in 0..2 {
            d.insert(true);
        }
        for _ in 0..10 {
            d.insert(false);
        }
        // Two singleton buckets at r=2 — no merge has happened: exact.
        assert_eq!(d.estimate(), 2);
        // A third 1 triggers the first merge; the estimate halves the
        // (now straddling-eligible) oldest bucket: 2 or 3 are both valid.
        d.insert(true);
        assert!((2..=3).contains(&d.estimate()), "got {}", d.estimate());
    }

    #[test]
    fn all_ones_estimate_within_dgim_bound() {
        let mut d = Dgim::new(1_000);
        for _ in 0..5_000 {
            d.insert(true);
        }
        let est = d.estimate() as f64;
        // True count in window = 1000; DGIM error ≤ 50% (practically ~25%).
        assert!((est - 1_000.0).abs() <= 500.0, "estimate {est}");
    }

    #[test]
    fn zeros_expire_old_ones() {
        let mut d = Dgim::new(100);
        for _ in 0..50 {
            d.insert(true);
        }
        for _ in 0..200 {
            d.insert(false);
        }
        assert_eq!(d.estimate(), 0, "all 1s have left the window");
    }

    #[test]
    fn sparse_stream_tracks_density() {
        let mut d = Dgim::new(1_000);
        // 10% ones.
        for i in 0..10_000u64 {
            d.insert(i % 10 == 0);
        }
        let est = d.estimate() as f64;
        assert!((est - 100.0).abs() <= 50.0, "≈100 ones in window, got {est}");
    }

    #[test]
    fn memory_is_logarithmic() {
        let mut d = Dgim::new(1 << 20);
        for _ in 0..(1 << 20) {
            d.insert(true);
        }
        // r=2 ⇒ at most ~2·log2(N)+... buckets.
        assert!(d.bucket_count() <= 64, "bucket count {}", d.bucket_count());
    }

    #[test]
    fn higher_precision_reduces_error() {
        let run = |r: usize| {
            let mut d = Dgim::with_precision(1_000, r);
            for _ in 0..5_000 {
                d.insert(true);
            }
            (d.estimate() as f64 - 1_000.0).abs()
        };
        // Not guaranteed pointwise, but r=8 must not be wildly worse and
        // should typically be tighter.
        assert!(run(8) <= run(2) + 50.0);
    }

    #[test]
    fn merging_keeps_power_of_two_counts() {
        let mut d = Dgim::new(10_000);
        for _ in 0..1_000 {
            d.insert(true);
        }
        for b in &d.buckets {
            assert!(b.count.is_power_of_two(), "bucket count {} not a power of two", b.count);
        }
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics() {
        let _ = Dgim::new(0);
    }
}

//! Application repositories: named application factories.
//!
//! In the original system the Deployer "retrieves the stage codes from
//! the application repositories" — web servers hosting Java class files.
//! Here an application is a function from its [`AppConfig`] to a
//! [`Topology`]; registering it under a key is the equivalent of
//! publishing the code.

use std::collections::BTreeMap;
use std::sync::Arc;

use gates_core::Topology;

use crate::config::AppConfig;
use crate::GridError;

/// An application factory: builds a topology from a configuration.
pub type AppFactory = Arc<dyn Fn(&AppConfig) -> Result<Topology, String> + Send + Sync>;

/// A keyed collection of application factories.
#[derive(Clone, Default)]
pub struct ApplicationRepository {
    apps: BTreeMap<String, AppFactory>,
}

impl ApplicationRepository {
    /// Empty repository.
    pub fn new() -> Self {
        ApplicationRepository::default()
    }

    /// Publish an application under `key` (replaces an existing entry).
    pub fn publish<F>(&mut self, key: impl Into<String>, factory: F)
    where
        F: Fn(&AppConfig) -> Result<Topology, String> + Send + Sync + 'static,
    {
        self.apps.insert(key.into(), Arc::new(factory));
    }

    /// Build the topology for `config` by looking up its repository key.
    pub fn build(&self, config: &AppConfig) -> Result<Topology, GridError> {
        let factory = self
            .apps
            .get(&config.repository)
            .ok_or_else(|| GridError::UnknownApplication(config.repository.clone()))?;
        factory(config).map_err(GridError::AppBuild)
    }

    /// Published application keys, sorted.
    pub fn keys(&self) -> Vec<&str> {
        self.apps.keys().map(String::as_str).collect()
    }

    /// Is `key` published?
    pub fn contains(&self, key: &str) -> bool {
        self.apps.contains_key(key)
    }

    /// Number of published applications.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// True when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }
}

impl std::fmt::Debug for ApplicationRepository {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ApplicationRepository").field("keys", &self.keys()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gates_core::{Packet, StageApi, StageBuilder, StreamProcessor};

    struct Nop;
    impl StreamProcessor for Nop {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    }

    fn publish_single(repo: &mut ApplicationRepository, key: &str) {
        repo.publish(key, |config: &AppConfig| {
            let mut t = Topology::new();
            let stages = config.usize_or("stages", 1).map_err(|e| e.to_string())?;
            for i in 0..stages {
                t.add_stage(StageBuilder::new(format!("s{i}")).processor(|| Nop))
                    .map_err(|e| e.to_string())?;
            }
            Ok(t)
        });
    }

    #[test]
    fn publish_and_build() {
        let mut repo = ApplicationRepository::new();
        publish_single(&mut repo, "demo");
        let config = AppConfig::new("run", "demo").with_param("stages", 3);
        let topo = repo.build(&config).unwrap();
        assert_eq!(topo.stages().len(), 3);
    }

    #[test]
    fn unknown_key_is_error() {
        let repo = ApplicationRepository::new();
        let config = AppConfig::new("run", "ghost");
        assert_eq!(repo.build(&config).unwrap_err(), GridError::UnknownApplication("ghost".into()));
    }

    #[test]
    fn factory_errors_are_wrapped() {
        let mut repo = ApplicationRepository::new();
        repo.publish("bad", |_| Err("boom".to_string()));
        let config = AppConfig::new("run", "bad");
        assert_eq!(repo.build(&config).unwrap_err(), GridError::AppBuild("boom".into()));
    }

    #[test]
    fn keys_sorted_and_contains() {
        let mut repo = ApplicationRepository::new();
        publish_single(&mut repo, "zeta");
        publish_single(&mut repo, "alpha");
        assert_eq!(repo.keys(), ["alpha", "zeta"]);
        assert!(repo.contains("zeta"));
        assert!(!repo.contains("beta"));
        assert_eq!(repo.len(), 2);
    }

    #[test]
    fn republish_replaces() {
        let mut repo = ApplicationRepository::new();
        publish_single(&mut repo, "app");
        repo.publish("app", |_| Err("v2".to_string()));
        let config = AppConfig::new("run", "app");
        assert_eq!(repo.build(&config).unwrap_err(), GridError::AppBuild("v2".into()));
        assert_eq!(repo.len(), 1);
    }
}

//! The resource directory: the stand-in for Globus/OGSA resource
//! discovery ("the Globus support allows the system to do automatic
//! resource discovery", paper §3.1).

use gates_sim::SimTime;

use crate::node::NodeSpec;

/// A queryable catalog of grid nodes.
///
/// Entries carry a *lease*: directory services in the paper's OGSA world
/// aged out nodes that stopped heartbeating. A node registered without a
/// lease never expires; [`ResourceRegistry::heartbeat`] extends a lease,
/// [`ResourceRegistry::expire`] sweeps out the dead.
#[derive(Debug, Clone, Default)]
pub struct ResourceRegistry {
    nodes: Vec<NodeSpec>,
    /// Lease expiry per node (index-aligned); `None` = permanent.
    leases: Vec<Option<SimTime>>,
}

impl ResourceRegistry {
    /// Empty directory.
    pub fn new() -> Self {
        ResourceRegistry::default()
    }

    /// Register a node permanently (no lease). Re-registering a name
    /// replaces the old entry (directory refresh semantics).
    pub fn register(&mut self, node: NodeSpec) {
        self.register_leased(node, None);
    }

    /// Register a node with an optional lease expiry.
    pub fn register_leased(&mut self, node: NodeSpec, lease_until: Option<SimTime>) {
        if let Some(i) = self.nodes.iter().position(|n| n.name == node.name) {
            self.nodes[i] = node;
            self.leases[i] = lease_until;
        } else {
            self.nodes.push(node);
            self.leases.push(lease_until);
        }
    }

    /// Extend a node's lease to `until`. Returns false for unknown nodes.
    /// A heartbeat on a permanent node attaches a lease to it.
    pub fn heartbeat(&mut self, name: &str, until: SimTime) -> bool {
        match self.nodes.iter().position(|n| n.name == name) {
            Some(i) => {
                self.leases[i] = Some(until);
                true
            }
            None => false,
        }
    }

    /// Drop every node whose lease expired at or before `now`; returns
    /// the names removed.
    pub fn expire(&mut self, now: SimTime) -> Vec<String> {
        let mut removed = Vec::new();
        let mut i = 0;
        while i < self.nodes.len() {
            if self.leases[i].is_some_and(|t| t <= now) {
                removed.push(self.nodes.remove(i).name);
                self.leases.remove(i);
            } else {
                i += 1;
            }
        }
        removed
    }

    /// The lease expiry of a node (`None` = permanent or unknown).
    pub fn lease_of(&self, name: &str) -> Option<SimTime> {
        self.nodes.iter().position(|n| n.name == name).and_then(|i| self.leases[i])
    }

    /// Remove a node by name; true if it existed.
    pub fn unregister(&mut self, name: &str) -> bool {
        match self.nodes.iter().position(|n| n.name == name) {
            Some(i) => {
                self.nodes.remove(i);
                self.leases.remove(i);
                true
            }
            None => false,
        }
    }

    /// All registered nodes, in registration order.
    pub fn nodes(&self) -> &[NodeSpec] {
        &self.nodes
    }

    /// A node by name.
    pub fn node(&self, name: &str) -> Option<&NodeSpec> {
        self.nodes.iter().find(|n| n.name == name)
    }

    /// Nodes at the given site, in registration order.
    pub fn at_site<'a>(&'a self, site: &'a str) -> impl Iterator<Item = &'a NodeSpec> + 'a {
        self.nodes.iter().filter(move |n| n.site == site)
    }

    /// Nodes meeting all given requirements (site may be `None` for any).
    pub fn discover<'a>(
        &'a self,
        site: Option<&'a str>,
        min_speed: f64,
        min_memory_mb: u64,
        required_tags: &'a [String],
    ) -> impl Iterator<Item = &'a NodeSpec> + 'a {
        self.nodes.iter().filter(move |n| {
            site.is_none_or(|s| n.site == s)
                && n.cpu_speed >= min_speed
                && n.memory_mb >= min_memory_mb
                && required_tags.iter().all(|t| n.has_tag(t))
        })
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// A convenience uniform cluster: one node per site name, default
    /// spec. Used throughout the experiments ("all our experiments were
    /// conducted within a single cluster").
    pub fn uniform_cluster(sites: &[&str]) -> Self {
        let mut reg = ResourceRegistry::new();
        for (i, site) in sites.iter().enumerate() {
            reg.register(NodeSpec::new(format!("node-{i}"), *site));
        }
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> ResourceRegistry {
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("n0", "central").speed(2.0).memory(8192).tag("jvm"));
        r.register(NodeSpec::new("n1", "edge").speed(1.0).memory(1024));
        r.register(NodeSpec::new("n2", "edge").speed(0.5).memory(2048).tag("jvm"));
        r
    }

    #[test]
    fn register_and_lookup() {
        let r = registry();
        assert_eq!(r.len(), 3);
        assert_eq!(r.node("n1").unwrap().site, "edge");
        assert!(r.node("nope").is_none());
    }

    #[test]
    fn reregistering_replaces() {
        let mut r = registry();
        r.register(NodeSpec::new("n1", "moved").speed(3.0));
        assert_eq!(r.len(), 3);
        assert_eq!(r.node("n1").unwrap().site, "moved");
        assert_eq!(r.node("n1").unwrap().cpu_speed, 3.0);
    }

    #[test]
    fn unregister_removes() {
        let mut r = registry();
        assert!(r.unregister("n2"));
        assert!(!r.unregister("n2"));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn at_site_filters() {
        let r = registry();
        let edge: Vec<_> = r.at_site("edge").map(|n| n.name.clone()).collect();
        assert_eq!(edge, ["n1", "n2"]);
    }

    #[test]
    fn discover_applies_all_filters() {
        let r = registry();
        let jvm = "jvm".to_string();
        let found: Vec<_> =
            r.discover(Some("edge"), 0.0, 0, std::slice::from_ref(&jvm)).map(|n| &n.name).collect();
        assert_eq!(found, ["n2"]);
        let fast: Vec<_> = r.discover(None, 1.5, 0, &[]).map(|n| &n.name).collect();
        assert_eq!(fast, ["n0"]);
        let big: Vec<_> = r.discover(None, 0.0, 2048, &[]).map(|n| &n.name).collect();
        assert_eq!(big, ["n0", "n2"]);
    }

    #[test]
    fn uniform_cluster_builds_one_node_per_site() {
        let r = ResourceRegistry::uniform_cluster(&["a", "b", "c"]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.at_site("b").count(), 1);
    }

    #[test]
    fn leases_expire_and_heartbeats_extend() {
        use gates_sim::SimTime;
        let mut r = ResourceRegistry::new();
        r.register_leased(NodeSpec::new("a", "s"), Some(SimTime::from_secs_f64(10.0)));
        r.register_leased(NodeSpec::new("b", "s"), Some(SimTime::from_secs_f64(30.0)));
        r.register(NodeSpec::new("c", "s")); // permanent
        assert_eq!(r.lease_of("a"), Some(SimTime::from_secs_f64(10.0)));
        assert_eq!(r.lease_of("c"), None);

        // Heartbeat keeps 'a' alive past its original lease.
        assert!(r.heartbeat("a", SimTime::from_secs_f64(60.0)));
        assert!(!r.heartbeat("ghost", SimTime::from_secs_f64(60.0)));

        let removed = r.expire(SimTime::from_secs_f64(30.0));
        assert_eq!(removed, vec!["b".to_string()], "only the stale lease expires");
        assert_eq!(r.len(), 2);
        let removed = r.expire(SimTime::from_secs_f64(100.0));
        assert_eq!(removed, vec!["a".to_string()]);
        assert!(r.node("c").is_some(), "permanent nodes never expire");
    }

    #[test]
    fn reregistering_updates_lease() {
        use gates_sim::SimTime;
        let mut r = ResourceRegistry::new();
        r.register_leased(NodeSpec::new("a", "s"), Some(SimTime::from_secs_f64(5.0)));
        r.register(NodeSpec::new("a", "s2"));
        assert_eq!(r.lease_of("a"), None, "replacement clears the lease");
        assert!(r.expire(SimTime::from_secs_f64(100.0)).is_empty());
    }
}

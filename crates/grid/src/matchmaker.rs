//! Matching stage requirements against the resource directory
//! ("automatic … matching between the resources and the requirements",
//! paper §3.1).

use std::collections::HashMap;

use gates_core::{StageId, Topology};

use crate::registry::ResourceRegistry;

/// Why a stage could not be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The directory is empty.
    NoNodes,
    /// Every candidate node is at capacity.
    NoCapacity {
        /// The stage that failed to place.
        stage: String,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoNodes => write!(f, "resource directory is empty"),
            PlacementError::NoCapacity { stage } => {
                write!(f, "no node has capacity for stage {stage:?}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Greedy site-affinity matchmaker.
///
/// Policy, per stage in id order:
/// 1. prefer a node whose site equals the stage's site label and that has
///    free capacity (least-loaded first, then fastest);
/// 2. otherwise any node with free capacity (least-loaded, then fastest) —
///    "computing resources close to the source … can be used for initial
///    processing" is a preference, not a hard constraint.
#[derive(Debug, Default)]
pub struct Matchmaker;

impl Matchmaker {
    /// Compute a placement for every stage. Returns stage-id → node name.
    pub fn place(
        &self,
        topology: &Topology,
        registry: &ResourceRegistry,
    ) -> Result<HashMap<StageId, String>, PlacementError> {
        if registry.is_empty() {
            return Err(PlacementError::NoNodes);
        }
        let mut load: HashMap<&str, usize> = HashMap::new();
        let mut placement = HashMap::new();

        for (idx, stage) in topology.stages().iter().enumerate() {
            let id = topology.stage_by_name(&stage.name).expect("stage exists");
            debug_assert_eq!(id.index(), idx);

            let pick = |candidates: &mut dyn Iterator<Item = &crate::node::NodeSpec>,
                        load: &HashMap<&str, usize>| {
                candidates
                    .filter(|n| load.get(n.name.as_str()).copied().unwrap_or(0) < n.max_stages)
                    .min_by(|a, b| {
                        let la = load.get(a.name.as_str()).copied().unwrap_or(0);
                        let lb = load.get(b.name.as_str()).copied().unwrap_or(0);
                        la.cmp(&lb)
                            .then(b.cpu_speed.partial_cmp(&a.cpu_speed).unwrap())
                            .then(a.name.cmp(&b.name))
                    })
                    .map(|n| n.name.clone())
            };

            let site_match = pick(&mut registry.at_site(&stage.site), &load);
            let chosen = match site_match {
                Some(name) => name,
                None => pick(&mut registry.nodes().iter(), &load)
                    .ok_or_else(|| PlacementError::NoCapacity { stage: stage.name.clone() })?,
            };
            *load.entry(registry.node(&chosen).unwrap().name.as_str()).or_insert(0) += 1;
            // Borrow gymnastics: re-key by the owned name.
            let owned = chosen.clone();
            placement.insert(id, owned);
        }
        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;
    use gates_core::{CostModel, Packet, StageApi, StageBuilder, StreamProcessor};
    use gates_net::{Bandwidth, LinkSpec};

    struct Nop;
    impl StreamProcessor for Nop {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    }

    fn stage(name: &str, site: &str) -> StageBuilder {
        StageBuilder::new(name).site(site).cost(CostModel::zero()).processor(|| Nop)
    }

    fn link() -> LinkSpec {
        LinkSpec::with_bandwidth(Bandwidth::kb_per_sec(100.0))
    }

    #[test]
    fn site_affinity_wins() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("src", "edge-0")).unwrap();
        let b = t.add_stage(stage("sink", "central")).unwrap();
        t.connect(a, b, link());

        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("e0", "edge-0"));
        r.register(NodeSpec::new("c0", "central"));

        let placement = Matchmaker.place(&t, &r).unwrap();
        assert_eq!(placement[&a], "e0");
        assert_eq!(placement[&b], "c0");
    }

    #[test]
    fn falls_back_to_any_node_when_site_missing() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("src", "mars")).unwrap();
        let _ = a;
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("c0", "central"));
        let placement = Matchmaker.place(&t, &r).unwrap();
        assert_eq!(placement[&a], "c0");
    }

    #[test]
    fn prefers_least_loaded_then_fastest() {
        let mut t = Topology::new();
        let s1 = t.add_stage(stage("s1", "pool")).unwrap();
        let s2 = t.add_stage(stage("s2", "pool")).unwrap();
        let s3 = t.add_stage(stage("s3", "pool")).unwrap();
        t.connect(s1, s2, link());
        t.connect(s2, s3, link());
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("slow", "pool").speed(1.0).capacity(10));
        r.register(NodeSpec::new("fast", "pool").speed(2.0).capacity(10));
        let placement = Matchmaker.place(&t, &r).unwrap();
        // First goes to fastest; second to the other (less loaded); third
        // back to fastest.
        assert_eq!(placement[&s1], "fast");
        assert_eq!(placement[&s2], "slow");
        assert_eq!(placement[&s3], "fast");
    }

    #[test]
    fn capacity_limits_are_respected() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("a", "pool")).unwrap();
        let b = t.add_stage(stage("b", "pool")).unwrap();
        t.connect(a, b, link());
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("tiny", "pool").capacity(1));
        let err = Matchmaker.place(&t, &r).unwrap_err();
        assert_eq!(err, PlacementError::NoCapacity { stage: "b".into() });
    }

    #[test]
    fn empty_registry_is_an_error() {
        let mut t = Topology::new();
        t.add_stage(stage("a", "x")).unwrap();
        assert_eq!(
            Matchmaker.place(&t, &ResourceRegistry::new()).unwrap_err(),
            PlacementError::NoNodes
        );
    }

    #[test]
    fn placement_is_deterministic() {
        let build = || {
            let mut t = Topology::new();
            let a = t.add_stage(stage("a", "pool")).unwrap();
            let b = t.add_stage(stage("b", "pool")).unwrap();
            t.connect(a, b, link());
            t
        };
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("n1", "pool").capacity(4));
        r.register(NodeSpec::new("n2", "pool").capacity(4));
        let p1 = Matchmaker.place(&build(), &r).unwrap();
        let p2 = Matchmaker.place(&build(), &r).unwrap();
        assert_eq!(p1, p2);
    }
}

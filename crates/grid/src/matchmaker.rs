//! Matching stage requirements against the resource directory
//! ("automatic … matching between the resources and the requirements",
//! paper §3.1).

use std::collections::HashMap;

use gates_core::{StageId, Topology};

use crate::registry::ResourceRegistry;

/// Why a stage could not be placed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementError {
    /// The directory is empty.
    NoNodes,
    /// Every candidate node is at capacity.
    NoCapacity {
        /// The stage that failed to place.
        stage: String,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoNodes => write!(f, "resource directory is empty"),
            PlacementError::NoCapacity { stage } => {
                write!(f, "no node has capacity for stage {stage:?}")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Greedy site-affinity matchmaker.
///
/// Policy, per stage in id order:
/// 1. prefer a node whose site equals the stage's site label and that has
///    free capacity (fewest same-group replicas first, then least-loaded,
///    then fastest);
/// 2. otherwise any node with free capacity (same ordering) — "computing
///    resources close to the source … can be used for initial processing"
///    is a preference, not a hard constraint.
///
/// The same-group criterion is replica anti-affinity: members of one
/// [`gates_core::ReplicaGroup`] spread across distinct nodes whenever
/// capacity allows, so a sharded stage actually gains parallel hardware
/// (and a node failure strands at most one replica's key range).
#[derive(Debug, Default)]
pub struct Matchmaker;

impl Matchmaker {
    /// Compute a placement for every stage. Returns stage-id → node name.
    pub fn place(
        &self,
        topology: &Topology,
        registry: &ResourceRegistry,
    ) -> Result<HashMap<StageId, String>, PlacementError> {
        if registry.is_empty() {
            return Err(PlacementError::NoNodes);
        }
        let mut load: HashMap<&str, usize> = HashMap::new();
        let mut placement: HashMap<StageId, String> = HashMap::new();

        for (idx, stage) in topology.stages().iter().enumerate() {
            let id = topology.stage_by_name(&stage.name).expect("stage exists");
            debug_assert_eq!(id.index(), idx);

            // Nodes already hosting a sibling from this stage's replica
            // group, weighted by how many.
            let mut siblings: HashMap<&str, usize> = HashMap::new();
            if let Some((gi, _)) = topology.replica_of(id) {
                for m in &topology.groups()[gi].members {
                    if let Some(node) = placement.get(m) {
                        *siblings.entry(registry.node(node).unwrap().name.as_str()).or_insert(0) +=
                            1;
                    }
                }
            }

            let pick = |candidates: &mut dyn Iterator<Item = &crate::node::NodeSpec>,
                        load: &HashMap<&str, usize>,
                        siblings: &HashMap<&str, usize>| {
                candidates
                    .filter(|n| load.get(n.name.as_str()).copied().unwrap_or(0) < n.max_stages)
                    .min_by(|a, b| {
                        let sa = siblings.get(a.name.as_str()).copied().unwrap_or(0);
                        let sb = siblings.get(b.name.as_str()).copied().unwrap_or(0);
                        let la = load.get(a.name.as_str()).copied().unwrap_or(0);
                        let lb = load.get(b.name.as_str()).copied().unwrap_or(0);
                        sa.cmp(&sb)
                            .then(la.cmp(&lb))
                            .then(b.cpu_speed.partial_cmp(&a.cpu_speed).unwrap())
                            .then(a.name.cmp(&b.name))
                    })
                    .map(|n| n.name.clone())
            };

            let site_match = pick(&mut registry.at_site(&stage.site), &load, &siblings);
            let chosen = match site_match {
                Some(name) => name,
                None => pick(&mut registry.nodes().iter(), &load, &siblings)
                    .ok_or_else(|| PlacementError::NoCapacity { stage: stage.name.clone() })?,
            };
            *load.entry(registry.node(&chosen).unwrap().name.as_str()).or_insert(0) += 1;
            // Borrow gymnastics: re-key by the owned name.
            let owned = chosen.clone();
            placement.insert(id, owned);
        }
        Ok(placement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;
    use gates_core::{CostModel, Packet, StageApi, StageBuilder, StreamProcessor};
    use gates_net::{Bandwidth, LinkSpec};

    struct Nop;
    impl StreamProcessor for Nop {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    }

    fn stage(name: &str, site: &str) -> StageBuilder {
        StageBuilder::new(name).site(site).cost(CostModel::zero()).processor(|| Nop)
    }

    fn link() -> LinkSpec {
        LinkSpec::with_bandwidth(Bandwidth::kb_per_sec(100.0))
    }

    #[test]
    fn site_affinity_wins() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("src", "edge-0")).unwrap();
        let b = t.add_stage(stage("sink", "central")).unwrap();
        t.connect(a, b, link());

        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("e0", "edge-0"));
        r.register(NodeSpec::new("c0", "central"));

        let placement = Matchmaker.place(&t, &r).unwrap();
        assert_eq!(placement[&a], "e0");
        assert_eq!(placement[&b], "c0");
    }

    #[test]
    fn falls_back_to_any_node_when_site_missing() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("src", "mars")).unwrap();
        let _ = a;
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("c0", "central"));
        let placement = Matchmaker.place(&t, &r).unwrap();
        assert_eq!(placement[&a], "c0");
    }

    #[test]
    fn prefers_least_loaded_then_fastest() {
        let mut t = Topology::new();
        let s1 = t.add_stage(stage("s1", "pool")).unwrap();
        let s2 = t.add_stage(stage("s2", "pool")).unwrap();
        let s3 = t.add_stage(stage("s3", "pool")).unwrap();
        t.connect(s1, s2, link());
        t.connect(s2, s3, link());
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("slow", "pool").speed(1.0).capacity(10));
        r.register(NodeSpec::new("fast", "pool").speed(2.0).capacity(10));
        let placement = Matchmaker.place(&t, &r).unwrap();
        // First goes to fastest; second to the other (less loaded); third
        // back to fastest.
        assert_eq!(placement[&s1], "fast");
        assert_eq!(placement[&s2], "slow");
        assert_eq!(placement[&s3], "fast");
    }

    #[test]
    fn capacity_limits_are_respected() {
        let mut t = Topology::new();
        let a = t.add_stage(stage("a", "pool")).unwrap();
        let b = t.add_stage(stage("b", "pool")).unwrap();
        t.connect(a, b, link());
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("tiny", "pool").capacity(1));
        let err = Matchmaker.place(&t, &r).unwrap_err();
        assert_eq!(err, PlacementError::NoCapacity { stage: "b".into() });
    }

    #[test]
    fn empty_registry_is_an_error() {
        let mut t = Topology::new();
        t.add_stage(stage("a", "x")).unwrap();
        assert_eq!(
            Matchmaker.place(&t, &ResourceRegistry::new()).unwrap_err(),
            PlacementError::NoNodes
        );
    }

    #[test]
    fn replicas_spread_across_nodes() {
        let mut t = Topology::new();
        let src = t.add_stage(stage("src", "pool")).unwrap();
        let agg = t.add_stage(stage("agg", "pool")).unwrap();
        let snk = t.add_stage(stage("snk", "pool")).unwrap();
        t.connect(src, agg, link());
        t.connect(agg, snk, link());
        t.replicate("agg", 3).unwrap();

        let mut r = ResourceRegistry::new();
        // One node is much faster — without anti-affinity every replica
        // would pile onto it (capacity allows).
        r.register(NodeSpec::new("fast", "pool").speed(4.0).capacity(10));
        r.register(NodeSpec::new("n1", "pool").speed(1.0).capacity(10));
        r.register(NodeSpec::new("n2", "pool").speed(1.0).capacity(10));

        let placement = Matchmaker.place(&t, &r).unwrap();
        let g = &t.groups()[0];
        let hosts: std::collections::HashSet<&String> =
            g.members.iter().map(|m| &placement[m]).collect();
        assert_eq!(hosts.len(), 3, "three replicas on three distinct nodes: {placement:?}");
    }

    #[test]
    fn replicas_share_nodes_only_when_forced() {
        let mut t = Topology::new();
        let agg = t.add_stage(stage("agg", "pool")).unwrap();
        let snk = t.add_stage(stage("snk", "pool")).unwrap();
        t.connect(agg, snk, link());
        t.replicate("agg", 4).unwrap();

        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("n1", "pool").capacity(10));
        r.register(NodeSpec::new("n2", "pool").capacity(10));

        let placement = Matchmaker.place(&t, &r).unwrap();
        let g = &t.groups()[0];
        let mut per_node: HashMap<&str, usize> = HashMap::new();
        for m in &g.members {
            *per_node.entry(placement[m].as_str()).or_insert(0) += 1;
        }
        // Four replicas over two nodes: anti-affinity balances 2/2
        // rather than stacking.
        assert_eq!(per_node.values().copied().collect::<Vec<_>>(), vec![2, 2]);
    }

    #[test]
    fn placement_is_deterministic() {
        let build = || {
            let mut t = Topology::new();
            let a = t.add_stage(stage("a", "pool")).unwrap();
            let b = t.add_stage(stage("b", "pool")).unwrap();
            t.connect(a, b, link());
            t
        };
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("n1", "pool").capacity(4));
        r.register(NodeSpec::new("n2", "pool").capacity(4));
        let p1 = Matchmaker.place(&build(), &r).unwrap();
        let p2 = Matchmaker.place(&build(), &r).unwrap();
        assert_eq!(p1, p2);
    }
}

#![deny(missing_docs)]

//! # gates-grid
//!
//! The simulated grid substrate beneath GATES.
//!
//! The original system "is built on the Open Grid Services Architecture
//! (OGSA) model and uses the initial version of GT 3.0" for resource
//! discovery, matching "between the resources and the requirements", and
//! deployment of stage code into grid-service containers (paper §3).
//! Globus itself is long gone; this crate reproduces the middleware-facing
//! surface of that machinery as an in-process substrate:
//!
//! * [`NodeSpec`] / [`ResourceRegistry`] — the resource directory: nodes
//!   with sites, CPU speed factors, memory and tags.
//! * [`Matchmaker`] — matches each stage's placement requirements against
//!   the directory (site affinity first, then capacity-aware fallback).
//! * [`ApplicationRepository`] — named application factories, standing in
//!   for the paper's web-hosted "application repositories" from which the
//!   Deployer "retrieves the stage codes".
//! * [`AppConfig`] — the XML application-configuration document the
//!   developer writes and the user hands to the Launcher by URL.
//! * [`Deployer`] — turns a validated topology plus the registry into a
//!   [`DeploymentPlan`] (stage → node), instantiating one
//!   [`ServiceInstance`] per stage.
//! * [`Launcher`] — the user-facing entry point: parse the configuration,
//!   look up the application, build its topology, deploy it.

mod config;
mod deployer;
mod grid_config;
mod launcher;
mod matchmaker;
mod node;
mod registry;
mod repository;
mod service;

pub use config::AppConfig;
pub use deployer::{DeployError, Deployer, DeploymentPlan};
pub use grid_config::{registry_from_xml, registry_to_xml};
pub use launcher::{Deployment, Launcher};
pub use matchmaker::{Matchmaker, PlacementError};
pub use node::NodeSpec;
pub use registry::ResourceRegistry;
pub use repository::{AppFactory, ApplicationRepository};
pub use service::{ServiceInstance, ServiceState};

/// Errors from the grid substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// Configuration XML did not parse or lacked required fields.
    BadConfig(String),
    /// The repository has no application under the requested key.
    UnknownApplication(String),
    /// The application factory failed to build a topology.
    AppBuild(String),
    /// No feasible placement for a stage.
    Placement(PlacementError),
    /// The topology failed validation.
    Topology(String),
    /// Placement succeeded but the plan could not be realized (partial
    /// placement or a dangling node reference).
    Deploy(DeployError),
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::BadConfig(msg) => write!(f, "bad application config: {msg}"),
            GridError::UnknownApplication(key) => write!(f, "unknown application {key:?}"),
            GridError::AppBuild(msg) => write!(f, "application build failed: {msg}"),
            GridError::Placement(e) => write!(f, "placement failed: {e}"),
            GridError::Topology(msg) => write!(f, "invalid topology: {msg}"),
            GridError::Deploy(e) => write!(f, "deployment failed: {e}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<PlacementError> for GridError {
    fn from(e: PlacementError) -> Self {
        GridError::Placement(e)
    }
}

impl From<DeployError> for GridError {
    fn from(e: DeployError) -> Self {
        GridError::Deploy(e)
    }
}

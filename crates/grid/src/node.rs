//! Node descriptions in the resource directory.

/// One compute resource known to the grid.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Unique node name (e.g. `"n0.cluster"`).
    pub name: String,
    /// Site label used for placement affinity (e.g. `"source-0"`,
    /// `"central"`). Several nodes may share a site.
    pub site: String,
    /// Relative CPU speed factor: 1.0 is the reference machine; a stage's
    /// service time is divided by this.
    pub cpu_speed: f64,
    /// Available memory in MB (matched against stage requirements).
    pub memory_mb: u64,
    /// Free-form capability tags (e.g. `"jvm"`, `"gpu"`).
    pub tags: Vec<String>,
    /// Maximum stages this node will host.
    pub max_stages: usize,
    /// Network endpoint (`host:port`) where this node's worker process
    /// accepts data connections. `None` for simulated nodes.
    pub endpoint: Option<String>,
}

impl NodeSpec {
    /// A node with defaults: speed 1.0, 1024 MB, no tags, 4 stage slots.
    pub fn new(name: impl Into<String>, site: impl Into<String>) -> Self {
        NodeSpec {
            name: name.into(),
            site: site.into(),
            cpu_speed: 1.0,
            memory_mb: 1024,
            tags: Vec::new(),
            max_stages: 4,
            endpoint: None,
        }
    }

    /// Set the CPU speed factor (must be positive).
    pub fn speed(mut self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "speed factor must be positive");
        self.cpu_speed = factor;
        self
    }

    /// Set available memory.
    pub fn memory(mut self, mb: u64) -> Self {
        self.memory_mb = mb;
        self
    }

    /// Add a capability tag.
    pub fn tag(mut self, tag: impl Into<String>) -> Self {
        self.tags.push(tag.into());
        self
    }

    /// Set the stage-hosting capacity (min 1).
    pub fn capacity(mut self, stages: usize) -> Self {
        self.max_stages = stages.max(1);
        self
    }

    /// Set the worker's data endpoint (`host:port`).
    pub fn endpoint(mut self, addr: impl Into<String>) -> Self {
        self.endpoint = Some(addr.into());
        self
    }

    /// Does this node carry `tag`?
    pub fn has_tag(&self, tag: &str) -> bool {
        self.tags.iter().any(|t| t == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let n = NodeSpec::new("n0", "central");
        assert_eq!(n.cpu_speed, 1.0);
        assert_eq!(n.memory_mb, 1024);
        assert_eq!(n.max_stages, 4);
        assert!(!n.has_tag("gpu"));
    }

    #[test]
    fn builder_chain() {
        let n = NodeSpec::new("n1", "edge").speed(2.0).memory(4096).tag("gpu").capacity(2);
        assert_eq!(n.cpu_speed, 2.0);
        assert_eq!(n.memory_mb, 4096);
        assert!(n.has_tag("gpu"));
        assert_eq!(n.max_stages, 2);
    }

    #[test]
    fn capacity_minimum_is_one() {
        assert_eq!(NodeSpec::new("n", "s").capacity(0).max_stages, 1);
    }

    #[test]
    #[should_panic(expected = "speed factor must be positive")]
    fn zero_speed_panics() {
        let _ = NodeSpec::new("n", "s").speed(0.0);
    }
}

//! GATES grid-service instances.
//!
//! The Deployer "initiates instances of the GATES grid service at the
//! nodes … and uploads the stage specific codes to every instance,
//! thereby customizing it" (paper §3.2). A [`ServiceInstance`] models
//! that lifecycle so deployment and teardown are observable and testable.

/// Lifecycle of one grid-service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceState {
    /// Instance created at a node, no stage code yet.
    Created,
    /// Stage code uploaded ("customized" in the paper's wording).
    Customized,
    /// Executing its stage.
    Running,
    /// Stopped by the user or by end-of-stream.
    Stopped,
}

/// One service instance hosting one stage on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceInstance {
    /// The stage this instance hosts.
    pub stage: String,
    /// The node it runs on.
    pub node: String,
    state: ServiceState,
}

impl ServiceInstance {
    /// A freshly created instance.
    pub fn create(stage: impl Into<String>, node: impl Into<String>) -> Self {
        ServiceInstance { stage: stage.into(), node: node.into(), state: ServiceState::Created }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ServiceState {
        self.state
    }

    /// Upload stage code. Only valid from `Created`.
    pub fn customize(&mut self) -> Result<(), String> {
        self.transition(ServiceState::Created, ServiceState::Customized)
    }

    /// Start execution. Only valid from `Customized`.
    pub fn start(&mut self) -> Result<(), String> {
        self.transition(ServiceState::Customized, ServiceState::Running)
    }

    /// Stop execution. Valid from `Running` (idempotent from `Stopped`).
    pub fn stop(&mut self) -> Result<(), String> {
        if self.state == ServiceState::Stopped {
            return Ok(());
        }
        self.transition(ServiceState::Running, ServiceState::Stopped)
    }

    fn transition(&mut self, from: ServiceState, to: ServiceState) -> Result<(), String> {
        if self.state != from {
            return Err(format!(
                "service for stage {:?}: invalid transition {:?} -> {:?}",
                self.stage, self.state, to
            ));
        }
        self.state = to;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_lifecycle() {
        let mut s = ServiceInstance::create("stage", "node");
        assert_eq!(s.state(), ServiceState::Created);
        s.customize().unwrap();
        assert_eq!(s.state(), ServiceState::Customized);
        s.start().unwrap();
        assert_eq!(s.state(), ServiceState::Running);
        s.stop().unwrap();
        assert_eq!(s.state(), ServiceState::Stopped);
    }

    #[test]
    fn cannot_start_before_customize() {
        let mut s = ServiceInstance::create("stage", "node");
        assert!(s.start().is_err());
    }

    #[test]
    fn cannot_customize_twice() {
        let mut s = ServiceInstance::create("stage", "node");
        s.customize().unwrap();
        assert!(s.customize().is_err());
    }

    #[test]
    fn stop_is_idempotent() {
        let mut s = ServiceInstance::create("stage", "node");
        s.customize().unwrap();
        s.start().unwrap();
        s.stop().unwrap();
        s.stop().unwrap();
        assert_eq!(s.state(), ServiceState::Stopped);
    }

    #[test]
    fn cannot_stop_before_running() {
        let mut s = ServiceInstance::create("stage", "node");
        assert!(s.stop().is_err());
    }
}

//! XML descriptions of the resource pool.
//!
//! In the original system the resource directory was populated by Globus
//! index services; here an operator describes the grid in a small XML
//! document (the same format the CLI's `--grid` flag loads):
//!
//! ```xml
//! <grid>
//!   <node name="cern-t0" site="tier0" speed="4.0" memory="16384"
//!         capacity="8" tags="jvm,fast-io"/>
//!   <node name="site-0"  site="tier2-0"/>
//! </grid>
//! ```
//!
//! Only `name` and `site` are required; the rest default to
//! [`NodeSpec::new`]'s values.

use crate::node::NodeSpec;
use crate::registry::ResourceRegistry;
use crate::GridError;
use gates_xml::parse;

/// Parse a `<grid>` document into a registry.
pub fn registry_from_xml(text: &str) -> Result<ResourceRegistry, GridError> {
    let doc = parse(text).map_err(|e| GridError::BadConfig(e.to_string()))?;
    let root = doc.root();
    if root.name() != "grid" {
        return Err(GridError::BadConfig(format!("expected <grid> root, found <{}>", root.name())));
    }
    let mut registry = ResourceRegistry::new();
    for node in root.children_named("node") {
        let name = node
            .attr("name")
            .ok_or_else(|| GridError::BadConfig("<node> needs a name attribute".into()))?;
        let site = node
            .attr("site")
            .ok_or_else(|| GridError::BadConfig(format!("<node name={name:?}> needs a site")))?;
        let mut spec = NodeSpec::new(name, site);
        if let Some(v) = node.attr("speed") {
            let speed: f64 = v
                .parse()
                .map_err(|_| GridError::BadConfig(format!("node {name:?}: bad speed {v:?}")))?;
            if speed <= 0.0 || !speed.is_finite() {
                return Err(GridError::BadConfig(format!(
                    "node {name:?}: speed must be positive, got {v:?}"
                )));
            }
            spec = spec.speed(speed);
        }
        if let Some(v) = node.attr("memory") {
            let memory: u64 = v
                .parse()
                .map_err(|_| GridError::BadConfig(format!("node {name:?}: bad memory {v:?}")))?;
            spec = spec.memory(memory);
        }
        if let Some(v) = node.attr("capacity") {
            let capacity: usize = v
                .parse()
                .map_err(|_| GridError::BadConfig(format!("node {name:?}: bad capacity {v:?}")))?;
            spec = spec.capacity(capacity);
        }
        if let Some(tags) = node.attr("tags") {
            for tag in tags.split(',').map(str::trim).filter(|t| !t.is_empty()) {
                spec = spec.tag(tag);
            }
        }
        registry.register(spec);
    }
    if registry.is_empty() {
        return Err(GridError::BadConfig("<grid> declares no nodes".into()));
    }
    Ok(registry)
}

/// Serialize a registry back to the `<grid>` XML format.
pub fn registry_to_xml(registry: &ResourceRegistry) -> String {
    use gates_xml::{write_document, Document, Element, WriteOptions};
    let mut root = Element::new("grid");
    for node in registry.nodes() {
        let mut e = Element::new("node")
            .with_attr("name", &node.name)
            .with_attr("site", &node.site)
            .with_attr("speed", node.cpu_speed.to_string())
            .with_attr("memory", node.memory_mb.to_string())
            .with_attr("capacity", node.max_stages.to_string());
        if !node.tags.is_empty() {
            e = e.with_attr("tags", node.tags.join(","));
        }
        root = root.with_child(e);
    }
    write_document(&Document::new(root), &WriteOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        <grid>
          <node name="t0" site="tier0" speed="4" memory="16384" capacity="8" tags="jvm, fast-io"/>
          <node name="s0" site="tier2-0"/>
        </grid>"#;

    #[test]
    fn parses_full_document() {
        let r = registry_from_xml(SAMPLE).unwrap();
        assert_eq!(r.len(), 2);
        let t0 = r.node("t0").unwrap();
        assert_eq!(t0.site, "tier0");
        assert_eq!(t0.cpu_speed, 4.0);
        assert_eq!(t0.memory_mb, 16_384);
        assert_eq!(t0.max_stages, 8);
        assert!(t0.has_tag("jvm"));
        assert!(t0.has_tag("fast-io"));
        let s0 = r.node("s0").unwrap();
        assert_eq!(s0.cpu_speed, 1.0, "defaults apply");
    }

    #[test]
    fn missing_required_attributes_rejected() {
        assert!(registry_from_xml(r#"<grid><node site="x"/></grid>"#).is_err());
        assert!(registry_from_xml(r#"<grid><node name="x"/></grid>"#).is_err());
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(registry_from_xml("<cluster/>").is_err());
    }

    #[test]
    fn empty_grid_rejected() {
        assert!(registry_from_xml("<grid/>").is_err());
    }

    #[test]
    fn bad_numbers_rejected() {
        assert!(
            registry_from_xml(r#"<grid><node name="n" site="s" speed="fast"/></grid>"#).is_err()
        );
        assert!(registry_from_xml(r#"<grid><node name="n" site="s" speed="-1"/></grid>"#).is_err());
        assert!(
            registry_from_xml(r#"<grid><node name="n" site="s" memory="lots"/></grid>"#).is_err()
        );
    }

    #[test]
    fn xml_round_trip() {
        let original = registry_from_xml(SAMPLE).unwrap();
        let text = registry_to_xml(&original);
        let reparsed = registry_from_xml(&text).unwrap();
        assert_eq!(reparsed.nodes(), original.nodes());
    }
}

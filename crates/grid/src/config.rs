//! The XML application-configuration document.
//!
//! "The developer writes an XML file, specifying the configuration
//! information of an application … the number of stages and where the
//! stages' codes are. After submitting the codes to application
//! repositories, the application developer informs an application user of
//! the URL link to the configuration file." (paper §3.2)
//!
//! Format:
//!
//! ```xml
//! <application name="my-run" repository="count-samps">
//!   <param name="sources" value="4"/>
//!   <param name="bandwidth_kb">100</param>
//!   <stage name="agg" replicas="4"/>
//! </application>
//! ```
//!
//! `repository` names the application in the [`crate::ApplicationRepository`];
//! `<param>` entries are free-form key/values interpreted by the
//! application factory. Both attribute and element-text forms of the
//! value are accepted. `<stage>` entries declare per-stage deployment
//! overrides — the replica count and/or the adaptation policy
//! (`<stage name="agg" replicas="4" policy="aimd"/>`), which the
//! launcher applies to the built topology via
//! [`AppConfig::apply_overrides`] (see [`gates_core::Topology::replicate`]
//! and [`gates_core::adapt::PolicyKind`]).

use crate::GridError;
use gates_core::adapt::PolicyKind;
use gates_core::Topology;
use gates_xml::parse;

/// A parsed application configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AppConfig {
    /// Run name (for reports).
    pub name: String,
    /// Application key in the repository.
    pub repository: String,
    params: Vec<(String, String)>,
    replicas: Vec<(String, usize)>,
    policies: Vec<(String, PolicyKind)>,
}

impl AppConfig {
    /// Build programmatically (tests, embedded defaults).
    pub fn new(name: impl Into<String>, repository: impl Into<String>) -> Self {
        AppConfig {
            name: name.into(),
            repository: repository.into(),
            params: Vec::new(),
            replicas: Vec::new(),
            policies: Vec::new(),
        }
    }

    /// Add or replace a parameter (builder style).
    pub fn with_param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.set_param(key, value);
        self
    }

    /// Declare a stage's replica count (builder style). `1` clears a
    /// previous declaration — a singleton needs no entry.
    pub fn with_replicas(mut self, stage: impl Into<String>, n: usize) -> Self {
        self.set_replicas(stage, n);
        self
    }

    /// Declare a stage's adaptation policy (builder style).
    /// [`PolicyKind::Paper`] clears a previous declaration — the default
    /// needs no entry.
    pub fn with_policy(mut self, stage: impl Into<String>, policy: PolicyKind) -> Self {
        self.set_policy(stage, policy);
        self
    }

    /// Declare (or clear, with [`PolicyKind::Paper`]) a stage's
    /// adaptation policy.
    pub fn set_policy(&mut self, stage: impl Into<String>, policy: PolicyKind) {
        let stage = stage.into();
        self.policies.retain(|(s, _)| *s != stage);
        if policy != PolicyKind::Paper {
            self.policies.push((stage, policy));
        }
    }

    /// Declare (or clear, with `n <= 1`) a stage's replica count.
    pub fn set_replicas(&mut self, stage: impl Into<String>, n: usize) {
        let stage = stage.into();
        self.replicas.retain(|(s, _)| *s != stage);
        if n > 1 {
            self.replicas.push((stage, n));
        }
    }

    /// Add or replace a parameter.
    pub fn set_param(&mut self, key: impl Into<String>, value: impl ToString) {
        let key = key.into();
        let value = value.to_string();
        if let Some(slot) = self.params.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.params.push((key, value));
        }
    }

    /// Parse from XML text.
    pub fn from_xml(text: &str) -> Result<Self, GridError> {
        let doc = parse(text).map_err(|e| GridError::BadConfig(e.to_string()))?;
        let root = doc.root();
        if root.name() != "application" {
            return Err(GridError::BadConfig(format!(
                "expected <application> root, found <{}>",
                root.name()
            )));
        }
        let name = root
            .attr("name")
            .ok_or_else(|| GridError::BadConfig("<application> needs a name attribute".into()))?
            .to_string();
        let repository = root
            .attr("repository")
            .ok_or_else(|| {
                GridError::BadConfig("<application> needs a repository attribute".into())
            })?
            .to_string();
        let mut config = AppConfig {
            name,
            repository,
            params: Vec::new(),
            replicas: Vec::new(),
            policies: Vec::new(),
        };
        for s in root.children_named("stage") {
            let stage = s
                .attr("name")
                .ok_or_else(|| GridError::BadConfig("<stage> needs a name attribute".into()))?;
            let replicas = s.attr("replicas");
            let policy = s.attr("policy");
            if replicas.is_none() && policy.is_none() {
                return Err(GridError::BadConfig(format!(
                    "<stage name={stage:?}> declares neither replicas nor policy"
                )));
            }
            if let Some(raw) = replicas {
                let n = raw.parse::<usize>().map_err(|_| {
                    GridError::BadConfig(format!("replicas for stage {stage:?} is not an integer"))
                })?;
                if n == 0 {
                    return Err(GridError::BadConfig(format!(
                        "stage {stage:?} declares zero replicas"
                    )));
                }
                config.set_replicas(stage, n);
            }
            if let Some(raw) = policy {
                let kind = PolicyKind::parse(raw).map_err(|e| {
                    GridError::BadConfig(format!("policy for stage {stage:?}: {e}"))
                })?;
                config.set_policy(stage, kind);
            }
        }
        for p in root.children_named("param") {
            let key = p
                .attr("name")
                .ok_or_else(|| GridError::BadConfig("<param> needs a name attribute".into()))?;
            let value = match p.attr("value") {
                Some(v) => v.to_string(),
                None => {
                    let text = p.text();
                    if text.is_empty() {
                        return Err(GridError::BadConfig(format!(
                            "<param name={key:?}> needs a value attribute or text"
                        )));
                    }
                    text
                }
            };
            config.set_param(key, value);
        }
        Ok(config)
    }

    /// Raw string parameter.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.params.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Parameter parsed as `f64`.
    pub fn get_f64(&self, key: &str) -> Result<Option<f64>, GridError> {
        self.get(key)
            .map(|v| {
                v.parse::<f64>().map_err(|_| {
                    GridError::BadConfig(format!("param {key:?} is not a number: {v:?}"))
                })
            })
            .transpose()
    }

    /// Parameter parsed as `usize`.
    pub fn get_usize(&self, key: &str) -> Result<Option<usize>, GridError> {
        self.get(key)
            .map(|v| {
                v.parse::<usize>().map_err(|_| {
                    GridError::BadConfig(format!("param {key:?} is not an integer: {v:?}"))
                })
            })
            .transpose()
    }

    /// `f64` parameter with a default.
    pub fn f64_or(&self, key: &str, default: f64) -> Result<f64, GridError> {
        Ok(self.get_f64(key)?.unwrap_or(default))
    }

    /// `usize` parameter with a default.
    pub fn usize_or(&self, key: &str, default: usize) -> Result<usize, GridError> {
        Ok(self.get_usize(key)?.unwrap_or(default))
    }

    /// All parameters in declaration order.
    pub fn params(&self) -> &[(String, String)] {
        &self.params
    }

    /// Declared `(stage, replicas)` pairs in declaration order. Only
    /// stages with more than one replica appear.
    pub fn replicas(&self) -> &[(String, usize)] {
        &self.replicas
    }

    /// The declared replica count for `stage` (1 when undeclared).
    pub fn replicas_of(&self, stage: &str) -> usize {
        self.replicas.iter().find(|(s, _)| s == stage).map(|(_, n)| *n).unwrap_or(1)
    }

    /// Declared `(stage, policy)` pairs in declaration order. Only
    /// non-default policies appear.
    pub fn policies(&self) -> &[(String, PolicyKind)] {
        &self.policies
    }

    /// The declared adaptation policy for `stage`
    /// ([`PolicyKind::Paper`] when undeclared).
    pub fn policy_of(&self, stage: &str) -> PolicyKind {
        self.policies.iter().find(|(s, _)| s == stage).map(|(_, p)| *p).unwrap_or_default()
    }

    /// Expand every `<stage replicas="N"/>` declaration into `N` replica
    /// instances on the built topology (see
    /// [`gates_core::Topology::replicate`]).
    ///
    /// Every process of a distributed run must call this against the
    /// same configuration right after building the topology from the
    /// repository — the expansion renumbers edges, and placement tables
    /// and edge ids on the wire only line up if coordinator and workers
    /// agree on the expanded graph.
    pub fn apply_replicas(&self, topology: &mut Topology) -> Result<(), GridError> {
        for (stage, n) in &self.replicas {
            topology
                .replicate(stage, *n)
                .map_err(|e| GridError::BadConfig(format!("replicas for {stage:?}: {e}")))?;
        }
        Ok(())
    }

    /// Apply every `<stage policy="..."/>` declaration to the built
    /// topology (see [`gates_core::Topology::set_adapt_policy`]).
    pub fn apply_policies(&self, topology: &mut Topology) -> Result<(), GridError> {
        for (stage, policy) in &self.policies {
            topology
                .set_adapt_policy(stage, *policy)
                .map_err(|e| GridError::BadConfig(format!("policy for {stage:?}: {e}")))?;
        }
        Ok(())
    }

    /// Apply every per-stage deployment override to the built topology:
    /// adaptation policies first (so replicas inherit them), then
    /// replica expansion.
    ///
    /// Every process of a distributed run must call this against the
    /// same configuration right after building the topology from the
    /// repository — see [`AppConfig::apply_replicas`] for why.
    pub fn apply_overrides(&self, topology: &mut Topology) -> Result<(), GridError> {
        self.apply_policies(topology)?;
        self.apply_replicas(topology)
    }

    /// Serialize back to XML (round-trip support).
    pub fn to_xml(&self) -> String {
        use gates_xml::{write_document, Document, Element, WriteOptions};
        let mut root = Element::new("application")
            .with_attr("name", &self.name)
            .with_attr("repository", &self.repository);
        let mut stage_names: Vec<&str> = Vec::new();
        for (s, _) in &self.replicas {
            stage_names.push(s);
        }
        for (s, _) in &self.policies {
            if !stage_names.contains(&s.as_str()) {
                stage_names.push(s);
            }
        }
        for s in stage_names {
            let mut el = Element::new("stage").with_attr("name", s);
            let n = self.replicas_of(s);
            if n > 1 {
                el = el.with_attr("replicas", n.to_string());
            }
            let p = self.policy_of(s);
            if p != PolicyKind::Paper {
                el = el.with_attr("policy", p.as_str());
            }
            root = root.with_child(el);
        }
        for (k, v) in &self.params {
            root =
                root.with_child(Element::new("param").with_attr("name", k).with_attr("value", v));
        }
        write_document(&Document::new(root), &WriteOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
        <application name="run-1" repository="count-samps">
          <param name="sources" value="4"/>
          <param name="bandwidth_kb">100</param>
          <param name="label" value="baseline &amp; co"/>
        </application>"#;

    #[test]
    fn parses_full_document() {
        let c = AppConfig::from_xml(SAMPLE).unwrap();
        assert_eq!(c.name, "run-1");
        assert_eq!(c.repository, "count-samps");
        assert_eq!(c.get("sources"), Some("4"));
        assert_eq!(c.get("bandwidth_kb"), Some("100"), "element-text value form");
        assert_eq!(c.get("label"), Some("baseline & co"));
        assert_eq!(c.get("missing"), None);
    }

    #[test]
    fn typed_getters() {
        let c = AppConfig::from_xml(SAMPLE).unwrap();
        assert_eq!(c.get_usize("sources").unwrap(), Some(4));
        assert_eq!(c.get_f64("bandwidth_kb").unwrap(), Some(100.0));
        assert_eq!(c.usize_or("missing", 7).unwrap(), 7);
        assert_eq!(c.f64_or("missing", 2.5).unwrap(), 2.5);
        assert!(c.get_usize("label").is_err(), "non-numeric param");
    }

    #[test]
    fn wrong_root_rejected() {
        assert!(matches!(AppConfig::from_xml("<app/>"), Err(GridError::BadConfig(_))));
    }

    #[test]
    fn missing_attributes_rejected() {
        assert!(AppConfig::from_xml(r#"<application name="x"/>"#).is_err());
        assert!(AppConfig::from_xml(r#"<application repository="x"/>"#).is_err());
        assert!(AppConfig::from_xml(
            r#"<application name="x" repository="y"><param value="1"/></application>"#
        )
        .is_err());
        assert!(AppConfig::from_xml(
            r#"<application name="x" repository="y"><param name="k"/></application>"#
        )
        .is_err());
    }

    #[test]
    fn malformed_xml_rejected() {
        assert!(matches!(AppConfig::from_xml("<application"), Err(GridError::BadConfig(_))));
    }

    #[test]
    fn duplicate_params_last_wins() {
        let c = AppConfig::new("n", "r").with_param("k", 1).with_param("k", 2);
        assert_eq!(c.get("k"), Some("2"));
        assert_eq!(c.params().len(), 1);
    }

    #[test]
    fn xml_round_trip() {
        let original = AppConfig::new("trip", "app").with_param("a", 1).with_param("b", "x & y");
        let xml = original.to_xml();
        let reparsed = AppConfig::from_xml(&xml).unwrap();
        assert_eq!(reparsed, original);
    }

    #[test]
    fn parses_stage_replicas() {
        let c = AppConfig::from_xml(
            r#"<application name="x" repository="y">
                 <stage name="agg" replicas="4"/>
                 <stage name="solo" replicas="1"/>
               </application>"#,
        )
        .unwrap();
        assert_eq!(c.replicas_of("agg"), 4);
        assert_eq!(c.replicas_of("solo"), 1, "one replica is a singleton");
        assert_eq!(c.replicas_of("missing"), 1);
        assert_eq!(c.replicas(), &[("agg".to_string(), 4)]);
    }

    #[test]
    fn bad_replica_declarations_rejected() {
        for xml in [
            r#"<application name="x" repository="y"><stage replicas="2"/></application>"#,
            r#"<application name="x" repository="y"><stage name="a"/></application>"#,
            r#"<application name="x" repository="y"><stage name="a" replicas="many"/></application>"#,
            r#"<application name="x" repository="y"><stage name="a" replicas="0"/></application>"#,
            r#"<application name="x" repository="y"><stage name="a" policy="fuzzy"/></application>"#,
        ] {
            assert!(matches!(AppConfig::from_xml(xml), Err(GridError::BadConfig(_))), "{xml}");
        }
    }

    #[test]
    fn parses_stage_policies() {
        let c = AppConfig::from_xml(
            r#"<application name="x" repository="y">
                 <stage name="sampler" policy="aimd"/>
                 <stage name="agg" replicas="3" policy="pid"/>
                 <stage name="plain" policy="paper"/>
               </application>"#,
        )
        .unwrap();
        assert_eq!(c.policy_of("sampler"), PolicyKind::Aimd);
        assert_eq!(c.policy_of("agg"), PolicyKind::Pid);
        assert_eq!(c.replicas_of("agg"), 3, "replicas and policy combine");
        assert_eq!(c.policy_of("plain"), PolicyKind::Paper, "explicit default accepted");
        assert_eq!(c.policy_of("missing"), PolicyKind::Paper);
        assert_eq!(c.policies().len(), 2, "defaults are not stored");
    }

    #[test]
    fn policies_round_trip_and_apply() {
        use gates_core::{Packet, StageApi, StageBuilder, StreamProcessor};
        use gates_net::LinkSpec;
        struct Nop;
        impl StreamProcessor for Nop {
            fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
        }

        let original = AppConfig::new("trip", "app")
            .with_replicas("mid", 2)
            .with_policy("mid", PolicyKind::Aimd)
            .with_policy("snk", PolicyKind::Pid);
        let xml = original.to_xml();
        assert!(xml.contains(r#"policy="aimd""#), "{xml}");
        let reparsed = AppConfig::from_xml(&xml).unwrap();
        assert_eq!(reparsed, original);

        let mut t = Topology::new();
        let src = t.add_stage(StageBuilder::new("src").processor(|| Nop)).unwrap();
        let mid = t.add_stage(StageBuilder::new("mid").processor(|| Nop)).unwrap();
        let snk = t.add_stage(StageBuilder::new("snk").processor(|| Nop)).unwrap();
        t.connect(src, mid, LinkSpec::local());
        t.connect(mid, snk, LinkSpec::local());
        reparsed.apply_overrides(&mut t).unwrap();
        assert_eq!(t.stages().len(), 4, "mid expanded to 2 replicas");
        // Policies were applied before expansion, so both replicas of
        // `mid` inherit the declared kind.
        for s in t.stages().iter().filter(|s| s.name.starts_with("mid")) {
            assert_eq!(s.adaptation.as_ref().unwrap().policy, PolicyKind::Aimd, "{}", s.name);
        }
        let snk_spec = &t.stages()[t.stage_by_name("snk").unwrap().index()];
        assert_eq!(snk_spec.adaptation.as_ref().unwrap().policy, PolicyKind::Pid);

        let ghost = AppConfig::new("trip", "app").with_policy("ghost", PolicyKind::Aimd);
        assert!(ghost.apply_policies(&mut Topology::new()).is_err());
    }

    #[test]
    fn replicas_round_trip_and_apply() {
        use gates_core::{Packet, StageApi, StageBuilder, StreamProcessor};
        use gates_net::LinkSpec;
        struct Nop;
        impl StreamProcessor for Nop {
            fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
        }

        let original = AppConfig::new("trip", "app").with_replicas("mid", 3).with_param("k", 1);
        let reparsed = AppConfig::from_xml(&original.to_xml()).unwrap();
        assert_eq!(reparsed, original);

        let mut t = Topology::new();
        let src = t.add_stage(StageBuilder::new("src").processor(|| Nop)).unwrap();
        let mid = t.add_stage(StageBuilder::new("mid").processor(|| Nop)).unwrap();
        let snk = t.add_stage(StageBuilder::new("snk").processor(|| Nop)).unwrap();
        t.connect(src, mid, LinkSpec::local());
        t.connect(mid, snk, LinkSpec::local());
        reparsed.apply_replicas(&mut t).unwrap();
        assert_eq!(t.stages().len(), 5, "mid expanded to 3 replicas");
        assert_eq!(t.groups().len(), 1);

        let missing = AppConfig::new("trip", "app").with_replicas("ghost", 2);
        assert!(missing.apply_replicas(&mut Topology::new()).is_err());
    }
}

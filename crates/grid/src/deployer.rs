//! The Deployer: topology + directory → concrete deployment plan.
//!
//! Paper §3.2: the Deployer "1) receives the configuration information
//! from the Launcher, 2) consults with a grid resource manager to find
//! the nodes where the resources required by the individual stages are
//! available, 3) initiates instances of GATES grid services at the nodes,
//! 4) retrieves the stage codes from the application repositories, and
//! 5) uploads the stage specific codes to every instance."

use std::collections::HashMap;

use gates_core::{StageId, Topology};

use crate::matchmaker::Matchmaker;
use crate::registry::ResourceRegistry;
use crate::service::{ServiceInstance, ServiceState};
use crate::GridError;

/// Ways a placement can fail to materialize into a plan. These used to
/// be panics; a matchmaker bug (or a hand-built placement map) now
/// surfaces as an error the caller can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeployError {
    /// The placement map has no entry for a stage.
    StageNotPlaced {
        /// Name of the unplaced stage.
        stage: String,
    },
    /// A placement references a node the registry does not know.
    UnknownNode {
        /// Stage whose placement is dangling.
        stage: String,
        /// The unknown node name.
        node: String,
    },
}

impl std::fmt::Display for DeployError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeployError::StageNotPlaced { stage } => {
                write!(f, "stage {stage:?} was not placed on any node")
            }
            DeployError::UnknownNode { stage, node } => {
                write!(f, "stage {stage:?} placed on unknown node {node:?}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

/// Where each stage runs, plus the instantiated service containers.
#[derive(Debug, Clone)]
pub struct DeploymentPlan {
    placements: HashMap<StageId, String>,
    /// Node speed factor per stage (denormalized for the executors).
    speeds: HashMap<StageId, f64>,
    /// Data endpoint per stage, when the hosting node advertised one.
    endpoints: HashMap<StageId, String>,
    services: Vec<ServiceInstance>,
}

impl DeploymentPlan {
    /// Node name hosting `stage`.
    pub fn node_of(&self, stage: StageId) -> Option<&str> {
        self.placements.get(&stage).map(String::as_str)
    }

    /// CPU speed factor of the node hosting `stage` (1.0 if unknown).
    pub fn speed_of(&self, stage: StageId) -> f64 {
        self.speeds.get(&stage).copied().unwrap_or(1.0)
    }

    /// `host:port` data endpoint of the node hosting `stage`, when the
    /// registry node carried one (distributed runs only).
    pub fn endpoint_of(&self, stage: StageId) -> Option<&str> {
        self.endpoints.get(&stage).map(String::as_str)
    }

    /// All service instances, in stage order.
    pub fn services(&self) -> &[ServiceInstance] {
        &self.services
    }

    /// Mutable access for lifecycle transitions (start/stop).
    pub fn services_mut(&mut self) -> &mut [ServiceInstance] {
        &mut self.services
    }

    /// Mark all services running (executors call this at run start).
    pub fn start_all(&mut self) -> Result<(), String> {
        for s in &mut self.services {
            s.start()?;
        }
        Ok(())
    }

    /// Mark all services stopped.
    pub fn stop_all(&mut self) -> Result<(), String> {
        for s in &mut self.services {
            s.stop()?;
        }
        Ok(())
    }

    /// Number of placed stages.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }
}

/// Deploys validated topologies onto the grid.
#[derive(Debug, Default)]
pub struct Deployer {
    matchmaker: Matchmaker,
}

impl Deployer {
    /// A deployer with the default matchmaker.
    pub fn new() -> Self {
        Deployer::default()
    }

    /// Validate the topology, place every stage, and create a customized
    /// service instance per stage.
    pub fn deploy(
        &self,
        topology: &Topology,
        registry: &ResourceRegistry,
    ) -> Result<DeploymentPlan, GridError> {
        topology.validate().map_err(|e| GridError::Topology(e.to_string()))?;
        let placements = self.matchmaker.place(topology, registry)?;
        build_plan(topology, registry, placements)
    }
}

/// Realize a placement map into a full plan, validating that every stage
/// is placed on a node the registry knows.
fn build_plan(
    topology: &Topology,
    registry: &ResourceRegistry,
    placements: HashMap<StageId, String>,
) -> Result<DeploymentPlan, GridError> {
    let mut speeds = HashMap::new();
    let mut endpoints = HashMap::new();
    let mut services = Vec::with_capacity(topology.stages().len());
    for (idx, stage) in topology.stages().iter().enumerate() {
        let id = StageId::from_index(idx);
        let node_name = placements
            .get(&id)
            .ok_or_else(|| DeployError::StageNotPlaced { stage: stage.name.clone() })?;
        let node = registry.node(node_name).ok_or_else(|| DeployError::UnknownNode {
            stage: stage.name.clone(),
            node: node_name.clone(),
        })?;
        speeds.insert(id, node.cpu_speed);
        if let Some(ep) = &node.endpoint {
            endpoints.insert(id, ep.clone());
        }
        let mut service = ServiceInstance::create(stage.name.clone(), node_name.clone());
        service.customize().map_err(GridError::AppBuild)?;
        debug_assert_eq!(service.state(), ServiceState::Customized);
        services.push(service);
    }
    Ok(DeploymentPlan { placements, speeds, endpoints, services })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;
    use gates_core::{Packet, StageApi, StageBuilder, StreamProcessor};
    use gates_net::{Bandwidth, LinkSpec};

    struct Nop;
    impl StreamProcessor for Nop {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    }

    fn topology() -> (Topology, StageId, StageId) {
        let mut t = Topology::new();
        let a = t.add_stage(StageBuilder::new("src").site("edge").processor(|| Nop)).unwrap();
        let b = t.add_stage(StageBuilder::new("sink").site("central").processor(|| Nop)).unwrap();
        t.connect(a, b, LinkSpec::with_bandwidth(Bandwidth::kb_per_sec(100.0)));
        (t, a, b)
    }

    fn registry() -> ResourceRegistry {
        let mut r = ResourceRegistry::new();
        r.register(NodeSpec::new("e0", "edge").speed(1.0));
        r.register(NodeSpec::new("c0", "central").speed(2.0));
        r
    }

    #[test]
    fn deploy_places_and_customizes() {
        let (t, a, b) = topology();
        let plan = Deployer::new().deploy(&t, &registry()).unwrap();
        assert_eq!(plan.node_of(a), Some("e0"));
        assert_eq!(plan.node_of(b), Some("c0"));
        assert_eq!(plan.speed_of(a), 1.0);
        assert_eq!(plan.speed_of(b), 2.0);
        assert_eq!(plan.len(), 2);
        assert!(plan.services().iter().all(|s| s.state() == ServiceState::Customized));
    }

    #[test]
    fn deploy_rejects_invalid_topology() {
        let mut t = Topology::new();
        let a = t.add_stage(StageBuilder::new("a").processor(|| Nop)).unwrap();
        t.connect(a, a, LinkSpec::local());
        assert!(matches!(Deployer::new().deploy(&t, &registry()), Err(GridError::Topology(_))));
    }

    #[test]
    fn deploy_fails_without_resources() {
        let (t, _, _) = topology();
        assert!(matches!(
            Deployer::new().deploy(&t, &ResourceRegistry::new()),
            Err(GridError::Placement(_))
        ));
    }

    #[test]
    fn partial_placement_is_an_error_not_a_panic() {
        let (t, a, _) = topology();
        let reg = registry();
        // A placement map missing the second stage (a buggy matchmaker
        // or a hand-built map).
        let mut placements = HashMap::new();
        placements.insert(a, "e0".to_string());
        let err = build_plan(&t, &reg, placements).unwrap_err();
        assert_eq!(err, GridError::Deploy(DeployError::StageNotPlaced { stage: "sink".into() }));
        assert!(err.to_string().contains("was not placed"));
    }

    #[test]
    fn placement_on_unknown_node_is_an_error_not_a_panic() {
        let (t, a, b) = topology();
        let reg = registry();
        let mut placements = HashMap::new();
        placements.insert(a, "e0".to_string());
        placements.insert(b, "ghost-node".to_string());
        let err = build_plan(&t, &reg, placements).unwrap_err();
        assert_eq!(
            err,
            GridError::Deploy(DeployError::UnknownNode {
                stage: "sink".into(),
                node: "ghost-node".into()
            })
        );
        assert!(err.to_string().contains("unknown node"));
    }

    #[test]
    fn plan_lifecycle_start_stop() {
        let (t, _, _) = topology();
        let mut plan = Deployer::new().deploy(&t, &registry()).unwrap();
        plan.start_all().unwrap();
        assert!(plan.services().iter().all(|s| s.state() == ServiceState::Running));
        plan.stop_all().unwrap();
        assert!(plan.services().iter().all(|s| s.state() == ServiceState::Stopped));
    }

    #[test]
    fn endpoints_flow_from_registry_to_plan() {
        let (t, a, b) = topology();
        let mut reg = ResourceRegistry::new();
        reg.register(NodeSpec::new("e0", "edge").endpoint("127.0.0.1:9001"));
        reg.register(NodeSpec::new("c0", "central"));
        let plan = Deployer::new().deploy(&t, &reg).unwrap();
        assert_eq!(plan.endpoint_of(a), Some("127.0.0.1:9001"));
        assert_eq!(plan.endpoint_of(b), None, "no endpoint advertised");
    }

    #[test]
    fn unknown_stage_speed_defaults_to_one() {
        let (t, _, _) = topology();
        let plan = Deployer::new().deploy(&t, &registry()).unwrap();
        // Mint an out-of-range id via the same ordinal contract.
        let ghost = StageId::from_index(99);
        assert_eq!(plan.speed_of(ghost), 1.0);
        assert_eq!(plan.node_of(ghost), None);
    }
}

//! The Launcher: the application user's single entry point.
//!
//! "To start the application, the user simply passes the XML file's URL
//! link to the Launcher. … The Launcher is in charge of getting
//! configuration files and analyzing them by using an embedded XML
//! parser" (paper §3.2). The Launcher hands the parsed configuration to
//! the repository (to build the topology) and to the Deployer (to place
//! it), returning a ready-to-execute [`Deployment`].

use gates_core::Topology;

use crate::config::AppConfig;
use crate::deployer::{Deployer, DeploymentPlan};
use crate::registry::ResourceRegistry;
use crate::repository::ApplicationRepository;
use crate::GridError;

/// A launched application: the built topology plus its placement.
pub struct Deployment {
    /// The parsed configuration.
    pub config: AppConfig,
    /// The application's stage graph.
    pub topology: Topology,
    /// Stage → node placement and service instances.
    pub plan: DeploymentPlan,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("config", &self.config.name)
            .field("stages", &self.topology.stages().len())
            .field("placements", &self.plan.len())
            .finish()
    }
}

/// Parses configurations and drives the Deployer.
#[derive(Debug, Default)]
pub struct Launcher {
    deployer: Deployer,
}

impl Launcher {
    /// A launcher with the default deployer.
    pub fn new() -> Self {
        Launcher::default()
    }

    /// Launch from XML configuration text (the "URL contents").
    pub fn launch_xml(
        &self,
        xml: &str,
        repository: &ApplicationRepository,
        registry: &ResourceRegistry,
    ) -> Result<Deployment, GridError> {
        let config = AppConfig::from_xml(xml)?;
        self.launch(config, repository, registry)
    }

    /// Launch from an already-parsed configuration.
    pub fn launch(
        &self,
        config: AppConfig,
        repository: &ApplicationRepository,
        registry: &ResourceRegistry,
    ) -> Result<Deployment, GridError> {
        let mut topology = repository.build(&config)?;
        // Per-stage overrides happen here — after the factory built the
        // logical graph, before placement — so the matchmaker sees (and
        // spreads) the individual replicas, each carrying its declared
        // adaptation policy.
        config.apply_overrides(&mut topology)?;
        let plan = self.deployer.deploy(&topology, registry)?;
        Ok(Deployment { config, topology, plan })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeSpec;
    use gates_core::{Packet, StageApi, StageBuilder, StreamProcessor};
    use gates_net::{Bandwidth, LinkSpec};

    struct Nop;
    impl StreamProcessor for Nop {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    }

    fn repository() -> ApplicationRepository {
        let mut repo = ApplicationRepository::new();
        repo.publish("pipeline", |config: &AppConfig| {
            let stages = config.usize_or("stages", 2).map_err(|e| e.to_string())?;
            let mut t = Topology::new();
            let mut prev = None;
            for i in 0..stages {
                let id = t
                    .add_stage(
                        StageBuilder::new(format!("s{i}"))
                            .site(format!("site-{i}"))
                            .processor(|| Nop),
                    )
                    .map_err(|e| e.to_string())?;
                if let Some(p) = prev {
                    t.connect(p, id, LinkSpec::with_bandwidth(Bandwidth::kb_per_sec(100.0)));
                }
                prev = Some(id);
            }
            Ok(t)
        });
        repo
    }

    fn registry(n: usize) -> ResourceRegistry {
        let mut r = ResourceRegistry::new();
        for i in 0..n {
            r.register(NodeSpec::new(format!("node-{i}"), format!("site-{i}")));
        }
        r
    }

    #[test]
    fn launch_from_xml_end_to_end() {
        let xml = r#"
            <application name="demo" repository="pipeline">
              <param name="stages" value="3"/>
            </application>"#;
        let deployment = Launcher::new().launch_xml(xml, &repository(), &registry(3)).unwrap();
        assert_eq!(deployment.topology.stages().len(), 3);
        assert_eq!(deployment.plan.len(), 3);
        // Site affinity honoured.
        let s1 = deployment.topology.stage_by_name("s1").unwrap();
        assert_eq!(deployment.plan.node_of(s1), Some("node-1"));
    }

    #[test]
    fn launch_bad_xml_fails_cleanly() {
        let err = Launcher::new().launch_xml("<broken", &repository(), &registry(1)).unwrap_err();
        assert!(matches!(err, GridError::BadConfig(_)));
    }

    #[test]
    fn launch_unknown_app_fails() {
        let xml = r#"<application name="x" repository="ghost"/>"#;
        let err = Launcher::new().launch_xml(xml, &repository(), &registry(1)).unwrap_err();
        assert_eq!(err, GridError::UnknownApplication("ghost".into()));
    }

    #[test]
    fn launch_without_resources_fails() {
        let xml = r#"<application name="x" repository="pipeline"/>"#;
        let err =
            Launcher::new().launch_xml(xml, &repository(), &ResourceRegistry::new()).unwrap_err();
        assert!(matches!(err, GridError::Placement(_)));
    }

    #[test]
    fn launch_applies_replica_declarations() {
        let xml = r#"
            <application name="demo" repository="pipeline">
              <param name="stages" value="3"/>
              <stage name="s1" replicas="2"/>
            </application>"#;
        let mut r = registry(3);
        for i in 0..3 {
            r.register(NodeSpec::new(format!("extra-{i}"), format!("site-{i}")));
        }
        let deployment = Launcher::new().launch_xml(xml, &repository(), &r).unwrap();
        assert_eq!(deployment.topology.stages().len(), 4, "s1 expanded into two replicas");
        assert_eq!(deployment.plan.len(), 4);
        let g = &deployment.topology.groups()[0];
        assert_eq!(g.base, "s1");
        // Anti-affinity: the two replicas land on different nodes even
        // though both prefer site-1.
        let n0 = deployment.plan.node_of(g.members[0]).unwrap();
        let n1 = deployment.plan.node_of(g.members[1]).unwrap();
        assert_ne!(n0, n1, "replicas spread across nodes");
    }

    #[test]
    fn debug_format_is_compact() {
        let xml = r#"<application name="demo" repository="pipeline"/>"#;
        let deployment = Launcher::new().launch_xml(xml, &repository(), &registry(2)).unwrap();
        let dbg = format!("{deployment:?}");
        assert!(dbg.contains("demo"));
    }
}

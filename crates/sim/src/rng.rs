//! Seeded random-number helpers.
//!
//! Experiments must be repeatable, so every source of randomness in this
//! repository is a [`rand::rngs::SmallRng`] derived from an explicit
//! `u64` seed. Sub-streams (e.g. one per data source) are derived with
//! [`derive_seed`], which decorrelates them via SplitMix64 so that seeds
//! `1, 2, 3…` do not produce correlated streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Build a deterministic RNG from a seed.
pub fn seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derive a decorrelated child seed from `(seed, stream)` using the
/// SplitMix64 finalizer.
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A derived deterministic RNG for sub-stream `stream` of `seed`.
pub fn seeded_stream(seed: u64, stream: u64) -> SmallRng {
    seeded(derive_seed(seed, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derived_seeds_decorrelate_streams() {
        // Adjacent stream ids must yield very different seeds.
        let s0 = derive_seed(7, 0);
        let s1 = derive_seed(7, 1);
        assert_ne!(s0, s1);
        assert!((s0 ^ s1).count_ones() > 8, "seeds should differ in many bits");
    }

    #[test]
    fn derive_seed_is_pure() {
        assert_eq!(derive_seed(123, 45), derive_seed(123, 45));
    }

    #[test]
    fn stream_rngs_are_independent_and_deterministic() {
        let mut a1 = seeded_stream(9, 1);
        let mut a2 = seeded_stream(9, 1);
        let mut b = seeded_stream(9, 2);
        assert_eq!(a1.gen::<u64>(), a2.gen::<u64>());
        // Not a strict guarantee, but astronomically unlikely to collide:
        assert_ne!(a1.gen::<u64>(), b.gen::<u64>());
    }
}

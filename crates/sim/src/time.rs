//! Virtual clock types: absolute [`SimTime`] and relative [`SimDuration`],
//! both with microsecond resolution.
//!
//! Integer microseconds keep event ordering exact (no float comparison
//! surprises) while still resolving the sub-millisecond service times the
//! experiments need.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulation clock, in microseconds since t = 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future — later than any reachable event.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Construct from (possibly fractional) seconds. Saturates at zero for
    /// negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }

    /// Whole microseconds since t = 0.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since t = 0 as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Construct from fractional seconds; saturates at zero for negatives.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_micros(secs))
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True for the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Duration needed to transmit `bytes` at `bytes_per_sec` (rounds up to
    /// the next microsecond so tiny packets still take nonzero time).
    pub fn for_transfer(bytes: u64, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "bandwidth must be positive");
        let micros = (bytes as f64 * 1e6 / bytes_per_sec).ceil() as u64;
        SimDuration(micros.max(if bytes > 0 { 1 } else { 0 }))
    }
}

fn secs_to_micros(secs: f64) -> u64 {
    if secs <= 0.0 || secs.is_nan() {
        0
    } else {
        (secs * 1e6).round().min(u64::MAX as f64) as u64
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_seconds_saturate_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t.as_micros(), 15);
    }

    #[test]
    fn since_is_saturating() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(30);
        assert_eq!(b.since(a).as_micros(), 20);
        assert_eq!(a.since(b), SimDuration::ZERO);
        assert_eq!((b - a).as_micros(), 20);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        // 1000 bytes at 1000 B/s = 1 second.
        let d = SimDuration::for_transfer(1000, 1000.0);
        assert_eq!(d.as_micros(), 1_000_000);
    }

    #[test]
    fn transfer_time_rounds_up_and_is_nonzero() {
        let d = SimDuration::for_transfer(1, 1e9);
        assert!(d.as_micros() >= 1);
        assert_eq!(SimDuration::for_transfer(0, 1000.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn transfer_with_zero_bandwidth_panics() {
        let _ = SimDuration::for_transfer(10, 0.0);
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_millis(2) * 3;
        assert_eq!(d.as_micros(), 6_000);
        assert_eq!((d / 2).as_micros(), 3_000);
        assert_eq!((d - SimDuration::from_secs(1)), SimDuration::ZERO);
    }

    #[test]
    fn saturating_add_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn display_formats_as_seconds() {
        assert_eq!(SimTime::from_secs_f64(0.25).to_string(), "0.250000s");
    }
}

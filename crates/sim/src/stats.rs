//! Online statistics used by the adaptation algorithm and run reports.
//!
//! Everything here is O(1) per observation: Welford accumulation for
//! whole-run statistics, a fixed-capacity ring for windowed statistics
//! (the paper's "recent" load indicators), an EWMA (the paper's learning
//! rate α), and a linear histogram for queue-length distributions.

/// Whole-stream mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Welford { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Add an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Raw sum of squared deviations (the `M2` accumulator). Exposed so
    /// accumulators can cross process boundaries losslessly.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Rebuild an accumulator from its raw parts (the inverse of reading
    /// `count`/`mean`/`m2`/`min`/`max`), e.g. after a network hop.
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Welford { count, mean, m2, min, max }
    }
}

/// Mean/std over the last `capacity` observations (ring buffer).
#[derive(Debug, Clone)]
pub struct RingStat {
    buf: Vec<f64>,
    capacity: usize,
    next: usize,
    filled: bool,
}

impl RingStat {
    /// Window of the given capacity (must be > 0).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        RingStat { buf: Vec::with_capacity(capacity), capacity, next: 0, filled: false }
    }

    /// Add an observation, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.buf.len() < self.capacity {
            self.buf.push(x);
            if self.buf.len() == self.capacity {
                self.filled = true;
            }
        } else {
            self.buf[self.next] = x;
        }
        self.next = (self.next + 1) % self.capacity;
    }

    /// Observations currently in the window.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no observations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// True when the window has reached capacity at least once.
    pub fn is_full(&self) -> bool {
        self.filled
    }

    /// Mean of the window (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.buf.is_empty() {
            return 0.0;
        }
        self.buf.iter().sum::<f64>() / self.buf.len() as f64
    }

    /// Population standard deviation of the window.
    pub fn std_dev(&self) -> f64 {
        let n = self.buf.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self.buf.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        var.sqrt()
    }

    /// Coefficient of variation relative to `scale` (std/scale). Used by
    /// the σ-gain functions, which need variability normalized to the
    /// parameter's range rather than to the mean (the mean can be ~0).
    pub fn variability(&self, scale: f64) -> f64 {
        if scale <= 0.0 {
            return 0.0;
        }
        self.std_dev() / scale
    }

    /// Remove all observations.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.next = 0;
        self.filled = false;
    }
}

/// Exponentially-weighted moving average: `v ← α·v + (1−α)·x`.
///
/// Matches the paper's Equation for d̃, where α is the "learning rate which
/// helps remove transient behavior" (α close to 1 ⇒ slow, smooth).
#[derive(Debug, Clone)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    primed: bool,
}

impl Ewma {
    /// New EWMA with smoothing factor `alpha ∈ [0, 1)`.
    pub fn new(alpha: f64) -> Self {
        assert!((0.0..1.0).contains(&alpha), "alpha must be in [0,1)");
        Ewma { alpha, value: 0.0, primed: false }
    }

    /// Fold in an observation and return the new value. The first
    /// observation initializes the average directly.
    pub fn update(&mut self, x: f64) -> f64 {
        if self.primed {
            self.value = self.alpha * self.value + (1.0 - self.alpha) * x;
        } else {
            self.value = x;
            self.primed = true;
        }
        self.value
    }

    /// Current value (0 before any update).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Reset to the unprimed state.
    pub fn reset(&mut self) {
        self.value = 0.0;
        self.primed = false;
    }
}

/// Windowed event-rate estimator: events per second over a sliding time
/// window, driven by explicit timestamps (virtual or wall seconds).
///
/// The paper's middleware "monitors the arrival rate at each source";
/// this is that monitor, usable from both engines because it never reads
/// a clock itself.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    window_secs: f64,
    /// (timestamp, weight) events inside the window.
    events: std::collections::VecDeque<(f64, f64)>,
    total_weight: f64,
}

impl RateEstimator {
    /// Estimator over the trailing `window_secs` (> 0).
    pub fn new(window_secs: f64) -> Self {
        assert!(window_secs > 0.0, "window must be positive");
        RateEstimator { window_secs, events: std::collections::VecDeque::new(), total_weight: 0.0 }
    }

    fn evict(&mut self, now: f64) {
        while let Some(&(t, w)) = self.events.front() {
            if now - t > self.window_secs {
                self.events.pop_front();
                self.total_weight -= w;
            } else {
                break;
            }
        }
    }

    /// Record `weight` units (e.g. records, bytes) at time `now`.
    /// Timestamps must be non-decreasing.
    pub fn record(&mut self, now: f64, weight: f64) {
        debug_assert!(
            self.events.back().is_none_or(|&(t, _)| now >= t),
            "timestamps must be monotone"
        );
        self.events.push_back((now, weight));
        self.total_weight += weight;
        self.evict(now);
    }

    /// Estimated rate (units/second) over the window ending at `now`.
    pub fn rate(&mut self, now: f64) -> f64 {
        self.evict(now);
        if self.events.is_empty() {
            return 0.0;
        }
        // Use the real span covered (up to the window) so early estimates
        // aren't diluted by the empty part of the window.
        let span = (now - self.events.front().unwrap().0).max(1e-9).min(self.window_secs);
        self.total_weight / span.max(self.window_secs * 0.1)
    }

    /// Events currently inside the window.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are inside the window.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Fixed-range linear histogram (used for queue-occupancy reports).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `buckets` equal-width bins.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(buckets > 0, "histogram needs at least one bucket");
        Histogram { lo, hi, buckets: vec![0; buckets], underflow: 0, overflow: 0 }
    }

    /// Record an observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.buckets.len() as f64) as usize;
            let idx = idx.min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total observations, including out-of-range.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate quantile (`q ∈ [0,1]`) using bucket midpoints.
    /// Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        for (i, c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + (i as f64 + 0.5) * width);
            }
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert!((w.mean() - 5.0).abs() < 1e-12);
        assert!((w.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn welford_empty_is_benign() {
        let w = Welford::new();
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.variance(), 0.0);
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = RingStat::new(3);
        for x in [1.0, 2.0, 3.0, 4.0] {
            r.push(x);
        }
        // Window is now {2,3,4}.
        assert!((r.mean() - 3.0).abs() < 1e-12);
        assert!(r.is_full());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn ring_std_of_constant_is_zero() {
        let mut r = RingStat::new(4);
        for _ in 0..10 {
            r.push(5.0);
        }
        assert_eq!(r.std_dev(), 0.0);
        assert_eq!(r.variability(10.0), 0.0);
    }

    #[test]
    fn ring_variability_normalizes_by_scale() {
        let mut r = RingStat::new(2);
        r.push(0.0);
        r.push(10.0);
        // std of {0,10} is 5; variability on scale 10 is 0.5.
        assert!((r.variability(10.0) - 0.5).abs() < 1e-12);
        assert_eq!(r.variability(0.0), 0.0);
    }

    #[test]
    fn ring_clear_resets() {
        let mut r = RingStat::new(2);
        r.push(1.0);
        r.push(2.0);
        r.clear();
        assert!(r.is_empty());
        assert!(!r.is_full());
        assert_eq!(r.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "window capacity must be positive")]
    fn ring_zero_capacity_panics() {
        let _ = RingStat::new(0);
    }

    #[test]
    fn ewma_first_update_primes() {
        let mut e = Ewma::new(0.9);
        assert_eq!(e.update(10.0), 10.0);
        let v = e.update(0.0);
        assert!((v - 9.0).abs() < 1e-12);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.5);
        for _ in 0..60 {
            e.update(3.0);
        }
        assert!((e.value() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_reset() {
        let mut e = Ewma::new(0.5);
        e.update(5.0);
        e.reset();
        assert_eq!(e.value(), 0.0);
        assert_eq!(e.update(1.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1)")]
    fn ewma_alpha_one_panics() {
        let _ = Ewma::new(1.0);
    }

    #[test]
    fn rate_estimator_tracks_constant_rate() {
        let mut r = RateEstimator::new(10.0);
        // 5 units/second for 20 seconds.
        for i in 0..200 {
            r.record(i as f64 * 0.1, 0.5);
        }
        let rate = r.rate(19.9);
        assert!((rate - 5.0).abs() < 0.5, "rate {rate} should be ≈5");
    }

    #[test]
    fn rate_estimator_decays_after_burst() {
        let mut r = RateEstimator::new(5.0);
        for i in 0..50 {
            r.record(i as f64 * 0.1, 1.0); // 10/s burst for 5s
        }
        assert!(r.rate(5.0) > 8.0);
        assert_eq!(r.rate(100.0), 0.0, "window empties after the burst");
        assert!(r.is_empty());
    }

    #[test]
    fn rate_estimator_weights_count() {
        let mut r = RateEstimator::new(10.0);
        r.record(0.0, 100.0);
        r.record(1.0, 100.0);
        // 200 units over ≥1s span, floored at 10% of the window.
        let rate = r.rate(1.0);
        assert!(rate > 0.0 && rate <= 200.0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rate_estimator_zero_window_panics() {
        let _ = RateEstimator::new(0.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.99, 10.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 2);
        assert_eq!(h.buckets()[9], 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_quantile_median() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 49.5).abs() < 1.0, "median ≈ 49.5, got {median}");
        assert!(h.quantile(0.0).is_some());
        assert!(h.quantile(1.0).unwrap() <= 100.0);
    }

    #[test]
    fn histogram_quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_none());
    }
}

#![deny(missing_docs)]

//! # gates-sim
//!
//! A small, deterministic discrete-event simulation (DES) kernel.
//!
//! The GATES paper evaluated its middleware on a physical cluster with
//! injected network delays, precisely because the authors "did not have
//! access to a wide-area network that gave high bandwidth and allowed
//! repeatable experiments". This crate takes the repeatability requirement
//! to its logical end: all GATES experiments in this repository run on a
//! virtual clock, so every run of every figure is bit-for-bit identical.
//!
//! The kernel is intentionally generic — it knows nothing about streams,
//! stages or networks. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a microsecond-resolution virtual clock.
//! * [`Actor`] — entities that receive [`Event`]s (start, message, timer)
//!   and react by sending messages or setting timers through a [`Context`].
//! * [`Simulation`] — the event loop: a priority queue ordered by
//!   `(time, sequence)` so same-time events retain FIFO order and runs are
//!   deterministic.
//! * [`stats`] — online statistics (Welford, ring-buffer window, EWMA,
//!   histogram) shared by the adaptation algorithm and the reports.
//! * [`rng`] — seeded RNG construction helpers.
//!
//! ## Example
//!
//! ```
//! use gates_sim::{Actor, Context, Event, SimDuration, Simulation};
//!
//! struct Ping { got: u32 }
//! impl Actor<u32> for Ping {
//!     fn on_event(&mut self, event: Event<u32>, ctx: &mut Context<'_, u32>) {
//!         match event {
//!             Event::Start => ctx.send(ctx.self_id(), 1, SimDuration::from_secs_f64(1.0)),
//!             Event::Message { payload, .. } => {
//!                 self.got = payload;
//!                 ctx.stop();
//!             }
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut sim = Simulation::new();
//! let id = sim.add_actor(Ping { got: 0 });
//! let end = sim.run();
//! assert_eq!(end.as_secs_f64(), 1.0);
//! assert_eq!(sim.actor::<Ping>(id).unwrap().got, 1);
//! ```

mod actor;
pub mod rng;
mod simulation;
pub mod stats;
mod time;

pub use actor::{Actor, ActorId, Context, Event};
pub use simulation::Simulation;
pub use time::{SimDuration, SimTime};

//! The event loop: a time-ordered queue dispatching events to actors.

use crate::actor::{Actor, ActorId, Context, Event, Scheduled};
use crate::time::{SimDuration, SimTime};
use std::any::Any;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Internal object-safe wrapper adding downcast support to actors.
trait AnyActor<M>: Actor<M> {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M, T: Actor<M> + 'static> AnyActor<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A deterministic discrete-event simulation over message type `M`.
pub struct Simulation<M> {
    actors: Vec<Box<dyn AnyActor<M>>>,
    queue: BinaryHeap<Reverse<Scheduled<M>>>,
    outbox: Vec<(SimDuration, ActorId, Event<M>)>,
    now: SimTime,
    seq: u64,
    stop: bool,
    events_processed: u64,
}

impl<M: 'static> Default for Simulation<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: 'static> Simulation<M> {
    /// An empty simulation at t = 0.
    pub fn new() -> Self {
        Simulation {
            actors: Vec::new(),
            queue: BinaryHeap::new(),
            outbox: Vec::new(),
            now: SimTime::ZERO,
            seq: 0,
            stop: false,
            events_processed: 0,
        }
    }

    /// Register an actor and schedule its [`Event::Start`] at the current
    /// time. Returns the actor's id (ids are assigned sequentially).
    pub fn add_actor<A: Actor<M>>(&mut self, actor: A) -> ActorId {
        let id = self.actors.len();
        self.actors.push(Box::new(actor));
        self.push_event(self.now, id, Event::Start);
        id
    }

    /// Current virtual time (time of the most recently dispatched event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Number of registered actors.
    pub fn actor_count(&self) -> usize {
        self.actors.len()
    }

    /// Immutable downcast access to an actor (e.g. to read results after a
    /// run). Returns `None` for a wrong id or type.
    pub fn actor<A: Actor<M>>(&self, id: ActorId) -> Option<&A> {
        self.actors.get(id)?.as_any().downcast_ref::<A>()
    }

    /// Mutable downcast access to an actor.
    pub fn actor_mut<A: Actor<M>>(&mut self, id: ActorId) -> Option<&mut A> {
        self.actors.get_mut(id)?.as_any_mut().downcast_mut::<A>()
    }

    /// Schedule an event from outside any actor (e.g. test drivers).
    pub fn inject(&mut self, to: ActorId, payload: M, delay: SimDuration) {
        self.push_event(self.now + delay, to, Event::Message { from: usize::MAX, payload });
    }

    fn push_event(&mut self, at: SimTime, to: ActorId, event: Event<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, to, event }));
    }

    /// Dispatch the next event. Returns `false` when the queue is empty or
    /// a stop was requested.
    pub fn step(&mut self) -> bool {
        if self.stop {
            return false;
        }
        let Some(Reverse(next)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(next.at >= self.now, "time must be monotone");
        self.now = next.at;
        self.events_processed += 1;

        if let Some(actor) = self.actors.get_mut(next.to) {
            let mut ctx = Context {
                now: self.now,
                self_id: next.to,
                outbox: &mut self.outbox,
                stop: &mut self.stop,
            };
            actor.on_event(next.event, &mut ctx);
        }
        // Merge buffered effects into the queue (in emission order, so
        // same-time sends keep their relative order via `seq`). The outbox
        // is swapped out and back to reuse its capacity on the hot path.
        let mut drained = std::mem::take(&mut self.outbox);
        for (delay, to, event) in drained.drain(..) {
            let at = self.now + delay;
            let seq = self.seq;
            self.seq += 1;
            self.queue.push(Reverse(Scheduled { at, seq, to, event }));
        }
        self.outbox = drained;
        true
    }

    /// Run until the queue empties or an actor calls [`Context::stop`].
    /// Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until virtual time reaches `deadline` (events at exactly
    /// `deadline` are processed), the queue empties, or a stop is requested.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        loop {
            match self.queue.peek() {
                Some(Reverse(next)) if next.at <= deadline && !self.stop => {
                    self.step();
                }
                _ => break,
            }
        }
        // Advance the clock to the deadline even if no event landed on it,
        // so repeated `run_until` calls observe monotone time.
        if self.now < deadline && !self.stop {
            self.now = deadline;
        }
        self.now
    }

    /// True once a stop has been requested.
    pub fn stopped(&self) -> bool {
        self.stop
    }

    /// Clear a previous stop request so the run can be resumed.
    pub fn clear_stop(&mut self) {
        self.stop = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Forwards each received number to its peer, incremented, until the
    /// number reaches a limit.
    struct Counter {
        peer: ActorId,
        limit: u32,
        seen: Vec<u32>,
    }

    impl Actor<u32> for Counter {
        fn on_event(&mut self, event: Event<u32>, ctx: &mut Context<'_, u32>) {
            if let Event::Message { payload, .. } = event {
                self.seen.push(payload);
                if payload < self.limit {
                    ctx.send(self.peer, payload + 1, SimDuration::from_micros(100));
                } else {
                    ctx.stop();
                }
            }
        }
    }

    #[test]
    fn ping_pong_advances_time() {
        let mut sim = Simulation::new();
        // Ids are sequential, so the peers are known up front.
        let a = sim.add_actor(Counter { peer: 1, limit: 10, seen: vec![] });
        let b = sim.add_actor(Counter { peer: 0, limit: 10, seen: vec![] });
        sim.inject(a, 0, SimDuration::ZERO);
        let end = sim.run();
        // 0..=10 is 11 messages; 10 of them scheduled with 100 µs delay.
        assert_eq!(end.as_micros(), 1_000);
        let a_seen = &sim.actor::<Counter>(a).unwrap().seen;
        let b_seen = &sim.actor::<Counter>(b).unwrap().seen;
        assert_eq!(a_seen, &[0, 2, 4, 6, 8, 10]);
        assert_eq!(b_seen, &[1, 3, 5, 7, 9]);
    }

    struct Recorder {
        order: Vec<u32>,
    }
    impl Actor<u32> for Recorder {
        fn on_event(&mut self, event: Event<u32>, _ctx: &mut Context<'_, u32>) {
            if let Event::Message { payload, .. } = event {
                self.order.push(payload);
            }
        }
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut sim = Simulation::new();
        let r = sim.add_actor(Recorder { order: vec![] });
        for i in 0..50 {
            sim.inject(r, i, SimDuration::from_micros(10));
        }
        sim.run();
        let order = &sim.actor::<Recorder>(r).unwrap().order;
        assert_eq!(*order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new();
        let r = sim.add_actor(Recorder { order: vec![] });
        for i in 0..10u32 {
            sim.inject(r, i, SimDuration::from_secs(i as u64));
        }
        sim.run_until(SimTime::from_secs_f64(4.0));
        assert_eq!(sim.actor::<Recorder>(r).unwrap().order.len(), 5); // t=0..4 inclusive
        assert_eq!(sim.now().as_secs_f64(), 4.0);
        sim.run();
        assert_eq!(sim.actor::<Recorder>(r).unwrap().order.len(), 10);
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulation::<u32>::new();
        sim.run(); // drain (nothing)
        sim.run_until(SimTime::from_secs_f64(3.0));
        assert_eq!(sim.now().as_secs_f64(), 3.0);
    }

    #[test]
    fn stop_halts_processing_and_can_resume() {
        let mut sim = Simulation::new();
        let a = sim.add_actor(Counter { peer: 1, limit: 3, seen: vec![] });
        let _b = sim.add_actor(Counter { peer: 0, limit: 3, seen: vec![] });
        sim.inject(a, 0, SimDuration::ZERO);
        // Two extras queued behind the stop: one triggers another stop on
        // resume, proving the queue survived intact.
        sim.inject(a, 100, SimDuration::from_secs(100));
        sim.inject(a, 200, SimDuration::from_secs(200));
        sim.run();
        assert!(sim.stopped(), "payload 3 reached the limit and stopped");
        let processed = sim.events_processed();
        sim.clear_stop();
        sim.run();
        assert!(sim.events_processed() > processed, "resumed with queued events");
    }

    #[test]
    fn actor_downcast_wrong_type_is_none() {
        let mut sim = Simulation::<u32>::new();
        let r = sim.add_actor(Recorder { order: vec![] });
        assert!(sim.actor::<Counter>(r).is_none());
        assert!(sim.actor::<Recorder>(r).is_some());
        assert!(sim.actor::<Recorder>(99).is_none());
    }

    #[test]
    fn identical_runs_are_deterministic() {
        let run = || {
            let mut sim = Simulation::new();
            let a = sim.add_actor(Counter { peer: 1, limit: 20, seen: vec![] });
            let b = sim.add_actor(Counter { peer: 0, limit: 20, seen: vec![] });
            sim.inject(a, 0, SimDuration::ZERO);
            sim.inject(b, 5, SimDuration::from_micros(7));
            sim.run();
            (sim.now(), sim.events_processed(), sim.actor::<Counter>(a).unwrap().seen.clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn events_to_unknown_actor_are_dropped() {
        let mut sim = Simulation::<u32>::new();
        sim.inject(42, 1, SimDuration::ZERO);
        sim.run(); // must not panic
        assert_eq!(sim.events_processed(), 1);
    }
}

//! Actors, events, and the context actors use to affect the simulation.

use crate::time::{SimDuration, SimTime};

/// Index of an actor within a [`crate::Simulation`].
pub type ActorId = usize;

/// An occurrence delivered to an actor.
#[derive(Debug, Clone, PartialEq)]
pub enum Event<M> {
    /// Delivered once to every actor when the simulation starts (t = 0) or,
    /// for actors added after the run began, at the time of addition.
    Start,
    /// A message sent by another actor (or by the actor itself).
    Message {
        /// Sender's id.
        from: ActorId,
        /// The payload.
        payload: M,
    },
    /// A timer set earlier by this actor via [`Context::set_timer`].
    Timer {
        /// The tag passed to `set_timer`, so one actor can multiplex timers.
        tag: u64,
    },
}

/// A simulated entity. `M` is the simulation-wide message payload type.
pub trait Actor<M>: 'static {
    /// React to an event. All side effects go through `ctx`.
    fn on_event(&mut self, event: Event<M>, ctx: &mut Context<'_, M>);
}

/// One pending delivery in the event queue.
#[derive(Debug)]
pub(crate) struct Scheduled<M> {
    pub at: SimTime,
    pub seq: u64,
    pub to: ActorId,
    pub event: Event<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest time first; FIFO within a timestamp via the sequence
        // number. (The queue wraps this in `Reverse` for a min-heap.)
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Handle through which an actor inspects the clock and schedules effects.
///
/// Effects are buffered and merged into the event queue after the actor's
/// handler returns, which keeps dispatch deterministic and borrow-friendly.
pub struct Context<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) self_id: ActorId,
    pub(crate) outbox: &'a mut Vec<(SimDuration, ActorId, Event<M>)>,
    pub(crate) stop: &'a mut bool,
}

impl<'a, M> Context<'a, M> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the actor handling the current event.
    pub fn self_id(&self) -> ActorId {
        self.self_id
    }

    /// Deliver `payload` to actor `to` after `delay` (zero is allowed and
    /// preserves send order).
    pub fn send(&mut self, to: ActorId, payload: M, delay: SimDuration) {
        self.outbox.push((delay, to, Event::Message { from: self.self_id, payload }));
    }

    /// Deliver a [`Event::Timer`] with `tag` to this actor after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.outbox.push((delay, self.self_id, Event::Timer { tag }));
    }

    /// Request that the simulation stop after the current event completes.
    /// Remaining queued events are not processed (but stay queued).
    pub fn stop(&mut self) {
        *self.stop = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_orders_by_time_then_seq() {
        let a = Scheduled::<()> { at: SimTime::from_micros(5), seq: 2, to: 0, event: Event::Start };
        let b = Scheduled::<()> { at: SimTime::from_micros(5), seq: 3, to: 0, event: Event::Start };
        let c = Scheduled::<()> { at: SimTime::from_micros(9), seq: 1, to: 0, event: Event::Start };
        assert!(a < b, "same time orders by sequence");
        assert!(b < c, "earlier time wins regardless of sequence");
    }

    #[test]
    fn context_buffers_effects() {
        let mut outbox = Vec::new();
        let mut stop = false;
        let mut ctx =
            Context::<u32> { now: SimTime::ZERO, self_id: 7, outbox: &mut outbox, stop: &mut stop };
        ctx.send(3, 42, SimDuration::from_micros(10));
        ctx.set_timer(SimDuration::from_micros(5), 99);
        ctx.stop();
        assert_eq!(outbox.len(), 2);
        assert!(stop);
        match &outbox[0] {
            (d, 3, Event::Message { from: 7, payload: 42 }) => {
                assert_eq!(d.as_micros(), 10)
            }
            other => panic!("unexpected {other:?}"),
        }
        match &outbox[1] {
            (_, 7, Event::Timer { tag: 99 }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}

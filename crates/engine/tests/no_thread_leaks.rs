//! A default threaded run must leave no detached threads behind — no
//! `gates-watchdog` (it used to be spawned detached and leaked once per
//! run), no `gates-exec-*` pool workers, no `gates-timer` driver.
//!
//! This lives in its own single-test integration binary on purpose: the
//! assertion scans every thread in the process, so it cannot share a
//! process with tests that legitimately have pools running in parallel.

use bytes::Bytes;
use gates_core::{Packet, SourceStatus, StageApi, StageBuilder, StreamProcessor, Topology};
use gates_engine::{RunOptions, ThreadedEngine};
use gates_grid::{Deployer, ResourceRegistry};
use gates_net::LinkSpec;
use gates_sim::{SimDuration, SimTime};

/// Names of every live thread in this process (Linux).
fn live_thread_names() -> Vec<String> {
    let mut names = Vec::new();
    let Ok(tasks) = std::fs::read_dir("/proc/self/task") else {
        return names;
    };
    for task in tasks.flatten() {
        if let Ok(comm) = std::fs::read_to_string(task.path().join("comm")) {
            names.push(comm.trim().to_string());
        }
    }
    names
}

struct Burst(u32);
impl StreamProcessor for Burst {
    fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
        if self.0 == 0 {
            return SourceStatus::Done;
        }
        self.0 -= 1;
        api.emit(Packet::data(0, 0, 1, Bytes::from_static(b"x")));
        SourceStatus::Continue { next_poll: SimDuration::from_micros(100) }
    }
}

struct Sink;
impl StreamProcessor for Sink {
    fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
}

fn run_once(opts: RunOptions) {
    let mut t = Topology::new();
    let s = t.add_stage_raw(StageBuilder::new("src").processor(|| Burst(25))).unwrap();
    let k = t.add_stage(StageBuilder::new("sink").processor(|| Sink)).unwrap();
    t.connect(s, k, LinkSpec::local().blocking());
    let registry = ResourceRegistry::uniform_cluster(&["a", "b"]);
    let plan = Deployer::new().deploy(&t, &registry).unwrap();
    let report = ThreadedEngine::new(t, &plan, opts).unwrap().run().unwrap();
    assert_eq!(report.stage("sink").unwrap().packets_in, 25);
}

#[test]
fn runs_leave_no_engine_threads_behind() {
    if !std::path::Path::new("/proc/self/task").exists() {
        eprintln!("skipping: /proc scan is Linux-only");
        return;
    }
    // Clean finish on the pool, clean finish per-thread, and a
    // budget-stopped run (the watchdog actually fires): none may leak.
    run_once(RunOptions::default().max_time(SimTime::from_secs_f64(20.0)));
    run_once(RunOptions::default().max_time(SimTime::from_secs_f64(20.0)).thread_per_stage(true));
    run_once(RunOptions::default().max_time(SimTime::from_secs_f64(0.05)));

    let leaked: Vec<String> = live_thread_names()
        .into_iter()
        .filter(|n| {
            n.starts_with("gates-watchdog")
                || n.starts_with("gates-exec")
                || n.starts_with("gates-timer")
                || n.starts_with("gates-src")
                || n.starts_with("gates-sink")
        })
        .collect();
    assert!(leaked.is_empty(), "engine threads survived run(): {leaked:?}");
}

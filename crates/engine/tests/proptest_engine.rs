//! Property tests for the virtual-time engine: conservation and
//! determinism over randomly-shaped pipelines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use gates_core::{
    CostModel, Packet, SourceStatus, StageApi, StageBuilder, StreamProcessor, Topology,
};
use gates_engine::{DesEngine, RunOptions};
use gates_grid::{Deployer, ResourceRegistry};
use gates_net::{Bandwidth, LinkSpec};
use gates_sim::SimDuration;
use proptest::prelude::*;

struct Burst {
    left: u32,
    payload: usize,
    interval_us: u64,
}
impl StreamProcessor for Burst {
    fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
        if self.left == 0 {
            return SourceStatus::Done;
        }
        self.left -= 1;
        api.emit(Packet::data(0, self.left as u64, 1, Bytes::from(vec![0u8; self.payload])));
        SourceStatus::Continue { next_poll: SimDuration::from_micros(self.interval_us.max(1)) }
    }
}

struct Forward;
impl StreamProcessor for Forward {
    fn process(&mut self, p: Packet, api: &mut StageApi) {
        api.emit(p);
    }
}

struct Count(Arc<AtomicU64>);
impl StreamProcessor for Count {
    fn process(&mut self, _p: Packet, _a: &mut StageApi) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// A random linear pipeline description.
#[derive(Debug, Clone)]
struct Pipeline {
    packets: u32,
    payload: usize,
    interval_us: u64,
    hops: usize,
    bandwidth_kb: f64,
    cost_ms: f64,
    blocking: bool,
}

fn pipeline_strategy() -> impl Strategy<Value = Pipeline> {
    (1u32..60, 1usize..200, 100u64..20_000, 1usize..4, 1.0f64..1_000.0, 0.0f64..2.0, any::<bool>())
        .prop_map(|(packets, payload, interval_us, hops, bandwidth_kb, cost_ms, blocking)| {
            Pipeline { packets, payload, interval_us, hops, bandwidth_kb, cost_ms, blocking }
        })
}

fn run(p: &Pipeline) -> (u64, gates_core::report::RunReport) {
    let counter = Arc::new(AtomicU64::new(0));
    let mut t = Topology::new();
    let src = t
        .add_stage_raw(StageBuilder::new("src").processor({
            let p = p.clone();
            move || Burst { left: p.packets, payload: p.payload, interval_us: p.interval_us }
        }))
        .unwrap();
    let mut prev = src;
    for h in 0..p.hops {
        let fwd = t
            .add_stage(
                StageBuilder::new(format!("fwd{h}"))
                    .cost(CostModel::per_packet(p.cost_ms / 1_000.0))
                    .queue_capacity(1_000)
                    .processor(|| Forward),
            )
            .unwrap();
        let mut link = LinkSpec::with_bandwidth(Bandwidth::kb_per_sec(p.bandwidth_kb)).buffer(4);
        if p.blocking {
            link = link.blocking();
        }
        t.connect(prev, fwd, link);
        prev = fwd;
    }
    let sink_counter = Arc::clone(&counter);
    let sink = t
        .add_stage(
            StageBuilder::new("sink")
                .queue_capacity(1_000)
                .processor(move || Count(Arc::clone(&sink_counter))),
        )
        .unwrap();
    let mut link = LinkSpec::with_bandwidth(Bandwidth::kb_per_sec(p.bandwidth_kb)).buffer(4);
    if p.blocking {
        link = link.blocking();
    }
    t.connect(prev, sink, link);

    let sites: Vec<String> = t.stages().iter().map(|s| s.site.clone()).collect();
    let refs: Vec<&str> = sites.iter().map(String::as_str).collect();
    let registry = ResourceRegistry::uniform_cluster(&refs);
    let plan = Deployer::new().deploy(&t, &registry).unwrap();
    let mut engine = DesEngine::new(t, &plan, RunOptions::default()).unwrap();
    let report = engine.run_to_completion();
    (counter.load(Ordering::Relaxed), report)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pipelines_conserve_packets(p in pipeline_strategy()) {
        let (delivered, report) = run(&p);
        // Queues are deep (1000 ≫ 60 packets) so nothing may drop,
        // regardless of flow-control mode.
        prop_assert_eq!(report.total_dropped(), 0, "no drops with deep queues");
        prop_assert_eq!(delivered, p.packets as u64, "every packet reaches the sink");
        let sink = report.stage("sink").unwrap();
        prop_assert_eq!(sink.packets_in, p.packets as u64);
        // The run can never beat the serialization lower bound of one hop.
        let wire = p.packets as u64 * (p.payload as u64 + 33);
        let min_secs = wire as f64 / (p.bandwidth_kb * 1_000.0);
        prop_assert!(
            report.execution_secs() >= min_secs * 0.99,
            "finished in {} < bandwidth bound {min_secs}",
            report.execution_secs()
        );
    }

    #[test]
    fn runs_are_deterministic(p in pipeline_strategy()) {
        let (d1, r1) = run(&p);
        let (d2, r2) = run(&p);
        prop_assert_eq!(d1, d2);
        prop_assert_eq!(r1.finished_at, r2.finished_at);
        prop_assert_eq!(r1.events, r2.events);
    }

    #[test]
    fn latency_accounting_is_sane(p in pipeline_strategy()) {
        let (_, report) = run(&p);
        let sink = report.stage("sink").unwrap();
        if sink.latency.count() > 0 {
            prop_assert!(sink.latency.min() >= 0.0);
            prop_assert!(sink.latency.max() <= report.execution_secs() + 1e-6);
        }
    }
}

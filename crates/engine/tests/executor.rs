//! Regression tests for the work-stealing stage executor: every former
//! blocking wait (source `next_poll`, token-bucket pacing) must honor
//! the run budget, and the pool scheduler must deliver exactly the same
//! packets as the thread-per-stage baseline it replaced.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use gates_core::report::RunReport;
use gates_core::{
    CostModel, Packet, SourceStatus, StageApi, StageBuilder, StreamProcessor, Topology,
};
use gates_engine::{RunOptions, ThreadedEngine};
use gates_grid::{Deployer, ResourceRegistry};
use gates_net::{Bandwidth, LinkSpec};
use gates_sim::{SimDuration, SimTime};

struct Sink;
impl StreamProcessor for Sink {
    fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
}

fn deploy_and_run(t: Topology, opts: RunOptions) -> RunReport {
    let sites: Vec<String> = (0..t.stages().len()).map(|i| format!("s{i}")).collect();
    let site_refs: Vec<&str> = sites.iter().map(String::as_str).collect();
    let registry = ResourceRegistry::uniform_cluster(&site_refs);
    let plan = Deployer::new().deploy(&t, &registry).unwrap();
    ThreadedEngine::new(t, &plan, opts).unwrap().run().unwrap()
}

/// The pre-executor source loop slept the whole `next_poll` interval in
/// one go, deaf to the stop flag: a 30-second poll delay held the run
/// hostage long past its budget. The executor parks in tick-bounded
/// slices, so the watchdog's stop takes effect within one tick.
#[test]
fn slow_poll_source_stops_within_budget() {
    struct Glacial;
    impl StreamProcessor for Glacial {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
        fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
            api.emit(Packet::data(0, 0, 1, Bytes::from_static(b"tick")));
            SourceStatus::Continue { next_poll: SimDuration::from_secs(30) }
        }
    }
    let mut t = Topology::new();
    let s = t.add_stage_raw(StageBuilder::new("src").processor(|| Glacial)).unwrap();
    let k = t.add_stage(StageBuilder::new("sink").processor(|| Sink)).unwrap();
    t.connect(s, k, LinkSpec::local().blocking());

    let t0 = Instant::now();
    let report = deploy_and_run(t, RunOptions::default().max_time(SimTime::from_secs_f64(0.3)));
    let elapsed = t0.elapsed().as_secs_f64();
    assert!(elapsed < 5.0, "mid-poll stop must not wait out next_poll, took {elapsed}s");
    assert!(report.stage("sink").unwrap().packets_in >= 1);
}

/// The pre-executor flush slept the token bucket's full pacing delay in
/// one go: a slow link with a large packet could sleep for minutes
/// after the budget expired. Pacing waits are now tick-bounded parks
/// and a stopping stage skips pacing entirely.
#[test]
fn throttled_flush_stops_within_budget() {
    struct BigBurst;
    impl StreamProcessor for BigBurst {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
        fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
            // ~64 KiB packets onto a 1 KB/s link: each one owes the
            // bucket about a minute of pacing.
            api.emit(Packet::data(0, 0, 1, Bytes::from(vec![7u8; 64 * 1024])));
            SourceStatus::Continue { next_poll: SimDuration::from_micros(100) }
        }
    }
    let mut t = Topology::new();
    let s = t.add_stage_raw(StageBuilder::new("src").processor(|| BigBurst)).unwrap();
    let k = t.add_stage(StageBuilder::new("sink").processor(|| Sink)).unwrap();
    t.connect(s, k, LinkSpec::with_bandwidth(Bandwidth::kb_per_sec(1.0)).blocking());

    let t0 = Instant::now();
    deploy_and_run(t, RunOptions::default().max_time(SimTime::from_secs_f64(0.3)));
    let elapsed = t0.elapsed().as_secs_f64();
    assert!(elapsed < 5.0, "mid-pacing stop must not wait out the bucket, took {elapsed}s");
}

struct Burst(u64);
impl StreamProcessor for Burst {
    fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
        if self.0 == 0 {
            return SourceStatus::Done;
        }
        self.0 -= 1;
        api.emit(Packet::data(0, self.0, 1, Bytes::from_static(&[3u8; 64])));
        SourceStatus::Continue { next_poll: SimDuration::from_micros(200) }
    }
}

struct Relay;
impl StreamProcessor for Relay {
    fn process(&mut self, p: Packet, api: &mut StageApi) {
        api.emit(p);
    }
}

fn wide_pipeline(packets: u64, delivered: &Arc<AtomicU64>) -> Topology {
    let mut t = Topology::new();
    let src = t.add_stage_raw(StageBuilder::new("src").processor(move || Burst(packets))).unwrap();
    let mut prev = src;
    for i in 0..16 {
        let stage = t
            .add_stage(
                StageBuilder::new(format!("relay-{i}"))
                    .processor(|| Relay)
                    .cost(CostModel::per_packet(1e-4))
                    .queue_capacity(16),
            )
            .unwrap();
        t.connect(prev, stage, LinkSpec::local().blocking());
        prev = stage;
    }
    struct Counting(Arc<AtomicU64>);
    impl StreamProcessor for Counting {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }
    }
    let count = Arc::clone(delivered);
    let sink = t
        .add_stage(StageBuilder::new("sink").processor(move || Counting(Arc::clone(&count))))
        .unwrap();
    t.connect(prev, sink, LinkSpec::local().blocking());
    t
}

/// A 16-stage pipeline on a 4-core pool must deliver packet-for-packet
/// what the thread-per-stage baseline delivers: same per-stage in/out
/// counts, nothing dropped, despite 18 stages sharing 4 workers.
#[test]
fn four_core_pool_matches_thread_per_stage_packet_counts() {
    let packets = 50u64;

    let pool_delivered = Arc::new(AtomicU64::new(0));
    let pool_report = deploy_and_run(
        wide_pipeline(packets, &pool_delivered),
        RunOptions::default().max_time(SimTime::from_secs_f64(30.0)).cores(4),
    );

    let base_delivered = Arc::new(AtomicU64::new(0));
    let base_report = deploy_and_run(
        wide_pipeline(packets, &base_delivered),
        RunOptions::default().max_time(SimTime::from_secs_f64(30.0)).thread_per_stage(true),
    );

    assert_eq!(pool_delivered.load(Ordering::Relaxed), packets);
    assert_eq!(base_delivered.load(Ordering::Relaxed), packets);
    assert_eq!(pool_report.total_dropped(), 0);
    assert_eq!(base_report.total_dropped(), 0);
    for report in [&pool_report, &base_report] {
        for i in 0..16 {
            let relay = report.stage(&format!("relay-{i}")).unwrap();
            assert_eq!(relay.packets_in, packets, "relay-{i} in");
            assert_eq!(relay.packets_out, packets, "relay-{i} out");
        }
        assert_eq!(report.stage("sink").unwrap().packets_in, packets);
    }
    // The pool run reports its activation count as the engine's event
    // total; the baseline has no executor and reports zero.
    assert!(pool_report.events > 0, "pool runs report activations");
    assert_eq!(base_report.events, 0);
}

//! Wire protocol of the distributed runtime.
//!
//! Every message is one [`gates_net::Frame`]. Stream data travels as the
//! packet's own frame (kind `Data`/`Summary`/`Eos`, produced by
//! [`gates_core::Packet::to_frame`]); everything else is a `Control`
//! frame whose payload starts with a one-byte message tag, or an
//! `Exception` frame whose payload is the one-byte load-exception kind.
//! Encodings use the fixed-width big-endian [`PayloadWriter`] /
//! [`PayloadReader`] primitives shared with application payloads.

use bytes::Bytes;

use gates_core::adapt::LoadException;
use gates_core::report::{ParamTrajectory, StageReport};
use gates_core::trace::{AdaptRound, LinkEvent, LinkEventKind, RunMeta, StageSample, TraceEvent};
use gates_core::{CoreError, PayloadReader, PayloadWriter};
use gates_net::{Frame, FrameKind};
use gates_sim::stats::Welford;
use gates_sim::SimDuration;

use super::DistConfig;
use crate::runtime::EdgeCursors;
use gates_net::RetryPolicy;
use std::time::Duration;

/// A stage checkpoint as the coordinator stores it, keyed by stage
/// elsewhere: `(seq, crc, state, cursors)` — input-packet sequence at
/// snapshot time, CRC32 of the state bytes, the opaque processor
/// snapshot, and the per-input-edge delivery cursors recorded with it.
pub(crate) type CheckpointEntry = (u64, u32, Vec<u8>, EdgeCursors);

/// A stage checkpoint on the wire, in a [`CtrlMsg::Reassign`]:
/// `(stage, seq, crc, state, cursors)` — a [`CheckpointEntry`] prefixed
/// with the global stage index it belongs to.
pub(crate) type StageCheckpoint = (u32, u64, u32, Vec<u8>, EdgeCursors);

const TAG_HELLO: u8 = 1;
const TAG_ASSIGN: u8 = 2;
const TAG_READY: u8 = 3;
const TAG_START: u8 = 4;
const TAG_REPORT: u8 = 5;
const TAG_TRACE: u8 = 6;
const TAG_EDGE_HELLO: u8 = 7;
const TAG_STOP: u8 = 8;
const TAG_HEARTBEAT: u8 = 9;
const TAG_CHECKPOINT: u8 = 10;
const TAG_REJECT: u8 = 11;
const TAG_REASSIGN: u8 = 12;
const TAG_SHARD_REQUEST: u8 = 13;
const TAG_SHARD_UPDATE: u8 = 14;

/// One row of the coordinator's placement table, shipped to every worker
/// so senders can resolve remote endpoints without further round-trips.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StagePlacement {
    /// Stage index in topology order.
    pub(crate) stage: u32,
    /// Hosting worker's name.
    pub(crate) worker: String,
    /// Hosting worker's data endpoint (`host:port`).
    pub(crate) endpoint: String,
    /// Speed factor of the hosting node.
    pub(crate) speed: f64,
}

/// The deployment a worker receives: the full application config plus
/// where every stage (its own and everyone else's) runs.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AssignMsg {
    /// The application XML, re-parsed by the worker against its local
    /// application repository.
    pub(crate) app_xml: String,
    /// Observation interval, microseconds.
    pub(crate) observe_us: u64,
    /// Adaptation interval, microseconds.
    pub(crate) adapt_us: u64,
    /// Modeled control latency, microseconds.
    pub(crate) control_latency_us: u64,
    /// Run budget, microseconds.
    pub(crate) max_time_us: u64,
    /// Whether the worker should stream trace events back.
    pub(crate) trace: bool,
    /// Placement row per stage, in stage order.
    pub(crate) placements: Vec<StagePlacement>,
    /// Stage indexes this worker hosts.
    pub(crate) my_stages: Vec<u32>,
    /// Transport tuning, shared by every process in the run.
    pub(crate) config: DistConfig,
}

/// A control-plane message.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum CtrlMsg {
    /// Worker → coordinator: registration.
    Hello {
        /// Worker name (unique per run).
        name: String,
        /// Where the worker accepts data connections.
        data_addr: String,
        /// Optional placement-site label.
        site: Option<String>,
        /// Node speed factor.
        speed: f64,
        /// Stage-hosting capacity.
        capacity: u32,
    },
    /// Coordinator → worker: the deployment.
    Assign(Box<AssignMsg>),
    /// Worker → coordinator: topology built, data plane wired.
    Ready {
        /// Worker name.
        name: String,
    },
    /// Coordinator → worker: begin execution.
    Start,
    /// Worker → coordinator: final per-stage statistics.
    Report {
        /// Worker name.
        worker: String,
        /// Reports for the worker's stages, in its `my_stages` order.
        stages: Vec<StageReport>,
        /// Frames this worker's links gave up on (redial exhaustion,
        /// retention skips) — summed into `RunReport::packets_lost`.
        lost: u64,
        /// Frames this worker's senders re-transmitted (reconnect
        /// replay and gap NAKs).
        replayed: u64,
        /// Duplicate frames this worker's receivers discarded by edge
        /// sequence number.
        deduped: u64,
        /// Microseconds this worker's senders spent stalled on a full
        /// ack credit window.
        stalled_us: u64,
    },
    /// Worker → coordinator: one live flight-recorder event.
    Trace(TraceEvent),
    /// Sender worker → receiver worker, first frame on a data socket:
    /// which topology edge this connection carries.
    EdgeHello {
        /// Global edge index.
        edge: u32,
        /// Sender incarnation: `0` for the sender instance created at run
        /// start, or the failover epoch that created it (an adopted
        /// stage's re-emitting sender). A receiver that sees a *new*
        /// incarnation resets its delivery cursor to zero — the fresh
        /// sender instance numbers its frames from 1 — while a plain
        /// reconnect of the same instance keeps the cursor so replayed
        /// frames dedup.
        incarnation: u64,
    },
    /// Coordinator → worker: abort/stop the run.
    Stop,
    /// Worker → coordinator: periodic liveness signal, sent every
    /// [`DistConfig::heartbeat_interval`] once the run has started.
    Heartbeat {
        /// Worker name.
        name: String,
    },
    /// Worker → coordinator: a stage's state snapshot, taken every
    /// [`DistConfig::checkpoint_every`] input packets. The coordinator
    /// keeps only the newest checkpoint per stage and ships it back out
    /// during failover.
    Checkpoint {
        /// Stage index in topology order.
        stage: u32,
        /// Number of input packets the stage had consumed when the
        /// snapshot was taken (monotonic per stage).
        seq: u64,
        /// CRC-32 of `state`, computed when the snapshot was taken. The
        /// coordinator and any adopting worker verify it before trusting
        /// the bytes; a mismatch discards the checkpoint rather than
        /// restoring garbage into a stage.
        crc: u32,
        /// Opaque state bytes from [`gates_core::StreamProcessor::snapshot`].
        state: Vec<u8>,
        /// Per-input-edge delivery cursors at snapshot time:
        /// `(edge, highest link sequence number folded into `state`)`.
        /// During failover the adopting worker installs these so its
        /// receivers dedup the pre-snapshot prefix, and the re-dialing
        /// upstream senders replay exactly the unconsumed tail.
        cursors: Vec<(u32, u64)>,
    },
    /// Coordinator → worker: registration refused (malformed hello,
    /// duplicate name, ...). The worker should report the reason and exit
    /// rather than retry.
    Reject {
        /// Human-readable refusal reason.
        reason: String,
    },
    /// Coordinator → every surviving worker: a lost worker's stages have
    /// new homes. `placements` holds only the *changed* rows; each
    /// receiver updates its endpoint table, and the worker named in a row
    /// adopts that stage, restoring from the paired checkpoint if one
    /// exists.
    Reassign {
        /// Failover generation: the coordinator increments this on every
        /// reassignment it broadcasts. Workers remember the highest epoch
        /// they have applied and idempotently discard duplicates and
        /// stale reorderings (epoch ≤ last applied).
        epoch: u64,
        /// Updated placement rows (changed stages only).
        placements: Vec<StagePlacement>,
        /// Last known checkpoint per reassigned stage:
        /// `(stage, seq, crc, state, cursors)` with `cursors` the
        /// per-input-edge delivery cursors recorded alongside the
        /// snapshot. Stages without an entry restart fresh; an entry
        /// whose CRC does not match its bytes is treated the same
        /// (restart fresh) rather than restoring garbage.
        checkpoints: Vec<StageCheckpoint>,
    },
    /// Worker → coordinator: a replica's adaptation loop wants its shard
    /// split (overload) or merged away (underload). The coordinator owns
    /// the authoritative shard map, applies the change there, and
    /// broadcasts the result as a [`CtrlMsg::ShardUpdate`]; the worker
    /// changes nothing locally until that update arrives.
    ShardRequest {
        /// Replica group index in the topology.
        group: u32,
        /// Requesting replica's ordinal within the group.
        ordinal: u32,
        /// True to split the replica's range, false to merge it away.
        split: bool,
    },
    /// Coordinator → every worker: a replica group's new shard map.
    /// Workers install it into the group's local router epoch-guarded
    /// ([`gates_core::ShardRouter::install`]), so duplicates and
    /// out-of-order deliveries are no-ops.
    ShardUpdate {
        /// Replica group index in the topology.
        group: u32,
        /// Map epoch after the change (strictly increasing per group).
        epoch: u64,
        /// The map, encoded by [`gates_core::ShardMap::encode`].
        map: Vec<u8>,
    },
}

fn put_str(w: &mut PayloadWriter, s: &str) {
    w.put_u32(s.len() as u32);
    w.put_bytes(s.as_bytes());
}

fn get_str(r: &mut PayloadReader) -> Result<String, CoreError> {
    let len = r.get_u32()? as usize;
    let bytes = r.get_bytes(len)?;
    // `into_vec` reclaims the allocation when this view is the last
    // owner (the common case for a frame decoded into a fresh payload),
    // so the bytes move into the String instead of being copied twice.
    String::from_utf8(bytes.into_vec())
        .map_err(|e| CoreError::PayloadDecode(format!("invalid utf-8 string: {e}")))
}

fn put_opt_str(w: &mut PayloadWriter, s: &Option<String>) {
    match s {
        Some(s) => {
            w.put_bytes(&[1]);
            put_str(w, s);
        }
        None => {
            w.put_bytes(&[0]);
        }
    }
}

fn get_opt_str(r: &mut PayloadReader) -> Result<Option<String>, CoreError> {
    Ok(if r.get_u8()? == 1 { Some(get_str(r)?) } else { None })
}

fn put_cursors(w: &mut PayloadWriter, cursors: &[(u32, u64)]) {
    w.put_u32(cursors.len() as u32);
    for &(edge, cursor) in cursors {
        w.put_u32(edge);
        w.put_u64(cursor);
    }
}

fn get_cursors(r: &mut PayloadReader) -> Result<Vec<(u32, u64)>, CoreError> {
    let n = r.get_u32()? as usize;
    let mut cursors = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        cursors.push((r.get_u32()?, r.get_u64()?));
    }
    Ok(cursors)
}

fn put_welford(w: &mut PayloadWriter, s: &Welford) {
    w.put_u64(s.count());
    w.put_f64(s.mean());
    w.put_f64(s.m2());
    w.put_f64(s.min());
    w.put_f64(s.max());
}

fn get_welford(r: &mut PayloadReader) -> Result<Welford, CoreError> {
    let count = r.get_u64()?;
    let mean = r.get_f64()?;
    let m2 = r.get_f64()?;
    let min = r.get_f64()?;
    let max = r.get_f64()?;
    Ok(Welford::from_parts(count, mean, m2, min, max))
}

fn put_stage_report(w: &mut PayloadWriter, s: &StageReport) {
    put_str(w, &s.name);
    put_str(w, &s.placed_on);
    w.put_u64(s.packets_in);
    w.put_u64(s.packets_out);
    w.put_u64(s.records_in);
    w.put_u64(s.records_out);
    w.put_u64(s.bytes_in);
    w.put_u64(s.bytes_out);
    w.put_u64(s.packets_dropped);
    put_welford(w, &s.queue);
    put_welford(w, &s.latency);
    w.put_u64(s.busy_time.as_micros());
    w.put_u64(s.exceptions_sent.0);
    w.put_u64(s.exceptions_sent.1);
    w.put_u64(s.exceptions_received.0);
    w.put_u64(s.exceptions_received.1);
    w.put_u32(s.params.len() as u32);
    for p in &s.params {
        put_str(w, &p.name);
        w.put_u32(p.samples.len() as u32);
        for &(t, v) in &p.samples {
            w.put_f64(t);
            w.put_f64(v);
        }
    }
}

fn get_stage_report(r: &mut PayloadReader) -> Result<StageReport, CoreError> {
    let name = get_str(r)?;
    let placed_on = get_str(r)?;
    let packets_in = r.get_u64()?;
    let packets_out = r.get_u64()?;
    let records_in = r.get_u64()?;
    let records_out = r.get_u64()?;
    let bytes_in = r.get_u64()?;
    let bytes_out = r.get_u64()?;
    let packets_dropped = r.get_u64()?;
    let queue = get_welford(r)?;
    let latency = get_welford(r)?;
    let busy_time = SimDuration::from_micros(r.get_u64()?);
    let exceptions_sent = (r.get_u64()?, r.get_u64()?);
    let exceptions_received = (r.get_u64()?, r.get_u64()?);
    let n_params = r.get_u32()? as usize;
    let mut params = Vec::with_capacity(n_params.min(1024));
    for _ in 0..n_params {
        let pname = get_str(r)?;
        let n_samples = r.get_u32()? as usize;
        let mut samples = Vec::with_capacity(n_samples.min(65_536));
        for _ in 0..n_samples {
            let t = r.get_f64()?;
            let v = r.get_f64()?;
            samples.push((t, v));
        }
        params.push(ParamTrajectory { name: pname, samples });
    }
    Ok(StageReport {
        name,
        placed_on,
        packets_in,
        packets_out,
        records_in,
        records_out,
        bytes_in,
        bytes_out,
        packets_dropped,
        queue,
        latency,
        busy_time,
        exceptions_sent,
        exceptions_received,
        params,
    })
}

fn put_trace_event(w: &mut PayloadWriter, e: &TraceEvent) {
    match e {
        TraceEvent::Meta(m) => {
            w.put_bytes(&[0]);
            put_str(w, &m.engine);
            w.put_u32(m.placements.len() as u32);
            for (stage, node) in &m.placements {
                put_str(w, stage);
                put_str(w, node);
            }
        }
        TraceEvent::Sample(s) => {
            w.put_bytes(&[1]);
            w.put_f64(s.t);
            put_str(w, &s.stage);
            w.put_u64(s.queue_depth as u64);
            w.put_u64(s.packets_in);
            w.put_u64(s.packets_out);
            w.put_u64(s.dropped);
            w.put_f64(s.throughput);
            w.put_f64(s.service_time);
            w.put_f64(s.bucket_wait);
        }
        TraceEvent::Adapt(a) => {
            w.put_bytes(&[2]);
            w.put_f64(a.t);
            put_str(w, &a.stage);
            put_str(w, &a.param);
            put_str(w, &a.policy);
            for v in [a.d_tilde, a.phi1, a.phi2, a.phi3, a.sigma1, a.sigma2, a.suggested] {
                w.put_f64(v);
            }
            for v in [a.overload_sent, a.underload_sent, a.overload_received, a.underload_received]
            {
                w.put_u64(v);
            }
        }
        TraceEvent::Link(l) => {
            w.put_bytes(&[3]);
            w.put_f64(l.t);
            put_str(w, &l.link);
            put_str(w, &l.node);
            w.put_bytes(&[link_kind_to_u8(l.kind)]);
            put_str(w, &l.detail);
        }
    }
}

fn link_kind_to_u8(k: LinkEventKind) -> u8 {
    match k {
        LinkEventKind::Connected => 0,
        LinkEventKind::Reconnecting => 1,
        LinkEventKind::Reconnected => 2,
        LinkEventKind::Dead => 3,
        LinkEventKind::CrcDrop => 4,
        LinkEventKind::PeerEof => 5,
        LinkEventKind::Drained => 6,
        LinkEventKind::WorkerLost => 7,
        LinkEventKind::Reassigned => 8,
        LinkEventKind::Restored => 9,
        LinkEventKind::Resumed => 10,
        LinkEventKind::Rejected => 11,
        LinkEventKind::FaultInjected => 12,
        LinkEventKind::StaleDiscarded => 13,
        LinkEventKind::CheckpointCorrupt => 14,
        LinkEventKind::ReconnectExhausted => 15,
        LinkEventKind::ShardSplit => 16,
        LinkEventKind::ShardMerge => 17,
        LinkEventKind::Misrouted => 18,
        LinkEventKind::Acked => 19,
        LinkEventKind::Replayed => 20,
        LinkEventKind::Deduped => 21,
        LinkEventKind::Stalled => 22,
        LinkEventKind::Skipped => 23,
    }
}

fn link_kind_from_u8(v: u8) -> Result<LinkEventKind, CoreError> {
    Ok(match v {
        0 => LinkEventKind::Connected,
        1 => LinkEventKind::Reconnecting,
        2 => LinkEventKind::Reconnected,
        3 => LinkEventKind::Dead,
        4 => LinkEventKind::CrcDrop,
        5 => LinkEventKind::PeerEof,
        6 => LinkEventKind::Drained,
        7 => LinkEventKind::WorkerLost,
        8 => LinkEventKind::Reassigned,
        9 => LinkEventKind::Restored,
        10 => LinkEventKind::Resumed,
        11 => LinkEventKind::Rejected,
        12 => LinkEventKind::FaultInjected,
        13 => LinkEventKind::StaleDiscarded,
        14 => LinkEventKind::CheckpointCorrupt,
        15 => LinkEventKind::ReconnectExhausted,
        16 => LinkEventKind::ShardSplit,
        17 => LinkEventKind::ShardMerge,
        18 => LinkEventKind::Misrouted,
        19 => LinkEventKind::Acked,
        20 => LinkEventKind::Replayed,
        21 => LinkEventKind::Deduped,
        22 => LinkEventKind::Stalled,
        23 => LinkEventKind::Skipped,
        other => return Err(CoreError::PayloadDecode(format!("bad link event kind {other}"))),
    })
}

fn get_trace_event(r: &mut PayloadReader) -> Result<TraceEvent, CoreError> {
    Ok(match r.get_u8()? {
        0 => {
            let engine = get_str(r)?;
            let n = r.get_u32()? as usize;
            let mut placements = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                placements.push((get_str(r)?, get_str(r)?));
            }
            TraceEvent::Meta(RunMeta { engine, placements })
        }
        1 => TraceEvent::Sample(StageSample {
            t: r.get_f64()?,
            stage: get_str(r)?,
            queue_depth: r.get_u64()? as usize,
            packets_in: r.get_u64()?,
            packets_out: r.get_u64()?,
            dropped: r.get_u64()?,
            throughput: r.get_f64()?,
            service_time: r.get_f64()?,
            bucket_wait: r.get_f64()?,
        }),
        2 => TraceEvent::Adapt(AdaptRound {
            t: r.get_f64()?,
            stage: get_str(r)?,
            param: get_str(r)?,
            policy: get_str(r)?,
            d_tilde: r.get_f64()?,
            phi1: r.get_f64()?,
            phi2: r.get_f64()?,
            phi3: r.get_f64()?,
            sigma1: r.get_f64()?,
            sigma2: r.get_f64()?,
            suggested: r.get_f64()?,
            overload_sent: r.get_u64()?,
            underload_sent: r.get_u64()?,
            overload_received: r.get_u64()?,
            underload_received: r.get_u64()?,
        }),
        3 => TraceEvent::Link(LinkEvent {
            t: r.get_f64()?,
            link: get_str(r)?,
            node: get_str(r)?,
            kind: link_kind_from_u8(r.get_u8()?)?,
            detail: get_str(r)?,
        }),
        other => return Err(CoreError::PayloadDecode(format!("bad trace event tag {other}"))),
    })
}

fn put_config(w: &mut PayloadWriter, c: &DistConfig) {
    w.put_u64(c.connect_timeout.as_micros() as u64);
    w.put_u64(c.read_timeout.as_micros() as u64);
    w.put_u32(c.retry.max_attempts);
    w.put_u64(c.retry.base_delay.as_micros() as u64);
    w.put_u64(c.retry.max_delay.as_micros() as u64);
    w.put_u64(c.drain_window.as_micros() as u64);
    w.put_u64(c.report_grace.as_micros() as u64);
    w.put_u64(c.heartbeat_interval.as_micros() as u64);
    w.put_u64(c.heartbeat_timeout.as_micros() as u64);
    w.put_u64(c.checkpoint_every);
    w.put_u64(c.max_redial.as_micros() as u64);
    // The fault plan ships as its canonical spec string: compact, and
    // the parser is the single source of truth for its grammar.
    put_opt_str(w, &c.fault.as_ref().map(|f| f.to_spec()));
    w.put_u64(c.ack_window as u64);
    w.put_u64(c.replay_retain as u64);
}

fn get_config(r: &mut PayloadReader) -> Result<DistConfig, CoreError> {
    Ok(DistConfig {
        connect_timeout: Duration::from_micros(r.get_u64()?),
        read_timeout: Duration::from_micros(r.get_u64()?),
        retry: RetryPolicy {
            max_attempts: r.get_u32()?,
            base_delay: Duration::from_micros(r.get_u64()?),
            max_delay: Duration::from_micros(r.get_u64()?),
        },
        drain_window: Duration::from_micros(r.get_u64()?),
        report_grace: Duration::from_micros(r.get_u64()?),
        heartbeat_interval: Duration::from_micros(r.get_u64()?),
        heartbeat_timeout: Duration::from_micros(r.get_u64()?),
        checkpoint_every: r.get_u64()?,
        max_redial: Duration::from_micros(r.get_u64()?),
        fault: match get_opt_str(r)? {
            Some(spec) => Some(
                gates_net::FaultPlan::parse(&spec)
                    .map_err(|e| CoreError::PayloadDecode(format!("bad fault spec: {e}")))?,
            ),
            None => None,
        },
        ack_window: r.get_u64()? as usize,
        replay_retain: r.get_u64()? as usize,
    })
}

/// Encode a control message into a `Control` frame.
pub(crate) fn encode_ctrl(msg: &CtrlMsg) -> Frame {
    let mut w = PayloadWriter::new();
    match msg {
        CtrlMsg::Hello { name, data_addr, site, speed, capacity } => {
            w.put_bytes(&[TAG_HELLO]);
            put_str(&mut w, name);
            put_str(&mut w, data_addr);
            put_opt_str(&mut w, site);
            w.put_f64(*speed);
            w.put_u32(*capacity);
        }
        CtrlMsg::Assign(a) => {
            w.put_bytes(&[TAG_ASSIGN]);
            put_str(&mut w, &a.app_xml);
            w.put_u64(a.observe_us);
            w.put_u64(a.adapt_us);
            w.put_u64(a.control_latency_us);
            w.put_u64(a.max_time_us);
            w.put_bytes(&[a.trace as u8]);
            w.put_u32(a.placements.len() as u32);
            for p in &a.placements {
                w.put_u32(p.stage);
                put_str(&mut w, &p.worker);
                put_str(&mut w, &p.endpoint);
                w.put_f64(p.speed);
            }
            w.put_u32(a.my_stages.len() as u32);
            for &s in &a.my_stages {
                w.put_u32(s);
            }
            put_config(&mut w, &a.config);
        }
        CtrlMsg::Ready { name } => {
            w.put_bytes(&[TAG_READY]);
            put_str(&mut w, name);
        }
        CtrlMsg::Start => {
            w.put_bytes(&[TAG_START]);
        }
        CtrlMsg::Report { worker, stages, lost, replayed, deduped, stalled_us } => {
            w.put_bytes(&[TAG_REPORT]);
            put_str(&mut w, worker);
            w.put_u64(*lost);
            w.put_u64(*replayed);
            w.put_u64(*deduped);
            w.put_u64(*stalled_us);
            w.put_u32(stages.len() as u32);
            for s in stages {
                put_stage_report(&mut w, s);
            }
        }
        CtrlMsg::Trace(e) => {
            w.put_bytes(&[TAG_TRACE]);
            put_trace_event(&mut w, e);
        }
        CtrlMsg::EdgeHello { edge, incarnation } => {
            w.put_bytes(&[TAG_EDGE_HELLO]);
            w.put_u32(*edge);
            w.put_u64(*incarnation);
        }
        CtrlMsg::Stop => {
            w.put_bytes(&[TAG_STOP]);
        }
        CtrlMsg::Heartbeat { name } => {
            w.put_bytes(&[TAG_HEARTBEAT]);
            put_str(&mut w, name);
        }
        CtrlMsg::Checkpoint { stage, seq, crc, state, cursors } => {
            w.put_bytes(&[TAG_CHECKPOINT]);
            w.put_u32(*stage);
            w.put_u64(*seq);
            w.put_u32(*crc);
            w.put_u32(state.len() as u32);
            w.put_bytes(state);
            put_cursors(&mut w, cursors);
        }
        CtrlMsg::Reject { reason } => {
            w.put_bytes(&[TAG_REJECT]);
            put_str(&mut w, reason);
        }
        CtrlMsg::Reassign { epoch, placements, checkpoints } => {
            w.put_bytes(&[TAG_REASSIGN]);
            w.put_u64(*epoch);
            w.put_u32(placements.len() as u32);
            for p in placements {
                w.put_u32(p.stage);
                put_str(&mut w, &p.worker);
                put_str(&mut w, &p.endpoint);
                w.put_f64(p.speed);
            }
            w.put_u32(checkpoints.len() as u32);
            for (stage, seq, crc, state, cursors) in checkpoints {
                w.put_u32(*stage);
                w.put_u64(*seq);
                w.put_u32(*crc);
                w.put_u32(state.len() as u32);
                w.put_bytes(state);
                put_cursors(&mut w, cursors);
            }
        }
        CtrlMsg::ShardRequest { group, ordinal, split } => {
            w.put_bytes(&[TAG_SHARD_REQUEST]);
            w.put_u32(*group);
            w.put_u32(*ordinal);
            w.put_bytes(&[*split as u8]);
        }
        CtrlMsg::ShardUpdate { group, epoch, map } => {
            w.put_bytes(&[TAG_SHARD_UPDATE]);
            w.put_u32(*group);
            w.put_u64(*epoch);
            w.put_u32(map.len() as u32);
            w.put_bytes(map);
        }
    }
    Frame { kind: FrameKind::Control, stream_id: 0, seq: 0, payload: w.finish() }
}

/// Decode a `Control` frame into a message.
pub(crate) fn decode_ctrl(frame: &Frame) -> Result<CtrlMsg, CoreError> {
    if frame.kind != FrameKind::Control {
        return Err(CoreError::PayloadDecode(format!(
            "expected control frame, got {:?}",
            frame.kind
        )));
    }
    let mut r = PayloadReader::new(frame.payload.clone());
    Ok(match r.get_u8()? {
        TAG_HELLO => CtrlMsg::Hello {
            name: get_str(&mut r)?,
            data_addr: get_str(&mut r)?,
            site: get_opt_str(&mut r)?,
            speed: r.get_f64()?,
            capacity: r.get_u32()?,
        },
        TAG_ASSIGN => {
            let app_xml = get_str(&mut r)?;
            let observe_us = r.get_u64()?;
            let adapt_us = r.get_u64()?;
            let control_latency_us = r.get_u64()?;
            let max_time_us = r.get_u64()?;
            let trace = r.get_u8()? != 0;
            let n = r.get_u32()? as usize;
            let mut placements = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                placements.push(StagePlacement {
                    stage: r.get_u32()?,
                    worker: get_str(&mut r)?,
                    endpoint: get_str(&mut r)?,
                    speed: r.get_f64()?,
                });
            }
            let n = r.get_u32()? as usize;
            let mut my_stages = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                my_stages.push(r.get_u32()?);
            }
            let config = get_config(&mut r)?;
            CtrlMsg::Assign(Box::new(AssignMsg {
                app_xml,
                observe_us,
                adapt_us,
                control_latency_us,
                max_time_us,
                trace,
                placements,
                my_stages,
                config,
            }))
        }
        TAG_READY => CtrlMsg::Ready { name: get_str(&mut r)? },
        TAG_START => CtrlMsg::Start,
        TAG_REPORT => {
            let worker = get_str(&mut r)?;
            let lost = r.get_u64()?;
            let replayed = r.get_u64()?;
            let deduped = r.get_u64()?;
            let stalled_us = r.get_u64()?;
            let n = r.get_u32()? as usize;
            let mut stages = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                stages.push(get_stage_report(&mut r)?);
            }
            CtrlMsg::Report { worker, stages, lost, replayed, deduped, stalled_us }
        }
        TAG_TRACE => CtrlMsg::Trace(get_trace_event(&mut r)?),
        TAG_EDGE_HELLO => CtrlMsg::EdgeHello { edge: r.get_u32()?, incarnation: r.get_u64()? },
        TAG_STOP => CtrlMsg::Stop,
        TAG_HEARTBEAT => CtrlMsg::Heartbeat { name: get_str(&mut r)? },
        TAG_CHECKPOINT => {
            let stage = r.get_u32()?;
            let seq = r.get_u64()?;
            let crc = r.get_u32()?;
            let len = r.get_u32()? as usize;
            let state = r.get_bytes(len)?.into_vec();
            let cursors = get_cursors(&mut r)?;
            CtrlMsg::Checkpoint { stage, seq, crc, state, cursors }
        }
        TAG_REJECT => CtrlMsg::Reject { reason: get_str(&mut r)? },
        TAG_REASSIGN => {
            let epoch = r.get_u64()?;
            let n = r.get_u32()? as usize;
            let mut placements = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                placements.push(StagePlacement {
                    stage: r.get_u32()?,
                    worker: get_str(&mut r)?,
                    endpoint: get_str(&mut r)?,
                    speed: r.get_f64()?,
                });
            }
            let n = r.get_u32()? as usize;
            let mut checkpoints = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let stage = r.get_u32()?;
                let seq = r.get_u64()?;
                let crc = r.get_u32()?;
                let len = r.get_u32()? as usize;
                let state = r.get_bytes(len)?.into_vec();
                checkpoints.push((stage, seq, crc, state, get_cursors(&mut r)?));
            }
            CtrlMsg::Reassign { epoch, placements, checkpoints }
        }
        TAG_SHARD_REQUEST => CtrlMsg::ShardRequest {
            group: r.get_u32()?,
            ordinal: r.get_u32()?,
            split: r.get_u8()? != 0,
        },
        TAG_SHARD_UPDATE => {
            let group = r.get_u32()?;
            let epoch = r.get_u64()?;
            let len = r.get_u32()? as usize;
            CtrlMsg::ShardUpdate { group, epoch, map: r.get_bytes(len)?.into_vec() }
        }
        other => return Err(CoreError::PayloadDecode(format!("unknown control tag {other}"))),
    })
}

/// Encode an upstream-bound load exception.
pub(crate) fn encode_exception(e: LoadException) -> Frame {
    let byte = match e {
        LoadException::Overload => 0u8,
        LoadException::Underload => 1u8,
    };
    Frame { kind: FrameKind::Exception, stream_id: 0, seq: 0, payload: Bytes::from(vec![byte]) }
}

/// Decode an `Exception` frame.
pub(crate) fn decode_exception(frame: &Frame) -> Result<LoadException, CoreError> {
    let mut r = PayloadReader::new(frame.payload.clone());
    Ok(match r.get_u8()? {
        0 => LoadException::Overload,
        1 => LoadException::Underload,
        other => return Err(CoreError::PayloadDecode(format!("bad exception kind {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: CtrlMsg) {
        let frame = encode_ctrl(&msg);
        let back = decode_ctrl(&frame).expect("decode");
        assert_eq!(back, msg);
    }

    #[test]
    fn hello_round_trips() {
        round_trip(CtrlMsg::Hello {
            name: "w0".into(),
            data_addr: "127.0.0.1:4000".into(),
            site: Some("source-0".into()),
            speed: 1.5,
            capacity: 4,
        });
        round_trip(CtrlMsg::Hello {
            name: "w1".into(),
            data_addr: "127.0.0.1:4001".into(),
            site: None,
            speed: 1.0,
            capacity: 2,
        });
    }

    #[test]
    fn assign_round_trips() {
        round_trip(CtrlMsg::Assign(Box::new(AssignMsg {
            app_xml: "<application name=\"x\" repository=\"count-samps\"/>".into(),
            observe_us: 100_000,
            adapt_us: 1_000_000,
            control_latency_us: 1_000,
            max_time_us: 60_000_000,
            trace: true,
            placements: vec![
                StagePlacement {
                    stage: 0,
                    worker: "w0".into(),
                    endpoint: "127.0.0.1:4000".into(),
                    speed: 1.0,
                },
                StagePlacement {
                    stage: 1,
                    worker: "w1".into(),
                    endpoint: "127.0.0.1:4001".into(),
                    speed: 2.0,
                },
            ],
            my_stages: vec![1],
            config: DistConfig::default(),
        })));
    }

    #[test]
    fn simple_messages_round_trip() {
        round_trip(CtrlMsg::Ready { name: "w2".into() });
        round_trip(CtrlMsg::Start);
        round_trip(CtrlMsg::EdgeHello { edge: 3, incarnation: 0 });
        round_trip(CtrlMsg::EdgeHello { edge: 7, incarnation: 2 });
        round_trip(CtrlMsg::Stop);
        round_trip(CtrlMsg::Heartbeat { name: "w0".into() });
        round_trip(CtrlMsg::Reject { reason: "duplicate worker name w0".into() });
    }

    #[test]
    fn checkpoint_round_trips() {
        round_trip(CtrlMsg::Checkpoint {
            stage: 4,
            seq: 128,
            crc: gates_net::crc32(&[1, 2, 3, 4, 5]),
            state: vec![1, 2, 3, 4, 5],
            cursors: vec![(2, 120), (5, 8)],
        });
        round_trip(CtrlMsg::Checkpoint {
            stage: 0,
            seq: 0,
            crc: 0,
            state: Vec::new(),
            cursors: Vec::new(),
        });
    }

    #[test]
    fn reassign_round_trips() {
        round_trip(CtrlMsg::Reassign {
            epoch: 3,
            placements: vec![StagePlacement {
                stage: 0,
                worker: "w1".into(),
                endpoint: "127.0.0.1:4001".into(),
                speed: 2.0,
            }],
            checkpoints: vec![(0, 64, gates_net::crc32(&[9, 8, 7]), vec![9, 8, 7], vec![(1, 60)])],
        });
        round_trip(CtrlMsg::Reassign { epoch: 0, placements: Vec::new(), checkpoints: Vec::new() });
    }

    #[test]
    fn failover_link_kinds_round_trip() {
        for kind in [
            LinkEventKind::Reassigned,
            LinkEventKind::Restored,
            LinkEventKind::Resumed,
            LinkEventKind::Rejected,
        ] {
            round_trip(CtrlMsg::Trace(TraceEvent::Link(LinkEvent {
                t: 4.2,
                link: "collector".into(),
                node: "coordinator".into(),
                kind,
                detail: "w2 -> w0".into(),
            })));
        }
    }

    #[test]
    fn delivery_link_kinds_round_trip() {
        for kind in [
            LinkEventKind::Acked,
            LinkEventKind::Replayed,
            LinkEventKind::Deduped,
            LinkEventKind::Stalled,
            LinkEventKind::Skipped,
        ] {
            round_trip(CtrlMsg::Trace(TraceEvent::Link(LinkEvent {
                t: 0.5,
                link: "summarizer-0->collector".into(),
                node: "w1".into(),
                kind,
                detail: "cursor 64".into(),
            })));
        }
    }

    #[test]
    fn non_default_config_round_trips() {
        round_trip(CtrlMsg::Assign(Box::new(AssignMsg {
            app_xml: "<application name=\"x\" repository=\"count-samps\"/>".into(),
            observe_us: 1,
            adapt_us: 2,
            control_latency_us: 3,
            max_time_us: 4,
            trace: false,
            placements: Vec::new(),
            my_stages: Vec::new(),
            config: DistConfig::default()
                .checkpoint_every(7)
                .ack_window(32)
                .replay_retain(96)
                .fault(gates_net::FaultPlan::parse("seed=7,drop=0.02,dup=0.01").unwrap()),
        })));
    }

    #[test]
    fn shard_messages_round_trip() {
        round_trip(CtrlMsg::ShardRequest { group: 0, ordinal: 2, split: true });
        round_trip(CtrlMsg::ShardRequest { group: 1, ordinal: 0, split: false });
        let map = gates_core::ShardMap::uniform(4);
        round_trip(CtrlMsg::ShardUpdate { group: 0, epoch: 7, map: map.encode() });
        round_trip(CtrlMsg::ShardUpdate { group: 3, epoch: 1, map: Vec::new() });
    }

    #[test]
    fn shard_link_kinds_round_trip() {
        for kind in [LinkEventKind::ShardSplit, LinkEventKind::ShardMerge, LinkEventKind::Misrouted]
        {
            round_trip(CtrlMsg::Trace(TraceEvent::Link(LinkEvent {
                t: 1.0,
                link: "agg#0".into(),
                node: "w1".into(),
                kind,
                detail: "epoch 2".into(),
            })));
        }
    }

    #[test]
    fn report_round_trips_with_welford_and_params() {
        let mut queue = Welford::new();
        for x in [0.0, 4.0, 2.0, 7.0] {
            queue.push(x);
        }
        let report = StageReport {
            name: "summarizer-0".into(),
            placed_on: "w1".into(),
            packets_in: 100,
            packets_out: 60,
            records_in: 5_000,
            records_out: 600,
            bytes_in: 81_920,
            bytes_out: 9_600,
            packets_dropped: 3,
            queue: queue.clone(),
            latency: Welford::new(),
            busy_time: SimDuration::from_millis(1_234),
            exceptions_sent: (2, 9),
            exceptions_received: (0, 4),
            params: vec![ParamTrajectory {
                name: "k".into(),
                samples: vec![(0.0, 100.0), (0.2, 110.0), (0.4, 120.0)],
            }],
        };
        let frame = encode_ctrl(&CtrlMsg::Report {
            worker: "w1".into(),
            stages: vec![report.clone()],
            lost: 3,
            replayed: 17,
            deduped: 9,
            stalled_us: 12_500,
        });
        match decode_ctrl(&frame).unwrap() {
            CtrlMsg::Report { worker, stages, lost, replayed, deduped, stalled_us } => {
                assert_eq!(worker, "w1");
                assert_eq!((lost, replayed, deduped, stalled_us), (3, 17, 9, 12_500));
                assert_eq!(stages.len(), 1);
                let s = &stages[0];
                assert_eq!(s.name, "summarizer-0");
                assert_eq!(s.queue.count(), queue.count());
                assert!((s.queue.mean() - queue.mean()).abs() < 1e-12);
                assert!((s.queue.variance() - queue.variance()).abs() < 1e-9);
                assert_eq!(s.params[0].samples.len(), 3);
                assert_eq!(s.params[0].final_value(), Some(120.0));
                assert_eq!(s.busy_time.as_micros(), 1_234_000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn trace_events_round_trip() {
        for event in [
            TraceEvent::Meta(RunMeta {
                engine: "dist".into(),
                placements: vec![("collector".into(), "w0".into())],
            }),
            TraceEvent::Sample(StageSample {
                t: 1.5,
                stage: "collector".into(),
                queue_depth: 12,
                packets_in: 40,
                packets_out: 0,
                dropped: 1,
                throughput: 26.7,
                service_time: 0.002,
                bucket_wait: 0.0,
            }),
            TraceEvent::Adapt(AdaptRound {
                t: 2.0,
                stage: "summarizer-0".into(),
                param: "k".into(),
                policy: "aimd".into(),
                d_tilde: 0.25,
                phi1: 0.1,
                phi2: 0.2,
                phi3: 0.3,
                sigma1: 1.0,
                sigma2: 0.5,
                suggested: 130.0,
                overload_sent: 1,
                underload_sent: 7,
                overload_received: 0,
                underload_received: 3,
            }),
            TraceEvent::Link(LinkEvent {
                t: 3.0,
                link: "summarizer-0->collector".into(),
                node: "w1".into(),
                kind: LinkEventKind::Reconnected,
                detail: "attempt 2".into(),
            }),
        ] {
            round_trip(CtrlMsg::Trace(event));
        }
    }

    #[test]
    fn exceptions_round_trip() {
        for e in [LoadException::Overload, LoadException::Underload] {
            let frame = encode_exception(e);
            assert_eq!(frame.kind, FrameKind::Exception);
            assert_eq!(decode_exception(&frame).unwrap(), e);
        }
    }

    #[test]
    fn decode_rejects_wrong_kind_and_bad_tag() {
        let data = Frame { kind: FrameKind::Data, stream_id: 0, seq: 0, payload: Bytes::new() };
        assert!(decode_ctrl(&data).is_err());
        let bogus = Frame {
            kind: FrameKind::Control,
            stream_id: 0,
            seq: 0,
            payload: Bytes::from_static(&[200]),
        };
        assert!(decode_ctrl(&bogus).is_err());
    }
}

//! The coordinator side of the distributed runtime.
//!
//! [`DistEngine`] plays the paper's Launcher and Deployer for a
//! multi-process run: it collects worker registrations into a
//! [`ResourceRegistry`], places the application's stages with the
//! matchmaker, ships every worker the XML plus the placement table,
//! fires the start signal, and assembles the workers' per-stage reports
//! into the same [`RunReport`] the other engines produce.

use std::collections::{HashMap, HashSet};
use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};

use gates_core::report::{RunReport, StageReport};
use gates_core::trace::{LinkEvent, LinkEventKind, Recorder, RunMeta, TraceEvent};
use gates_core::StageId;
use gates_grid::{ApplicationRepository, Launcher, NodeSpec, ResourceRegistry};
use gates_net::{encode_frame, FrameKind, FrameStream, TransportError};
use gates_sim::SimTime;

use super::proto::{decode_ctrl, encode_ctrl, CtrlMsg, StagePlacement};
use super::{read_ctrl, DistConfig};
use crate::options::RunOptions;
use crate::EngineError;

/// How long the coordinator waits for the expected number of workers to
/// register before giving up.
const REGISTRATION_PATIENCE: Duration = Duration::from_secs(120);

/// How long the coordinator waits for each worker's `Ready` after
/// shipping assignments (topology build + data-plane wiring are local
/// work; this is generous).
const READY_PATIENCE: Duration = Duration::from_secs(30);

/// One registered worker during the handshake phase.
struct WorkerConn {
    name: String,
    data_addr: String,
    site: Option<String>,
    speed: f64,
    capacity: u32,
    ctrl: FrameStream,
}

/// What a worker's control connection ultimately produced.
enum Outcome {
    /// The worker's final per-stage statistics.
    Report {
        /// Worker name.
        worker: String,
        /// Its stages' reports.
        stages: Vec<StageReport>,
    },
    /// The control connection died before a report arrived.
    Lost {
        /// Worker name.
        worker: String,
    },
}

/// The coordinator of a distributed run. Bind with [`DistEngine::bind`],
/// point workers at [`DistEngine::local_addr`], then call
/// [`DistEngine::run`] — it blocks until every worker reported (or was
/// declared lost after `max_time` plus the report grace).
#[derive(Debug)]
pub struct DistEngine {
    xml: String,
    listener: TcpListener,
    expected_workers: usize,
    opts: RunOptions,
    config: DistConfig,
}

impl DistEngine {
    /// Bind the coordinator's control listener on `listen`
    /// (`host:port`, port 0 picks a free one) for a run of the
    /// application described by `xml` across `expected_workers` worker
    /// processes.
    pub fn bind(
        xml: impl Into<String>,
        listen: &str,
        expected_workers: usize,
        opts: RunOptions,
        config: DistConfig,
    ) -> Result<Self, EngineError> {
        opts.validate()?;
        if expected_workers == 0 {
            return Err(EngineError::BadOptions("expected_workers must be at least 1".into()));
        }
        let listener = TcpListener::bind(listen)
            .map_err(|e| EngineError::Transport(format!("bind {listen}: {e}")))?;
        Ok(DistEngine { xml: xml.into(), listener, expected_workers, opts, config })
    }

    /// The bound control address workers should register with.
    pub fn local_addr(&self) -> Result<SocketAddr, EngineError> {
        self.listener.local_addr().map_err(|e| EngineError::Transport(e.to_string()))
    }

    /// Run the application to completion across the registered workers.
    ///
    /// `repo` is only used to build (and thereby place) the topology on
    /// the coordinator; stage code itself runs inside the workers, which
    /// rebuild the same topology from their own repositories.
    pub fn run(self, repo: &ApplicationRepository) -> Result<RunReport, EngineError> {
        let start = Instant::now();

        // --- collect registrations -----------------------------------
        self.listener.set_nonblocking(true).map_err(|e| EngineError::Transport(e.to_string()))?;
        let mut workers: Vec<WorkerConn> = Vec::with_capacity(self.expected_workers);
        let reg_deadline = Instant::now() + REGISTRATION_PATIENCE;
        while workers.len() < self.expected_workers {
            if Instant::now() >= reg_deadline {
                return Err(EngineError::Transport(format!(
                    "only {}/{} workers registered in time",
                    workers.len(),
                    self.expected_workers
                )));
            }
            match self.listener.accept() {
                Ok((socket, _peer)) => {
                    let _ = socket.set_nonblocking(false);
                    let mut fs = FrameStream::new(socket);
                    if fs.set_read_timeout(Some(Duration::from_millis(100))).is_err() {
                        continue;
                    }
                    let hello =
                        read_ctrl(&mut fs, Instant::now() + Duration::from_secs(5), "hello");
                    if let Ok(CtrlMsg::Hello { name, data_addr, site, speed, capacity }) = hello {
                        if workers.iter().any(|w| w.name == name) {
                            return Err(EngineError::Protocol(format!(
                                "duplicate worker name {name:?}"
                            )));
                        }
                        workers.push(WorkerConn {
                            name,
                            data_addr,
                            site,
                            speed,
                            capacity,
                            ctrl: fs,
                        });
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => return Err(EngineError::Transport(format!("accept: {e}"))),
            }
        }

        // --- place the application -----------------------------------
        let mut registry = ResourceRegistry::new();
        for w in &workers {
            let site = w.site.clone().unwrap_or_else(|| w.name.clone());
            registry.register(
                NodeSpec::new(w.name.clone(), site)
                    .speed(w.speed)
                    .capacity(w.capacity as usize)
                    .endpoint(w.data_addr.clone()),
            );
        }
        let deployment = Launcher::new()
            .launch_xml(&self.xml, repo, &registry)
            .map_err(|e| EngineError::InvalidTopology(e.to_string()))?;
        let topology = deployment.topology;
        let plan = deployment.plan;
        let n = topology.stages().len();

        let mut placements = Vec::with_capacity(n);
        for i in 0..n {
            let id = StageId::from_index(i);
            let worker = plan
                .node_of(id)
                .ok_or_else(|| EngineError::InvalidTopology(format!("stage {i} not placed")))?
                .to_string();
            let endpoint = plan
                .endpoint_of(id)
                .ok_or_else(|| {
                    EngineError::InvalidTopology(format!(
                        "stage {i} placed on node without endpoint"
                    ))
                })?
                .to_string();
            placements.push(StagePlacement {
                stage: i as u32,
                worker,
                endpoint,
                speed: plan.speed_of(id),
            });
        }
        if self.opts.recorder.enabled() {
            let meta = topology
                .stages()
                .iter()
                .zip(&placements)
                .map(|(s, p)| (s.name.clone(), p.worker.clone()))
                .collect();
            self.opts
                .recorder
                .record(TraceEvent::Meta(RunMeta { engine: "dist".into(), placements: meta }));
        }

        // --- assign / ready / start ----------------------------------
        for w in &mut workers {
            let my_stages: Vec<u32> =
                placements.iter().filter(|p| p.worker == w.name).map(|p| p.stage).collect();
            let assign = CtrlMsg::Assign(super::proto::AssignMsg {
                app_xml: self.xml.clone(),
                observe_us: self.opts.observe_interval.as_micros(),
                adapt_us: self.opts.adapt_interval.as_micros(),
                control_latency_us: self.opts.control_latency.as_micros(),
                max_time_us: self.opts.max_time.as_micros(),
                trace: self.opts.recorder.enabled(),
                placements: placements.clone(),
                my_stages,
                config: self.config.clone(),
            });
            w.ctrl
                .send(&encode_ctrl(&assign))
                .map_err(|e| EngineError::Transport(format!("assign {}: {e}", w.name)))?;
        }
        for w in &mut workers {
            let deadline = Instant::now() + READY_PATIENCE;
            match read_ctrl(&mut w.ctrl, deadline, "ready")? {
                CtrlMsg::Ready { .. } => {}
                other => {
                    return Err(EngineError::Protocol(format!(
                        "expected ready from {}, got {other:?}",
                        w.name
                    )))
                }
            }
        }
        for w in &mut workers {
            w.ctrl
                .send(&encode_ctrl(&CtrlMsg::Start))
                .map_err(|e| EngineError::Transport(format!("start {}: {e}", w.name)))?;
        }

        // --- collect traces and reports ------------------------------
        let stop = Arc::new(AtomicBool::new(false));
        let (res_tx, res_rx) = unbounded::<Outcome>();
        let worker_names: Vec<String> = workers.iter().map(|w| w.name.clone()).collect();
        // Raw write handles for the Stop broadcast: the reader threads
        // own the FrameStreams, but writes on a try-cloned socket are
        // safe (a frame is one `write_all`).
        let mut stop_writers = Vec::with_capacity(workers.len());
        for w in &workers {
            stop_writers.push(
                w.ctrl
                    .try_clone_stream()
                    .map_err(|e| EngineError::Transport(format!("clone {} ctrl: {e}", w.name)))?,
            );
        }
        let mut reader_handles = Vec::with_capacity(workers.len());
        for w in workers {
            let recorder = Arc::clone(&self.opts.recorder);
            let results = res_tx.clone();
            let stop = Arc::clone(&stop);
            reader_handles.push(
                std::thread::Builder::new()
                    .name(format!("gates-ctrl-{}", w.name))
                    .spawn(move || worker_reader(w.ctrl, w.name, recorder, results, stop))
                    .map_err(|e| EngineError::Transport(e.to_string()))?,
            );
        }
        drop(res_tx);

        let budget = Duration::from_secs_f64(self.opts.max_time.as_secs_f64());
        let mut deadline = start + budget + self.config.report_grace;
        let mut stop_sent = false;
        let mut reports: HashMap<String, Vec<StageReport>> = HashMap::new();
        let mut lost: HashSet<String> = HashSet::new();
        while reports.len() + lost.len() < worker_names.len() {
            let now = Instant::now();
            if now >= deadline {
                if stop_sent {
                    break;
                }
                // Budget exhausted: tell every worker to stop, then give
                // them one more grace period to report.
                stop_sent = true;
                let stop_frame = encode_frame(&encode_ctrl(&CtrlMsg::Stop));
                for s in &mut stop_writers {
                    let _ = s.write_all(&stop_frame);
                }
                deadline = now + self.config.report_grace;
                continue;
            }
            match res_rx.recv_timeout(deadline.duration_since(now).min(Duration::from_millis(100)))
            {
                Ok(Outcome::Report { worker, stages }) => {
                    reports.insert(worker, stages);
                }
                Ok(Outcome::Lost { worker }) => {
                    self.record_lost(start, &worker, "control connection closed before report");
                    lost.insert(worker);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        stop.store(true, Ordering::Relaxed);
        for h in reader_handles {
            let _ = h.join();
        }
        for name in &worker_names {
            if !reports.contains_key(name) && !lost.contains(name) {
                self.record_lost(start, name, "no report before deadline");
                lost.insert(name.clone());
            }
        }

        // --- assemble the run report ---------------------------------
        let mut by_name: HashMap<String, StageReport> =
            reports.into_values().flatten().map(|s| (s.name.clone(), s)).collect();
        let stages = (0..n)
            .map(|i| {
                let stage = &topology.stages()[i];
                by_name.remove(&stage.name).unwrap_or_else(|| StageReport {
                    name: stage.name.clone(),
                    placed_on: placements[i].worker.clone(),
                    ..Default::default()
                })
            })
            .collect();
        Ok(RunReport {
            finished_at: SimTime::from_secs_f64(start.elapsed().as_secs_f64()),
            stages,
            events: 0,
            trace: self.opts.recorder.as_flight().map(|f| f.run_trace()),
        })
    }

    fn record_lost(&self, start: Instant, worker: &str, detail: &str) {
        if self.opts.recorder.enabled() {
            self.opts.recorder.record(TraceEvent::Link(LinkEvent {
                t: start.elapsed().as_secs_f64(),
                link: format!("{worker}->coordinator"),
                node: "coordinator".into(),
                kind: LinkEventKind::WorkerLost,
                detail: detail.into(),
            }));
        }
    }
}

/// Pump one worker's control connection: trace events into the
/// coordinator's recorder, the final report (or the connection's death)
/// into the results channel.
fn worker_reader(
    mut fs: FrameStream,
    worker: String,
    recorder: Arc<dyn Recorder>,
    results: Sender<Outcome>,
    stop: Arc<AtomicBool>,
) {
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        match fs.read_frame() {
            Ok(Some(f)) if f.kind == FrameKind::Control => match decode_ctrl(&f) {
                Ok(CtrlMsg::Trace(event)) if recorder.enabled() => recorder.record(event),
                Ok(CtrlMsg::Trace(_)) => {}
                Ok(CtrlMsg::Report { worker, stages }) => {
                    let _ = results.send(Outcome::Report { worker, stages });
                    return;
                }
                _ => {}
            },
            Ok(Some(_)) => {}
            Err(TransportError::TimedOut) => {}
            Ok(None) | Err(TransportError::Io(_)) => {
                let _ = results.send(Outcome::Lost { worker });
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gates_core::{Packet, SourceStatus, StageApi, StageBuilder, StreamProcessor, Topology};
    use gates_net::LinkSpec;
    use gates_sim::SimDuration;

    struct Burst {
        left: u32,
    }
    impl StreamProcessor for Burst {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
        fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
            if self.left == 0 {
                return SourceStatus::Done;
            }
            self.left -= 1;
            api.emit(Packet::data(0, self.left as u64, 1, Bytes::from_static(b"0123456789")));
            SourceStatus::Continue { next_poll: SimDuration::from_millis(1) }
        }
    }

    struct Relay;
    impl StreamProcessor for Relay {
        fn process(&mut self, p: Packet, api: &mut StageApi) {
            api.emit(p);
        }
    }

    struct Sink;
    impl StreamProcessor for Sink {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    }

    /// A three-stage pipeline with site affinities that spread it over
    /// three workers, so both remote edges cross process boundaries.
    fn test_repo() -> ApplicationRepository {
        let mut repo = ApplicationRepository::new();
        repo.publish("relay-line", |_cfg| {
            let mut t = Topology::new();
            let src = t
                .add_stage_raw(StageBuilder::new("src").site("s0").processor(|| Burst { left: 40 }))
                .unwrap();
            let mid = t.add_stage(StageBuilder::new("mid").site("s1").processor(|| Relay)).unwrap();
            let snk = t.add_stage(StageBuilder::new("snk").site("s2").processor(|| Sink)).unwrap();
            t.connect(src, mid, LinkSpec::local());
            t.connect(mid, snk, LinkSpec::local());
            Ok(t)
        });
        repo
    }

    const XML: &str = r#"<application name="line" repository="relay-line"/>"#;

    #[test]
    fn three_workers_run_a_pipeline_over_loopback() {
        let opts = RunOptions::default()
            .observe_every(SimDuration::from_millis(20))
            .adapt_every(SimDuration::from_millis(100))
            .max_time(SimTime::from_secs_f64(30.0));
        let engine = DistEngine::bind(XML, "127.0.0.1:0", 3, opts, DistConfig::default()).unwrap();
        let coord_addr = engine.local_addr().unwrap().to_string();

        let mut worker_handles = Vec::new();
        for (name, site) in [("w0", "s0"), ("w1", "s1"), ("w2", "s2")] {
            let addr = coord_addr.clone();
            worker_handles.push(std::thread::spawn(move || {
                DistWorker::new(name, addr).site(site).run(&test_repo())
            }));
        }
        let report = engine.run(&test_repo()).unwrap();
        for h in worker_handles {
            h.join().unwrap().unwrap();
        }

        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.stage("src").unwrap().packets_out, 40);
        assert_eq!(report.stage("mid").unwrap().packets_in, 40, "src->mid crossed TCP");
        assert_eq!(report.stage("snk").unwrap().packets_in, 40, "mid->snk crossed TCP");
        assert_eq!(report.stage("src").unwrap().placed_on, "w0");
        assert_eq!(report.stage("mid").unwrap().placed_on, "w1");
        assert_eq!(report.stage("snk").unwrap().placed_on, "w2");
    }

    use crate::dist::DistWorker;

    #[test]
    fn bind_rejects_zero_workers() {
        let err =
            DistEngine::bind(XML, "127.0.0.1:0", 0, RunOptions::default(), DistConfig::default())
                .unwrap_err();
        assert!(matches!(err, EngineError::BadOptions(_)));
    }
}

//! The coordinator side of the distributed runtime.
//!
//! [`DistEngine`] plays the paper's Launcher and Deployer for a
//! multi-process run: it collects worker registrations into a
//! [`ResourceRegistry`], places the application's stages with the
//! matchmaker, ships every worker the XML plus the placement table,
//! fires the start signal, and assembles the workers' per-stage reports
//! into the same [`RunReport`] the other engines produce.
//!
//! While the run executes, the coordinator also plays failure detector
//! and re-deployer: a worker whose control connection closes or goes
//! silent past [`DistConfig::heartbeat_timeout`] is declared lost, its
//! stages are re-placed over the surviving workers with the same
//! matchmaker, and a `Reassign` (new placement rows plus each stage's
//! last checkpoint) is broadcast so one survivor adopts the stages and
//! the others re-point their data links. Lost workers always surface in
//! [`RunReport::lost_workers`], so a partial run is visible even when
//! failover could not save it.

use std::collections::{HashMap, HashSet};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};

use gates_core::report::{LostWorker, RunReport, StageReport};
use gates_core::trace::{LinkEvent, LinkEventKind, Recorder, RunMeta, TraceEvent};
use gates_core::{StageId, Topology};
use gates_grid::{ApplicationRepository, Launcher, Matchmaker, NodeSpec, ResourceRegistry};
use gates_net::{
    crc32, Directive, Frame, FrameKind, FrameStream, Reactor, Ready, Source, Token, TransportError,
};
use gates_sim::SimTime;

use super::proto::{
    decode_ctrl, encode_ctrl, CheckpointEntry, CtrlMsg, StageCheckpoint, StagePlacement,
};
use super::{read_ctrl, DistConfig};
use crate::options::RunOptions;
use crate::EngineError;

/// How long the coordinator waits for the expected number of workers to
/// register before giving up.
const REGISTRATION_PATIENCE: Duration = Duration::from_secs(120);

/// How long the coordinator waits for each worker's `Ready` after
/// shipping assignments (topology build + data-plane wiring are local
/// work; this is generous).
const READY_PATIENCE: Duration = Duration::from_secs(30);

/// One registered worker during the handshake phase.
struct WorkerConn {
    name: String,
    data_addr: String,
    site: Option<String>,
    speed: f64,
    capacity: u32,
    ctrl: FrameStream,
}

/// Node facts retained past the handshake, so failover can rebuild a
/// [`ResourceRegistry`] over the survivors.
struct WorkerMeta {
    site: Option<String>,
    speed: f64,
    capacity: u32,
    data_addr: String,
}

/// What a worker's control connection produced.
enum Outcome {
    /// The worker's final per-stage statistics.
    Report {
        /// Worker name.
        worker: String,
        /// Its stages' reports.
        stages: Vec<StageReport>,
        /// Frames this worker's links lost past repair.
        lost: u64,
        /// Frames its senders re-transmitted.
        replayed: u64,
        /// Duplicate frames its receivers discarded.
        deduped: u64,
        /// Microseconds its senders stalled on a full credit window.
        stalled_us: u64,
    },
    /// The control connection died or went silent before a report arrived.
    Lost {
        /// Worker name.
        worker: String,
        /// Why the worker was declared lost.
        reason: String,
    },
    /// A stage shipped a state snapshot; the coordinator keeps the newest
    /// per stage for failover.
    Checkpoint {
        /// Stage index.
        stage: u32,
        /// Input packets consumed at snapshot time.
        seq: u64,
        /// CRC-32 of `state` taken at snapshot time.
        crc: u32,
        /// Opaque stage state.
        state: Vec<u8>,
        /// Per remote in-edge, the input sequence consumed at snapshot
        /// time: `(edge index, cursor)`. Failover hands these back so
        /// the adopted stage's senders replay from the cursor.
        cursors: Vec<(u32, u64)>,
    },
    /// A worker relayed a `ReconnectExhausted` link event: one of its
    /// data links gave up re-dialing. The run keeps going, but the loss
    /// must surface in [`RunReport::lost_workers`] reasons.
    LinkExhausted {
        /// Worker that gave up.
        worker: String,
        /// Which link, in `from->to` form.
        link: String,
        /// The event detail (budget spent, endpoint).
        detail: String,
    },
    /// A replica asked for a key-range split (overload) or merge
    /// (underload). The coordinator owns the authoritative shard maps;
    /// it applies the change and broadcasts the new map to every worker.
    ShardRequest {
        /// Replica group index.
        group: u32,
        /// Requesting replica's ordinal.
        ordinal: u32,
        /// `true` = split the hot replica's range; `false` = merge the
        /// cold replica's range away.
        split: bool,
    },
}

/// The coordinator of a distributed run. Bind with [`DistEngine::bind`],
/// point workers at [`DistEngine::local_addr`], then call
/// [`DistEngine::run`] — it blocks until every worker reported (or was
/// declared lost after `max_time` plus the report grace).
#[derive(Debug)]
pub struct DistEngine {
    xml: String,
    listener: TcpListener,
    expected_workers: usize,
    opts: RunOptions,
    config: DistConfig,
}

impl DistEngine {
    /// Bind the coordinator's control listener on `listen`
    /// (`host:port`, port 0 picks a free one) for a run of the
    /// application described by `xml` across `expected_workers` worker
    /// processes.
    pub fn bind(
        xml: impl Into<String>,
        listen: &str,
        expected_workers: usize,
        opts: RunOptions,
        config: DistConfig,
    ) -> Result<Self, EngineError> {
        opts.validate()?;
        if expected_workers == 0 {
            return Err(EngineError::BadOptions("expected_workers must be at least 1".into()));
        }
        let listener = TcpListener::bind(listen)
            .map_err(|e| EngineError::Transport(format!("bind {listen}: {e}")))?;
        Ok(DistEngine { xml: xml.into(), listener, expected_workers, opts, config })
    }

    /// The bound control address workers should register with.
    pub fn local_addr(&self) -> Result<SocketAddr, EngineError> {
        self.listener.local_addr().map_err(|e| EngineError::Transport(e.to_string()))
    }

    /// Run the application to completion across the registered workers.
    ///
    /// `repo` is only used to build (and thereby place) the topology on
    /// the coordinator; stage code itself runs inside the workers, which
    /// rebuild the same topology from their own repositories.
    pub fn run(self, repo: &ApplicationRepository) -> Result<RunReport, EngineError> {
        let start = Instant::now();

        // --- collect registrations -----------------------------------
        // One reactor drives every coordinator socket: the listener, the
        // registration handshakes, and later each worker's control
        // connection. Readiness replaces the old per-socket read-timeout
        // polling, and a slow (or hostile) client can no longer stall
        // the handshakes of the workers behind it.
        let reactor = Reactor::spawn("gates-coord")
            .map_err(|e| EngineError::Transport(format!("spawn reactor: {e}")))?;
        let accept_listener = self
            .listener
            .try_clone()
            .map_err(|e| EngineError::Transport(format!("clone listener: {e}")))?;
        let (reg_tx, reg_rx) = unbounded::<RegOutcome>();
        let listener_token = reactor.register(Box::new(RegListener {
            listener: accept_listener,
            reactor: reactor.clone(),
            results: reg_tx,
        }));

        let mut workers: Vec<WorkerConn> = Vec::with_capacity(self.expected_workers);
        let mut rejected = 0usize;
        let reg_deadline = Instant::now() + REGISTRATION_PATIENCE;
        while workers.len() < self.expected_workers {
            let now = Instant::now();
            if now >= reg_deadline {
                reactor.shutdown();
                return Err(EngineError::Transport(format!(
                    "only {}/{} workers registered in time ({rejected} registration(s) rejected)",
                    workers.len(),
                    self.expected_workers
                )));
            }
            match reg_rx.recv_timeout(reg_deadline - now) {
                Ok(RegOutcome::Hello { name, data_addr, site, speed, capacity, mut fs }) => {
                    if workers.iter().any(|w| w.name == name) {
                        let reason = format!("duplicate worker name {name:?}");
                        self.reject(start, &mut fs, &reason, &mut rejected);
                        continue;
                    }
                    workers.push(WorkerConn { name, data_addr, site, speed, capacity, ctrl: fs });
                }
                Ok(RegOutcome::Bad { mut fs, reason }) => {
                    self.reject(start, &mut fs, &reason, &mut rejected);
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    reactor.shutdown();
                    return Err(EngineError::Transport("coordinator reactor died".into()));
                }
            }
        }
        // Registration is closed; drop the listener from the reactor so
        // late connects are refused by the OS, not left dangling.
        reactor.close(listener_token);

        // --- place the application -----------------------------------
        let mut registry = ResourceRegistry::new();
        for w in &workers {
            let site = w.site.clone().unwrap_or_else(|| w.name.clone());
            registry.register(
                NodeSpec::new(w.name.clone(), site)
                    .speed(w.speed)
                    .capacity(w.capacity as usize)
                    .endpoint(w.data_addr.clone()),
            );
        }
        let deployment = Launcher::new()
            .launch_xml(&self.xml, repo, &registry)
            .map_err(|e| EngineError::InvalidTopology(e.to_string()))?;
        let topology = deployment.topology;
        let plan = deployment.plan;
        let n = topology.stages().len();

        let mut placements: Vec<StagePlacement> = Vec::with_capacity(n);
        for i in 0..n {
            let id = StageId::from_index(i);
            let worker = plan
                .node_of(id)
                .ok_or_else(|| EngineError::InvalidTopology(format!("stage {i} not placed")))?
                .to_string();
            let endpoint = plan
                .endpoint_of(id)
                .ok_or_else(|| {
                    EngineError::InvalidTopology(format!(
                        "stage {i} placed on node without endpoint"
                    ))
                })?
                .to_string();
            placements.push(StagePlacement {
                stage: i as u32,
                worker,
                endpoint,
                speed: plan.speed_of(id),
            });
        }
        if self.opts.recorder.enabled() {
            let meta = topology
                .stages()
                .iter()
                .zip(&placements)
                .map(|(s, p)| (s.name.clone(), p.worker.clone()))
                .collect();
            self.opts
                .recorder
                .record(TraceEvent::Meta(RunMeta { engine: "dist".into(), placements: meta }));
        }

        // --- assign / ready / start ----------------------------------
        for w in &mut workers {
            let my_stages: Vec<u32> =
                placements.iter().filter(|p| p.worker == w.name).map(|p| p.stage).collect();
            let assign = CtrlMsg::Assign(Box::new(super::proto::AssignMsg {
                app_xml: self.xml.clone(),
                observe_us: self.opts.observe_interval.as_micros(),
                adapt_us: self.opts.adapt_interval.as_micros(),
                control_latency_us: self.opts.control_latency.as_micros(),
                max_time_us: self.opts.max_time.as_micros(),
                trace: self.opts.recorder.enabled(),
                placements: placements.clone(),
                my_stages,
                config: self.config.clone(),
            }));
            w.ctrl
                .send(&encode_ctrl(&assign))
                .map_err(|e| EngineError::Transport(format!("assign {}: {e}", w.name)))?;
        }
        for w in &mut workers {
            let deadline = Instant::now() + READY_PATIENCE;
            match read_ctrl(&mut w.ctrl, deadline, "ready")? {
                CtrlMsg::Ready { .. } => {}
                other => {
                    return Err(EngineError::Protocol(format!(
                        "expected ready from {}, got {other:?}",
                        w.name
                    )))
                }
            }
        }
        for w in &mut workers {
            w.ctrl
                .send(&encode_ctrl(&CtrlMsg::Start))
                .map_err(|e| EngineError::Transport(format!("start {}: {e}", w.name)))?;
        }

        // --- collect traces and reports ------------------------------
        let (res_tx, res_rx) = unbounded::<Outcome>();
        let worker_names: Vec<String> = workers.iter().map(|w| w.name.clone()).collect();
        // Node facts outlive the handshake so failover can rebuild a
        // registry over the survivors.
        let meta: HashMap<String, WorkerMeta> = workers
            .iter()
            .map(|w| {
                (
                    w.name.clone(),
                    WorkerMeta {
                        site: w.site.clone(),
                        speed: w.speed,
                        capacity: w.capacity,
                        data_addr: w.data_addr.clone(),
                    },
                )
            })
            .collect();
        // Fault-plane accounting, fed by relayed link events: every
        // injected fault and every completed recovery in the run, from
        // any process, lands in these two counters.
        let faults_injected = Arc::new(AtomicU64::new(0));
        let fault_recoveries = Arc::new(AtomicU64::new(0));
        // Each worker's control connection becomes a reactor source that
        // decodes inbound frames into `Outcome`s and writes queued
        // broadcast frames (Stop/Reassign/ShardUpdate) when the socket
        // is ready. Heartbeat silence is a reactor deadline, not a poll.
        let mut writers: HashMap<String, WorkerHandle> = HashMap::new();
        for w in workers {
            let shared = Arc::new(BcastQueue::default());
            let token = reactor.register(Box::new(WorkerReadSource {
                fs: w.ctrl,
                worker: w.name.clone(),
                recorder: Arc::clone(&self.opts.recorder),
                results: res_tx.clone(),
                heartbeat_timeout: self.config.heartbeat_timeout,
                faults_injected: Arc::clone(&faults_injected),
                fault_recoveries: Arc::clone(&fault_recoveries),
                last_seen: Instant::now(),
                shared: Arc::clone(&shared),
            }));
            writers.insert(w.name, WorkerHandle { reactor: reactor.clone(), token, shared });
        }
        drop(res_tx);

        let budget = Duration::from_secs_f64(self.opts.max_time.as_secs_f64());
        let mut deadline = start + budget + self.config.report_grace;
        let mut stop_sent = false;
        let mut reports: HashMap<String, Vec<StageReport>> = HashMap::new();
        let mut lost: HashSet<String> = HashSet::new();
        let mut lost_workers: Vec<LostWorker> = Vec::new();
        let mut checkpoints: HashMap<u32, CheckpointEntry> = HashMap::new();
        let (mut packets_lost, mut packets_replayed) = (0u64, 0u64);
        let (mut packets_deduped, mut backpressure_us) = (0u64, 0u64);
        // Failover generation, bumped per broadcast so workers can
        // discard duplicated or reordered Reassign frames.
        let mut epoch = 0u64;
        // Links already reported as exhausted, so a worker retrying its
        // event stream cannot flood the report with duplicates.
        let mut exhausted_links: HashSet<(String, String)> = HashSet::new();
        while reports.len() + lost.len() < worker_names.len() {
            let now = Instant::now();
            if now >= deadline {
                if stop_sent {
                    break;
                }
                // Budget exhausted: tell every worker to stop, then give
                // them one more grace period to report.
                stop_sent = true;
                let stop_frame = encode_ctrl(&CtrlMsg::Stop);
                for h in writers.values() {
                    h.send(stop_frame.clone());
                }
                deadline = now + self.config.report_grace;
                continue;
            }
            match res_rx.recv_timeout(deadline.duration_since(now).min(Duration::from_millis(100)))
            {
                Ok(Outcome::Report { worker, stages, lost: l, replayed, deduped, stalled_us }) => {
                    packets_lost += l;
                    packets_replayed += replayed;
                    packets_deduped += deduped;
                    backpressure_us += stalled_us;
                    reports.insert(worker, stages);
                }
                Ok(Outcome::Checkpoint { stage, seq, crc, state, cursors }) => {
                    // Trust nothing that crossed the wire under chaos: a
                    // checkpoint whose bytes no longer match their CRC is
                    // discarded (restoring garbage is worse than a fresh
                    // restart), and an older snapshot never overwrites a
                    // newer one (duplicated/reordered control frames).
                    if crc32(&state) != crc {
                        self.record_failover_event(
                            start,
                            &format!("checkpoint-{stage}"),
                            LinkEventKind::CheckpointCorrupt,
                            &format!("seq {seq} failed CRC; discarded"),
                        );
                        fault_recoveries.fetch_add(1, Ordering::Relaxed);
                    } else if checkpoints.get(&stage).is_some_and(|(have, _, _, _)| *have >= seq) {
                        self.record_failover_event(
                            start,
                            &format!("checkpoint-{stage}"),
                            LinkEventKind::StaleDiscarded,
                            &format!("seq {seq} not newer than stored"),
                        );
                        fault_recoveries.fetch_add(1, Ordering::Relaxed);
                    } else {
                        checkpoints.insert(stage, (seq, crc, state, cursors));
                    }
                }
                Ok(Outcome::ShardRequest { group, ordinal, split }) => {
                    // Apply on the coordinator's authoritative router,
                    // then broadcast the whole map; workers install it
                    // epoch-guarded. A rejected request (narrow range,
                    // last owner, already merged away…) just leaves a
                    // trace — the replica keeps running on its current
                    // range.
                    let Some(g) = topology.groups().get(group as usize) else { continue };
                    let kind =
                        if split { LinkEventKind::ShardSplit } else { LinkEventKind::ShardMerge };
                    let change = if split {
                        g.router.split_hot(ordinal)
                    } else {
                        g.router.merge_cold(ordinal)
                    };
                    match change {
                        Ok(ch) => {
                            let (map_epoch, map) = g.router.snapshot();
                            self.record_failover_event(
                                start,
                                &g.base,
                                kind,
                                &format!("replica {} -> {} (epoch {map_epoch})", ch.from, ch.to),
                            );
                            let frame = encode_ctrl(&CtrlMsg::ShardUpdate {
                                group,
                                epoch: map_epoch,
                                map: map.encode(),
                            });
                            for (name, h) in writers.iter() {
                                if !lost.contains(name) {
                                    h.send(frame.clone());
                                }
                            }
                        }
                        Err(e) => self.record_failover_event(
                            start,
                            &g.base,
                            kind,
                            &format!("replica {ordinal} request rejected: {e}"),
                        ),
                    }
                }
                Ok(Outcome::LinkExhausted { worker, link, detail }) => {
                    if exhausted_links.insert((worker.clone(), link.clone())) {
                        // The worker itself is still alive and will
                        // report; only the one link's traffic is gone.
                        // Name the loss without triggering failover.
                        lost_workers.push(LostWorker {
                            worker: worker.clone(),
                            reason: format!("link {link} reconnect exhausted: {detail}"),
                            at: start.elapsed().as_secs_f64(),
                        });
                    }
                }
                Ok(Outcome::Lost { worker, reason }) => {
                    self.record_lost(start, &worker, &reason, &mut lost_workers);
                    lost.insert(worker.clone());
                    // A run already winding down (Stop sent) doesn't
                    // bother re-placing stages.
                    if !stop_sent {
                        self.failover(
                            start,
                            &topology,
                            &worker,
                            &mut placements,
                            &meta,
                            &lost,
                            &reports,
                            &checkpoints,
                            &writers,
                            &mut epoch,
                        );
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        reactor.shutdown();
        for name in &worker_names {
            if !reports.contains_key(name) && !lost.contains(name) {
                self.record_lost(start, name, "no report before deadline", &mut lost_workers);
                lost.insert(name.clone());
            }
        }

        // --- assemble the run report ---------------------------------
        let mut by_name: HashMap<String, StageReport> =
            reports.into_values().flatten().map(|s| (s.name.clone(), s)).collect();
        let stages = (0..n)
            .map(|i| {
                let stage = &topology.stages()[i];
                by_name.remove(&stage.name).unwrap_or_else(|| StageReport {
                    name: stage.name.clone(),
                    placed_on: placements[i].worker.clone(),
                    ..Default::default()
                })
            })
            .collect();
        Ok(RunReport {
            finished_at: SimTime::from_secs_f64(start.elapsed().as_secs_f64()),
            stages,
            events: 0,
            lost_workers,
            trace: self.opts.recorder.as_flight().map(|f| f.run_trace()),
            faults_injected: faults_injected.load(Ordering::Relaxed),
            fault_recoveries: fault_recoveries.load(Ordering::Relaxed),
            packets_lost,
            packets_replayed,
            packets_deduped,
            backpressure_us,
        })
    }

    /// Refuse a registration attempt: send a typed `Reject` frame (best
    /// effort), leave a flight-recorder event, and count the refusal so a
    /// registration timeout can say how many connects were turned away.
    fn reject(&self, start: Instant, fs: &mut FrameStream, reason: &str, rejected: &mut usize) {
        *rejected += 1;
        let _ = fs.send(&encode_ctrl(&CtrlMsg::Reject { reason: reason.into() }));
        self.record_failover_event(start, "registration", LinkEventKind::Rejected, reason);
    }

    fn record_lost(
        &self,
        start: Instant,
        worker: &str,
        detail: &str,
        lost_workers: &mut Vec<LostWorker>,
    ) {
        lost_workers.push(LostWorker {
            worker: worker.into(),
            reason: detail.into(),
            at: start.elapsed().as_secs_f64(),
        });
        if self.opts.recorder.enabled() {
            self.opts.recorder.record(TraceEvent::Link(LinkEvent {
                t: start.elapsed().as_secs_f64(),
                link: format!("{worker}->coordinator"),
                node: "coordinator".into(),
                kind: LinkEventKind::WorkerLost,
                detail: detail.into(),
            }));
        }
    }

    fn record_failover_event(&self, start: Instant, link: &str, kind: LinkEventKind, detail: &str) {
        if self.opts.recorder.enabled() {
            self.opts.recorder.record(TraceEvent::Link(LinkEvent {
                t: start.elapsed().as_secs_f64(),
                link: link.into(),
                node: "coordinator".into(),
                kind,
                detail: detail.into(),
            }));
        }
    }

    /// Coordinator-driven failover. Find the stages stranded on
    /// `lost_worker`, re-run the matchmaker over the surviving registered
    /// workers, update the placement table, and broadcast a `Reassign`
    /// (changed rows plus each stage's last checkpoint) to every
    /// survivor. The worker named in a row adopts the stage; everyone
    /// else re-points the data links that used to dial the lost worker.
    #[allow(clippy::too_many_arguments)]
    fn failover(
        &self,
        start: Instant,
        topology: &Topology,
        lost_worker: &str,
        placements: &mut [StagePlacement],
        meta: &HashMap<String, WorkerMeta>,
        lost: &HashSet<String>,
        reports: &HashMap<String, Vec<StageReport>>,
        checkpoints: &HashMap<u32, CheckpointEntry>,
        writers: &HashMap<String, WorkerHandle>,
        epoch: &mut u64,
    ) {
        let stranded: Vec<usize> = placements
            .iter()
            .enumerate()
            .filter(|(_, p)| p.worker == lost_worker)
            .map(|(i, _)| i)
            .collect();
        if stranded.is_empty() {
            return;
        }
        // Survivors: registered, not lost, and still running (a worker
        // that already reported is exiting and cannot adopt stages).
        let mut registry = ResourceRegistry::new();
        for (name, m) in meta {
            if lost.contains(name) || reports.contains_key(name) {
                continue;
            }
            registry.register(
                NodeSpec::new(name.clone(), m.site.clone().unwrap_or_else(|| name.clone()))
                    .speed(m.speed)
                    .capacity(m.capacity as usize)
                    .endpoint(m.data_addr.clone()),
            );
        }
        let replacement = match Matchmaker.place(topology, &registry) {
            Ok(map) => map,
            Err(e) => {
                self.record_failover_event(
                    start,
                    "failover",
                    LinkEventKind::WorkerLost,
                    &format!("cannot reassign stages of {lost_worker}: {e}"),
                );
                return;
            }
        };
        let mut changed = Vec::with_capacity(stranded.len());
        for i in stranded {
            let id = StageId::from_index(i);
            let Some(new_worker) = replacement.get(&id) else { continue };
            // The matchmaker only places on registered nodes, but a
            // mismatch here must degrade to "stage not re-placed", not
            // bring the whole coordinator down mid-failover.
            let Some(m) = meta.get(new_worker) else { continue };
            placements[i] = StagePlacement {
                stage: i as u32,
                worker: new_worker.clone(),
                endpoint: m.data_addr.clone(),
                speed: m.speed,
            };
            changed.push(placements[i].clone());
            self.record_failover_event(
                start,
                &topology.stages()[i].name,
                LinkEventKind::Reassigned,
                &format!("{lost_worker} -> {new_worker}"),
            );
        }
        let ckpts: Vec<StageCheckpoint> = changed
            .iter()
            .filter_map(|p| {
                checkpoints
                    .get(&p.stage)
                    .map(|(s, crc, st, cur)| (p.stage, *s, *crc, st.clone(), cur.clone()))
            })
            .collect();
        *epoch += 1;
        let frame = encode_ctrl(&CtrlMsg::Reassign {
            epoch: *epoch,
            placements: changed,
            checkpoints: ckpts,
        });
        // Under chaos the control plane may eat frames, so the broadcast
        // switches to at-least-once: every survivor gets the Reassign
        // twice. Workers are epoch-idempotent — the duplicate is
        // discarded with a `stale_discarded` trace event, which also
        // keeps that recovery path permanently exercised.
        let sends = if self.config.fault.is_some() { 2 } else { 1 };
        for (name, h) in writers.iter() {
            if lost.contains(name) {
                continue;
            }
            for _ in 0..sends {
                h.send(frame.clone());
            }
        }
    }
}

/// What a registration handshake produced, handed from the reactor to
/// the registration loop. The `FrameStream` travels with the outcome
/// (restored to blocking mode) so the loop can complete the
/// assign/ready exchange — or send a typed `Reject` — synchronously.
enum RegOutcome {
    /// A well-formed hello.
    Hello {
        name: String,
        data_addr: String,
        site: Option<String>,
        speed: f64,
        capacity: u32,
        fs: FrameStream,
    },
    /// Anything else: wrong first message, undecodable frame, silence
    /// past the handshake deadline, or a connection that died mid-hello.
    Bad { fs: FrameStream, reason: String },
}

/// Reactor source wrapping the registration listener: each accepted
/// socket becomes its own [`HelloSource`], so handshakes overlap
/// instead of queueing behind the slowest client.
struct RegListener {
    listener: TcpListener,
    reactor: Reactor,
    results: Sender<RegOutcome>,
}

impl Source for RegListener {
    fn fd(&self) -> RawFd {
        self.listener.as_raw_fd()
    }

    fn service(&mut self, _ready: Ready, now: Instant) -> Directive {
        loop {
            match self.listener.accept() {
                Ok((socket, _peer)) => {
                    let fs = FrameStream::new(socket);
                    self.reactor.register(Box::new(HelloSource {
                        fd: fs.get_ref().as_raw_fd(),
                        fs: Some(fs),
                        results: self.results.clone(),
                        deadline: now + Duration::from_secs(5),
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                // Transient accept errors (aborted handshakes, fd
                // pressure): retry on the next readiness edge.
                Err(_) => break,
            }
        }
        Directive::read()
    }
}

/// Reactor source that reads exactly one control message — the hello —
/// off a freshly accepted socket, then surrenders the stream to the
/// registration loop and closes itself.
struct HelloSource {
    /// Cached so `fd()` stays valid after the stream is surrendered.
    fd: RawFd,
    fs: Option<FrameStream>,
    results: Sender<RegOutcome>,
    deadline: Instant,
}

impl HelloSource {
    /// Take the stream back out of reactor (nonblocking) mode so the
    /// registration loop can use it synchronously.
    fn surrender(&mut self) -> FrameStream {
        let fs = self.fs.take().expect("hello stream surrendered twice");
        let _ = fs.get_ref().set_nonblocking(false);
        let _ = fs.set_read_timeout(Some(Duration::from_millis(100)));
        fs
    }

    fn finish(&mut self, out: RegOutcome) -> Directive {
        let _ = self.results.send(out);
        Directive::close()
    }
}

impl Source for HelloSource {
    fn fd(&self) -> RawFd {
        self.fd
    }

    fn service(&mut self, _ready: Ready, now: Instant) -> Directive {
        if self.fs.is_none() {
            return Directive::close();
        }
        loop {
            match self.fs.as_mut().expect("stream present").read_frame() {
                Ok(Some(f)) if f.kind == FrameKind::Control => {
                    let out = match decode_ctrl(&f) {
                        Ok(CtrlMsg::Hello { name, data_addr, site, speed, capacity }) => {
                            let fs = self.surrender();
                            RegOutcome::Hello { name, data_addr, site, speed, capacity, fs }
                        }
                        Ok(other) => RegOutcome::Bad {
                            fs: self.surrender(),
                            reason: format!("expected hello, got {other:?}"),
                        },
                        Err(e) => RegOutcome::Bad {
                            fs: self.surrender(),
                            reason: format!("malformed or missing hello: {e}"),
                        },
                    };
                    return self.finish(out);
                }
                Ok(Some(_)) => continue,
                Err(TransportError::TimedOut) => break,
                Ok(None) | Err(TransportError::Io(_)) => {
                    let out = RegOutcome::Bad {
                        fs: self.surrender(),
                        reason: "malformed or missing hello: connection closed".into(),
                    };
                    return self.finish(out);
                }
            }
        }
        if now >= self.deadline {
            let out = RegOutcome::Bad {
                fs: self.surrender(),
                reason: "malformed or missing hello: timed out".into(),
            };
            return self.finish(out);
        }
        Directive::read().with_deadline(self.deadline)
    }
}

/// Broadcast frames queued for one worker, shared between the main
/// loop (producer) and that worker's [`WorkerReadSource`] (consumer).
#[derive(Default)]
struct BcastQueue {
    frames: Mutex<Vec<Frame>>,
}

/// The main loop's write handle to one worker's control connection:
/// queue a frame, nudge the reactor, and the source writes it when the
/// socket is ready.
struct WorkerHandle {
    reactor: Reactor,
    token: Token,
    shared: Arc<BcastQueue>,
}

impl WorkerHandle {
    fn send(&self, frame: Frame) {
        self.shared.frames.lock().unwrap_or_else(|p| p.into_inner()).push(frame);
        self.reactor.notify(self.token);
    }
}

/// Reactor source pumping one worker's control connection: trace events
/// into the coordinator's recorder, checkpoints and the final report
/// (or the worker's death) into the results channel, queued broadcasts
/// out. Any frame counts as a sign of life; with `heartbeat_timeout`
/// non-zero, silence past it declares the worker lost even while its
/// socket stays open (the hung-process case a closed-connection check
/// cannot see) — the timeout is the source's reactor deadline, so
/// detection is readiness-driven rather than a 100ms poll.
struct WorkerReadSource {
    fs: FrameStream,
    worker: String,
    recorder: Arc<dyn Recorder>,
    results: Sender<Outcome>,
    heartbeat_timeout: Duration,
    faults_injected: Arc<AtomicU64>,
    fault_recoveries: Arc<AtomicU64>,
    last_seen: Instant,
    shared: Arc<BcastQueue>,
}

impl WorkerReadSource {
    fn lost(&mut self, reason: String) -> Directive {
        let _ = self.results.send(Outcome::Lost { worker: self.worker.clone(), reason });
        Directive::close()
    }

    /// Handle one decoded control message. `true` means the final report
    /// arrived and the source should close.
    fn on_msg(&mut self, msg: CtrlMsg) -> bool {
        match msg {
            CtrlMsg::Trace(event) => {
                // Relayed link events double as the run's fault ledger:
                // injections on one side, completed recoveries on the
                // other.
                if let TraceEvent::Link(l) = &event {
                    match l.kind {
                        LinkEventKind::FaultInjected => {
                            self.faults_injected.fetch_add(1, Ordering::Relaxed);
                        }
                        LinkEventKind::Reconnected
                        | LinkEventKind::Restored
                        | LinkEventKind::Resumed
                        | LinkEventKind::StaleDiscarded
                        | LinkEventKind::CheckpointCorrupt => {
                            self.fault_recoveries.fetch_add(1, Ordering::Relaxed);
                        }
                        LinkEventKind::ReconnectExhausted => {
                            let _ = self.results.send(Outcome::LinkExhausted {
                                worker: self.worker.clone(),
                                link: l.link.clone(),
                                detail: l.detail.clone(),
                            });
                        }
                        _ => {}
                    }
                }
                if self.recorder.enabled() {
                    self.recorder.record(event);
                }
            }
            CtrlMsg::Heartbeat { .. } => {}
            CtrlMsg::Checkpoint { stage, seq, crc, state, cursors } => {
                let _ = self.results.send(Outcome::Checkpoint { stage, seq, crc, state, cursors });
            }
            CtrlMsg::ShardRequest { group, ordinal, split } => {
                let _ = self.results.send(Outcome::ShardRequest { group, ordinal, split });
            }
            CtrlMsg::Report { worker, stages, lost, replayed, deduped, stalled_us } => {
                let _ = self.results.send(Outcome::Report {
                    worker,
                    stages,
                    lost,
                    replayed,
                    deduped,
                    stalled_us,
                });
                return true;
            }
            _ => {}
        }
        false
    }
}

impl Source for WorkerReadSource {
    fn fd(&self) -> RawFd {
        self.fs.get_ref().as_raw_fd()
    }

    fn service(&mut self, ready: Ready, now: Instant) -> Directive {
        // Stage queued broadcasts and push whatever the socket takes.
        {
            let mut pending = self.shared.frames.lock().unwrap_or_else(|p| p.into_inner());
            for f in pending.drain(..) {
                self.fs.queue(&f);
            }
        }
        if (self.fs.queued_len() > 0 || self.fs.has_staged())
            && self.fs.flush_nonblocking().is_err()
        {
            return self.lost("control connection closed before report".into());
        }
        if ready.readable || ready.notified {
            loop {
                match self.fs.read_frame() {
                    Ok(Some(f)) if f.kind == FrameKind::Control => {
                        self.last_seen = now;
                        if let Ok(msg) = decode_ctrl(&f) {
                            if self.on_msg(msg) {
                                return Directive::close();
                            }
                        }
                    }
                    Ok(Some(_)) => self.last_seen = now,
                    Err(TransportError::TimedOut) => break,
                    Ok(None) | Err(TransportError::Io(_)) => {
                        return self.lost("control connection closed before report".into());
                    }
                }
            }
        }
        if !self.heartbeat_timeout.is_zero() {
            let silent = now.duration_since(self.last_seen);
            if silent >= self.heartbeat_timeout {
                return self.lost(format!("no heartbeat for {:.1}s", silent.as_secs_f64()));
            }
        }
        let mut d = Directive {
            want_read: true,
            want_write: self.fs.queued_len() > 0 || self.fs.has_staged(),
            deadline: None,
            close: false,
        };
        if !self.heartbeat_timeout.is_zero() {
            d = d.with_deadline(self.last_seen + self.heartbeat_timeout);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use gates_core::{Packet, SourceStatus, StageApi, StageBuilder, StreamProcessor, Topology};
    use gates_net::LinkSpec;
    use gates_sim::SimDuration;
    use std::net::TcpStream;

    struct Burst {
        left: u32,
    }
    impl StreamProcessor for Burst {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
        fn poll_generate(&mut self, api: &mut StageApi) -> SourceStatus {
            if self.left == 0 {
                return SourceStatus::Done;
            }
            self.left -= 1;
            api.emit(Packet::data(0, self.left as u64, 1, Bytes::from_static(b"0123456789")));
            SourceStatus::Continue { next_poll: SimDuration::from_millis(1) }
        }
    }

    struct Relay;
    impl StreamProcessor for Relay {
        fn process(&mut self, p: Packet, api: &mut StageApi) {
            api.emit(p);
        }
    }

    struct Sink;
    impl StreamProcessor for Sink {
        fn process(&mut self, _p: Packet, _a: &mut StageApi) {}
    }

    /// A three-stage pipeline with site affinities that spread it over
    /// three workers, so both remote edges cross process boundaries.
    fn test_repo() -> ApplicationRepository {
        let mut repo = ApplicationRepository::new();
        repo.publish("relay-line", |_cfg| {
            let mut t = Topology::new();
            let src = t
                .add_stage_raw(StageBuilder::new("src").site("s0").processor(|| Burst { left: 40 }))
                .unwrap();
            let mid = t.add_stage(StageBuilder::new("mid").site("s1").processor(|| Relay)).unwrap();
            let snk = t.add_stage(StageBuilder::new("snk").site("s2").processor(|| Sink)).unwrap();
            t.connect(src, mid, LinkSpec::local());
            t.connect(mid, snk, LinkSpec::local());
            Ok(t)
        });
        repo
    }

    const XML: &str = r#"<application name="line" repository="relay-line"/>"#;

    #[test]
    fn three_workers_run_a_pipeline_over_loopback() {
        let opts = RunOptions::default()
            .observe_every(SimDuration::from_millis(20))
            .adapt_every(SimDuration::from_millis(100))
            .max_time(SimTime::from_secs_f64(30.0));
        let engine = DistEngine::bind(XML, "127.0.0.1:0", 3, opts, DistConfig::default()).unwrap();
        let coord_addr = engine.local_addr().unwrap().to_string();

        let mut worker_handles = Vec::new();
        for (name, site) in [("w0", "s0"), ("w1", "s1"), ("w2", "s2")] {
            let addr = coord_addr.clone();
            worker_handles.push(std::thread::spawn(move || {
                DistWorker::new(name, addr).site(site).run(&test_repo())
            }));
        }
        let report = engine.run(&test_repo()).unwrap();
        for h in worker_handles {
            h.join().unwrap().unwrap();
        }

        assert_eq!(report.stages.len(), 3);
        assert_eq!(report.stage("src").unwrap().packets_out, 40);
        assert_eq!(report.stage("mid").unwrap().packets_in, 40, "src->mid crossed TCP");
        assert_eq!(report.stage("snk").unwrap().packets_in, 40, "mid->snk crossed TCP");
        assert_eq!(report.stage("src").unwrap().placed_on, "w0");
        assert_eq!(report.stage("mid").unwrap().placed_on, "w1");
        assert_eq!(report.stage("snk").unwrap().placed_on, "w2");
        assert!(!report.is_partial(), "clean run reported lost workers: {:?}", report.lost_workers);
    }

    use crate::dist::DistWorker;

    #[test]
    fn bind_rejects_zero_workers() {
        let err =
            DistEngine::bind(XML, "127.0.0.1:0", 0, RunOptions::default(), DistConfig::default())
                .unwrap_err();
        assert!(matches!(err, EngineError::BadOptions(_)));
    }

    #[test]
    fn heartbeat_timeout_alone_marks_worker_lost() {
        let opts = RunOptions::default()
            .observe_every(SimDuration::from_millis(20))
            .adapt_every(SimDuration::from_millis(100))
            .max_time(SimTime::from_secs_f64(30.0));
        let config = DistConfig::default()
            .report_grace(Duration::from_secs(5))
            .heartbeat_timeout(Duration::from_millis(600));
        let engine = DistEngine::bind(XML, "127.0.0.1:0", 1, opts, config).unwrap();
        let addr = engine.local_addr().unwrap().to_string();

        // A worker that completes the whole handshake, then hangs: its
        // socket stays open (held until the end of the test), so only the
        // heartbeat timeout — not a closed-connection check — can see it.
        let (exit_tx, exit_rx) = unbounded::<()>();
        let fake = std::thread::spawn(move || {
            let socket = TcpStream::connect(&addr).unwrap();
            let mut fs = FrameStream::new(socket);
            fs.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
            fs.send(&encode_ctrl(&CtrlMsg::Hello {
                name: "slowpoke".into(),
                data_addr: "127.0.0.1:9".into(),
                site: None,
                speed: 1.0,
                capacity: 8,
            }))
            .unwrap();
            let deadline = Instant::now() + Duration::from_secs(10);
            match read_ctrl(&mut fs, deadline, "assign").unwrap() {
                CtrlMsg::Assign(_) => {}
                other => panic!("expected assign, got {other:?}"),
            }
            fs.send(&encode_ctrl(&CtrlMsg::Ready { name: "slowpoke".into() })).unwrap();
            match read_ctrl(&mut fs, deadline, "start").unwrap() {
                CtrlMsg::Start => {}
                other => panic!("expected start, got {other:?}"),
            }
            // Go silent but keep the connection alive.
            let _ = exit_rx.recv_timeout(Duration::from_secs(30));
            drop(fs);
        });

        let report = engine.run(&test_repo()).unwrap();
        let _ = exit_tx.send(());
        fake.join().unwrap();

        assert!(report.is_partial());
        assert_eq!(report.lost_workers.len(), 1);
        assert_eq!(report.lost_workers[0].worker, "slowpoke");
        assert!(
            report.lost_workers[0].reason.contains("heartbeat"),
            "reason: {}",
            report.lost_workers[0].reason
        );
        assert!(report.lost_workers[0].at < 10.0, "detection took {}s", report.lost_workers[0].at);
    }

    #[test]
    fn malformed_registration_gets_typed_reject() {
        let opts = RunOptions::default()
            .observe_every(SimDuration::from_millis(20))
            .adapt_every(SimDuration::from_millis(100))
            .max_time(SimTime::from_secs_f64(30.0));
        let engine = DistEngine::bind(XML, "127.0.0.1:0", 3, opts, DistConfig::default()).unwrap();
        let coord_addr = engine.local_addr().unwrap().to_string();

        // First a client whose opening message is not a hello — it must
        // get a typed Reject back — and only then the real workers, so
        // the rejection provably happened before registration completed.
        let clients = std::thread::spawn(move || {
            let socket = TcpStream::connect(&coord_addr).unwrap();
            let mut fs = FrameStream::new(socket);
            fs.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
            fs.send(&encode_ctrl(&CtrlMsg::Ready { name: "imposter".into() })).unwrap();
            match read_ctrl(&mut fs, Instant::now() + Duration::from_secs(10), "reject").unwrap() {
                CtrlMsg::Reject { reason } => {
                    assert!(reason.contains("hello"), "reason: {reason}")
                }
                other => panic!("expected reject, got {other:?}"),
            }
            let mut handles = Vec::new();
            for (name, site) in [("w0", "s0"), ("w1", "s1"), ("w2", "s2")] {
                let addr = coord_addr.clone();
                handles.push(std::thread::spawn(move || {
                    DistWorker::new(name, addr).site(site).run(&test_repo())
                }));
            }
            for h in handles {
                h.join().unwrap().unwrap();
            }
        });

        let report = engine.run(&test_repo()).unwrap();
        clients.join().unwrap();
        assert_eq!(report.stage("snk").unwrap().packets_in, 40);
        assert!(!report.is_partial());
    }
}
